#!/usr/bin/env python3
"""Log overflow under large transactions (the Fig. 14 scenario).

Scales the per-transaction write set of the Hash workload from 1x to
16x (by batching inserts) and shows how Silo's overflow handling —
batched undo-log eviction running in parallel with new log generation
(Section III-F) — degrades gracefully instead of aborting.

Run:  python examples/large_transactions.py
"""

from repro import SystemConfig, run_trace
from repro.workloads import build_workload


def main() -> None:
    cores = 4
    baseline = None
    print("Hash inserts per transaction scaled 1x..16x (Silo, 4 cores)\n")
    print(f"{'ops/tx':>7s} {'overflows':>10s} {'op rate (norm.)':>16s} "
          f"{'PM writes/op (norm.)':>21s}")
    for mult in (1, 2, 4, 8, 16):
        trace = build_workload(
            "hash", threads=cores, transactions=150, ops_per_tx=mult
        )
        result = run_trace(trace, scheme="silo", config=SystemConfig.table2(cores))
        op_rate = result.throughput_tx_per_sec * mult
        writes_per_op = result.media_writes / (result.committed_count * mult)
        if baseline is None:
            baseline = (op_rate, writes_per_op)
        overflows = int(result.stats.get("silo.overflows"))
        print(
            f"{mult:7d} {overflows:10d} {op_rate / baseline[0]:16.3f} "
            f"{writes_per_op / baseline[1]:21.3f}"
        )
    print("\nno transaction was aborted; overflowed undo logs were "
          "flushed in 14-entry batches")


if __name__ == "__main__":
    main()
