#!/usr/bin/env python3
"""Crash-recovery walkthrough in the spirit of Fig. 10.

Two threads run small hand-written transactions; power fails exactly
while thread 1 commits its second transaction (Tx3) and thread 2 is
still mid-transaction (Tx2).  Silo selectively flushes redo logs plus
an ID tuple for the committing transaction and undo logs for the open
one; recovery then replays/revokes, and we verify atomic durability
word by word.

Run:  python examples/crash_recovery_demo.py
"""

from repro import (
    CrashPlan,
    System,
    SystemConfig,
    ThreadTrace,
    Trace,
    Transaction,
    TransactionEngine,
    check_atomic_durability,
)
from repro.designs.scheme import SchemeRegistry

# Word addresses for the named data of Fig. 10 (A-H).
NAMES = "ABCDEFGH"
ADDR = {name: 0x1000 + 64 * i for i, name in enumerate(NAMES)}
INITIAL = {ADDR[name]: i + 0xA0 for i, name in enumerate(NAMES)}  # A0..H0


def value(name: str, version: int) -> int:
    return INITIAL[ADDR[name]] + 0x100 * version  # e.g. "A1", "A2"


def main() -> None:
    # Thread 1: Tx1 writes A,B; Tx3 writes A (again) and C.
    t1 = ThreadTrace(0, [
        Transaction().store(ADDR["A"], value("A", 1)).store(ADDR["B"], value("B", 1)),
        Transaction().store(ADDR["A"], value("A", 2)).store(ADDR["C"], value("C", 1)),
    ])
    # Thread 2: Tx2 writes D,E,F,E,G,H — it will never commit.
    t2 = ThreadTrace(1, [
        Transaction()
        .store(ADDR["D"], value("D", 1))
        .store(ADDR["E"], value("E", 1))
        .store(ADDR["F"], value("F", 1))
        .store(ADDR["E"], value("E", 2))   # merged in the log buffer
        .store(ADDR["G"], value("G", 1))
        .store(ADDR["H"], value("H", 1)),
    ])
    trace = Trace([t1, t2], initial_image=dict(INITIAL), name="fig10-demo")

    system = System(SystemConfig.table2(cores=2))
    scheme = SchemeRegistry.create("silo", system)
    engine = TransactionEngine(
        system,
        scheme,
        trace,
        # Power fails during thread 0's second commit (Fig. 10f).
        crash_plan=CrashPlan(at_commit_of=(0, 1)),
    )
    result = engine.run()

    print("power failed during thread 1's second commit\n")
    print(f"committed transactions (tid, index): {sorted(result.committed)}")
    print(
        f"recovery report: replayed={result.recovery.replayed} "
        f"revoked={result.recovery.revoked} "
        f"discarded={result.recovery.discarded}\n"
    )

    print("PM data region after recovery:")
    for name in NAMES:
        got = system.pm.media.read_word(ADDR[name])
        version = (got - INITIAL[ADDR[name]]) // 0x100
        print(f"  {name} = {name}{version}  ({got:#x})")

    mismatches = check_atomic_durability(system, trace, result.committed)
    assert not mismatches, mismatches
    print(
        "\natomic durability verified: Tx1 and Tx3 persisted (durability), "
        "Tx2 fully revoked (atomicity)"
    )


if __name__ == "__main__":
    main()
