#!/usr/bin/env python3
"""PM endurance: how much lifetime each logging design costs.

The paper's abstract leads with endurance: conventional hardware
logging "inevitably increases the log writes to PM, thus exacerbating
the limited endurance".  This example measures the media wear each
design leaves behind on a skewed YCSB run and converts it into
relative PM lifetime under wear-leveling.

Run:  python examples/endurance.py
"""

from repro import SystemConfig
from repro.analysis import compare_wear, wear_report
from repro.designs.scheme import SchemeRegistry
from repro.harness.report import format_bars
from repro.sim.engine import TransactionEngine
from repro.sim.system import System
from repro.workloads import build_workload

SCHEMES = ("base", "fwb", "morlog", "lad", "silo")


def main() -> None:
    cores = 2
    trace = build_workload("ycsb", threads=cores, transactions=400)

    reports = {}
    for scheme in SCHEMES:
        system = System(SystemConfig.table2(cores))
        result = TransactionEngine(
            system, SchemeRegistry.create(scheme, system), trace
        ).run()
        reports[scheme] = wear_report(system, result)

    print(f"{'design':8s} {'media writes/tx':>16s} {'hottest sector':>15s} "
          f"{'hot-1% share':>13s}")
    for scheme, report in reports.items():
        print(
            f"{scheme:8s} {report.total_per_transaction:16.2f} "
            f"{report.peak_writes:15d} {report.hot_spot_share:13.2f}"
        )

    lifetimes = compare_wear(reports)
    print()
    print(format_bars(lifetimes, title="relative PM lifetime (wear-leveled, "
                                       "normalized to base)", unit="x"))
    print(
        "\nSilo's speculative logging writes no logs in the failure-free"
        "\ncase, so the PM outlives the conventional designs' by the same"
        "\nfactor it cuts write traffic (paper: 76.5% fewer writes than"
        "\nMorLog)"
    )


if __name__ == "__main__":
    main()
