#!/usr/bin/env python3
"""Design-space exploration: sizing the log buffer (the Section VI-D
reasoning).

The paper picked 20 entries per core because that covered the largest
remaining (post-ignorance, post-merging) log count it observed.  This
script sweeps the buffer size and shows the trade-off the designers
faced: a smaller buffer overflows constantly (log-region writes
return), a larger one buys nothing but SRAM and battery.

Run:  python examples/buffer_sizing.py
"""

from repro import SystemConfig, run_trace
from repro.core.battery import silo_requirement
from repro.common.config import LogBufferConfig
from repro.workloads import build_workload


def main() -> None:
    cores = 4
    trace = build_workload("rbtree", threads=cores, transactions=200)

    print("RBtree inserts under Silo with varying log buffer sizes\n")
    print(f"{'entries':>8s} {'overflows':>10s} {'log writes':>11s} "
          f"{'PM writes':>10s} {'tx/s':>12s} {'battery (uJ)':>13s}")
    for entries in (5, 10, 20, 40, 80):
        config = SystemConfig.table2(cores).with_log_buffer(entries=entries)
        result = run_trace(trace, scheme="silo", config=config)
        energy = silo_requirement(
            cores=cores, log_buffer=LogBufferConfig(entries=entries)
        ).flush_energy_uj
        print(
            f"{entries:8d} "
            f"{int(result.stats.get('silo.overflows', 0)):10d} "
            f"{int(result.stats.get('mc.writes.log', 0)):11d} "
            f"{result.media_writes:10d} "
            f"{result.throughput_tx_per_sec:12,.0f} "
            f"{energy:13.1f}"
        )
    print(
        "\nthe paper's 20-entry choice sits at the knee: overflows (and the"
        "\nlog-region writes they bring back) vanish, while battery energy"
        "\nkeeps growing linearly with capacity"
    )


if __name__ == "__main__":
    main()
