#!/usr/bin/env python3
"""The full Fig. 2 design space on one workload.

Runs all eight registered atomic-durability designs — the paper's five
evaluated ones, the two other Fig. 2 diagrams (WrAP, ReDU, Proteus)
and the Fig. 1a software baseline — on the same Hash trace, and draws
the throughput/write-traffic story as ASCII bars.

Run:  python examples/design_space.py
"""

from repro import SystemConfig, run_trace
from repro.harness.report import format_bars
from repro.workloads import build_workload

DESIGNS = (
    ("swlog", "software WAL (Fig. 1a)"),
    ("base", "HW log + line flush per store"),
    ("wrap", "WrAP (Fig. 2b)"),
    ("redu", "ReDU (Fig. 2c)"),
    ("fwb", "FWB"),
    ("morlog", "MorLog"),
    ("proteus", "Proteus (Fig. 2d)"),
    ("lad", "LAD (logless)"),
    ("silo", "Silo (Fig. 2e)"),
)


def main() -> None:
    cores = 4
    trace = build_workload("hash", threads=cores, transactions=200)
    results = {
        scheme: run_trace(trace, scheme=scheme, config=SystemConfig.table2(cores))
        for scheme, _ in DESIGNS
    }
    base = results["base"]

    throughput = {
        f"{scheme:8s} {label}": r.throughput_tx_per_sec
        / base.throughput_tx_per_sec
        for (scheme, label), r in zip(DESIGNS, results.values())
    }
    writes = {
        f"{scheme:8s} {label}": r.media_writes / base.media_writes
        for (scheme, label), r in zip(DESIGNS, results.values())
    }

    print(format_bars(throughput, title="throughput (normalized to base)", unit="x"))
    print()
    print(format_bars(writes, title="PM media writes (normalized to base)", unit="x"))
    print(
        "\nthe paper's argument in one picture: every design that writes logs"
        "\nto PM pays for it; Silo's speculative on-chip logs top the space"
        "\non both axes while still recovering from any crash"
    )


if __name__ == "__main__":
    main()
