#!/usr/bin/env python3
"""Quickstart: run one workload under Silo and the Base design.

Builds the Hash micro-benchmark (random inserts of 64-byte elements),
replays the identical trace under both designs on the Table II system,
and prints throughput and PM media write counts.

Run:  python examples/quickstart.py
"""

from repro import SystemConfig, run_trace
from repro.workloads import build_workload


def main() -> None:
    cores = 4
    trace = build_workload("hash", threads=cores, transactions=300)
    print(f"workload: {trace.name}, {trace.total_transactions} transactions, "
          f"{trace.mean_write_size_bytes():.0f}B written per transaction\n")

    results = {}
    for scheme in ("base", "silo"):
        results[scheme] = run_trace(
            trace, scheme=scheme, config=SystemConfig.table2(cores)
        )

    for scheme, result in results.items():
        print(
            f"{scheme:5s}  throughput = {result.throughput_tx_per_sec:12,.0f} tx/s   "
            f"PM media writes = {result.media_writes:6d}   "
            f"({result.writes_per_transaction:.1f} per tx)"
        )

    base, silo = results["base"], results["silo"]
    print(
        f"\nSilo speedup over Base: "
        f"{silo.throughput_tx_per_sec / base.throughput_tx_per_sec:.2f}x, "
        f"write reduction: {1 - silo.media_writes / base.media_writes:.1%}"
    )


if __name__ == "__main__":
    main()
