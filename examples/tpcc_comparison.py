#!/usr/bin/env python3
"""TPC-C New-Order under all five hardware logging designs.

A miniature Fig. 11 + Fig. 12: runs the same TPCC trace under Base,
FWB, MorLog, LAD and Silo at 1 and 8 cores and prints throughput and
write traffic normalized to Base.

Run:  python examples/tpcc_comparison.py
"""

from repro import SystemConfig, run_trace
from repro.workloads import build_workload

SCHEMES = ("base", "fwb", "morlog", "lad", "silo")


def main() -> None:
    for cores in (1, 8):
        trace = build_workload("tpcc", threads=cores, transactions=200)
        results = {
            scheme: run_trace(trace, scheme=scheme, config=SystemConfig.table2(cores))
            for scheme in SCHEMES
        }
        base = results["base"]
        print(f"TPCC New-Order, {cores} core(s), "
              f"{trace.total_transactions} transactions")
        print(f"  {'design':8s} {'norm. throughput':>18s} {'norm. PM writes':>17s}")
        for scheme, result in results.items():
            thr = result.throughput_tx_per_sec / base.throughput_tx_per_sec
            wr = result.media_writes / base.media_writes
            print(f"  {scheme:8s} {thr:18.2f} {wr:17.3f}")
        print()


if __name__ == "__main__":
    main()
