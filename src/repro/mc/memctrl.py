"""Shared memory controller: the timing gateway between cores and PM.

Two-stage timing model (FRFCFS approximation).

1. *Request stage* — transferring a request into the DIMM's ADR buffer
   takes ``pm_request_cycles`` (bus + buffer insert).  A write is
   **durable** once this completes: the WPQ and the on-PM buffer are in
   the ADR persistent domain, so the words are applied to the
   functional :class:`~repro.mem.pm.PMDevice` image immediately.

2. *Media stage* — when a request causes on-PM buffer line evictions,
   each eviction occupies one of ``banks`` media servers for
   ``pm_write_cycles``.  Media bandwidth is therefore consumed by
   post-coalescing traffic only.

The write-pending queue bounds in-flight writes: an entry drains once
its media work (if any) completes, so when the media falls behind the
WPQ fills and *admission* begins to stall issuers.  That back-pressure
is exactly what makes write-heavy, ordering-constrained designs scale
poorly with core count (Fig. 12): their synchronous persists queue
behind their own log traffic.

Designs that must respect persist ordering wait on the returned
:class:`WriteTicket.persisted` cycle; "background" writes ignore it but
still consume WPQ slots and media bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.common.stats import Stats
from repro.mc.wpq import BoundedQueueModel
from repro.mem.pm import PMDevice


@dataclass(frozen=True)
class WriteTicket:
    """Result of submitting one write request.

    ``admission_stall`` cycles are always charged to the issuing core
    (a full WPQ blocks even posted writes).  ``persisted`` is the cycle
    at which the request is inside the ADR domain — the point a persist
    barrier waits for.  ``media_done`` is when any media work it
    triggered finishes (used only for end-of-run draining).
    """

    admission_stall: int
    persisted: int
    media_done: int


class MemoryController:
    """One shared controller in front of the PM device."""

    def __init__(
        self,
        config: SystemConfig,
        pm: PMDevice,
        stats: Optional[Stats] = None,
        channels: int = 1,
    ) -> None:
        """``channels`` models multiple memory controllers: each MC has
        its own bus, write-pending queue and bank pool, and each serves
        the whole memory (Section III-D).  A thread's requests all go
        to the MC chosen by the issuer, so a transaction's logs and
        in-place updates always meet at the same controller."""
        if channels <= 0:
            raise ConfigError("need at least one memory channel")
        self.config = config
        self.pm = pm
        self.stats = stats if stats is not None else pm.stats
        self.channels = channels
        self._bank_free = [
            [0] * config.pm.banks for _ in range(channels)
        ]
        self._write_service = config.pm_write_cycles
        self._read_service = config.pm_read_cycles
        self._bus_overhead = config.pm.bus_overhead_cycles
        self._bus_beat = config.pm.bus_beat_cycles
        self._wpq = [
            BoundedQueueModel(config.mc.write_queue_entries)
            for _ in range(channels)
        ]
        #: Each MC's request channel is serial: back-to-back requests
        #: are spaced by the request service time.
        self._channel_free = [0] * channels

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def submit_write(
        self,
        now: int,
        words: Mapping[int, int],
        kind: str = "data",
        write_through: bool = False,
        channel: int = 0,
    ) -> WriteTicket:
        """Submit one write request (a cacheline, a log-entry flush, a
        word flush or a batched overflow line) for persistence.
        ``write_through`` marks an explicit forced flush: the DIMM may
        not hold it for coalescing.  ``channel`` selects the issuing
        core's memory controller."""
        media_sectors = self.pm.write_request(words, kind, write_through=write_through)
        self.stats.add("mc.writes")
        self.stats.add(f"mc.writes.{kind}")
        c = channel % self.channels

        admit_at = self._wpq[c].admit(now)
        start = max(admit_at, self._channel_free[c])
        persisted = start + self._bus_overhead + self._bus_beat * len(words)
        self._channel_free[c] = persisted

        banks = self._bank_free[c]
        media_done = persisted
        for _ in range(media_sectors):
            i = banks.index(min(banks))
            begin = max(persisted, banks[i])
            banks[i] = begin + self._write_service
            media_done = max(media_done, banks[i])
        self._wpq[c].record(media_done)

        stall = admit_at - now
        if stall:
            self.stats.add("mc.wpq_stall_cycles", stall)
        # An explicit forced flush is only "persisted" once the media
        # write completes (the persist latency the conventional designs
        # wait for); a posted write is durable at WPQ admission (ADR).
        return WriteTicket(
            admission_stall=stall,
            persisted=media_done if write_through else persisted,
            media_done=media_done,
        )

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def submit_read(self, now: int, addr: int, channel: int = 0) -> int:
        """Timing for one demand read from PM; returns completion cycle."""
        self.stats.add("mc.reads")
        banks = self._bank_free[channel % self.channels]
        i = banks.index(min(banks))
        start = max(now, banks[i])
        completion = start + self._read_service
        banks[i] = completion
        return completion

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def drain_completion(self) -> int:
        """Cycle at which every accepted write has reached the media."""
        latest = 0
        for c in range(self.channels):
            latest = max(latest, max(self._bank_free[c]), self._channel_free[c])
        return latest

    def occupancy(self, now: int, channel: int = 0) -> int:
        return self._wpq[channel % self.channels].occupancy(now)
