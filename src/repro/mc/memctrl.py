"""Shared memory controller: the timing gateway between cores and PM.

Two-stage timing model (FRFCFS approximation).

1. *Request stage* — transferring a request into the DIMM's ADR buffer
   takes ``pm_request_cycles`` (bus + buffer insert).  A write is
   **durable** once this completes: the WPQ and the on-PM buffer are in
   the ADR persistent domain, so the words are applied to the
   functional :class:`~repro.mem.pm.PMDevice` image immediately.

2. *Media stage* — when a request causes on-PM buffer line evictions,
   each eviction occupies one of ``banks`` media servers for
   ``pm_write_cycles``.  Media bandwidth is therefore consumed by
   post-coalescing traffic only.

Reads traverse the same two stages: a demand read's command occupies
the per-channel request bus (``bus_overhead_cycles``, no data beats —
the payload returns on the separate fill path) and then one media bank
for ``pm_read_cycles``.  A full WPQ back-pressures the request channel
for reads exactly as it does for writes, so read-heavy phases feel the
write queue's congestion (the contention effect Fig. 12 depends on).

The write-pending queue bounds in-flight writes: an entry drains once
its media work (if any) completes, so when the media falls behind the
WPQ fills and *admission* begins to stall issuers.  That back-pressure
is exactly what makes write-heavy, ordering-constrained designs scale
poorly with core count (Fig. 12): their synchronous persists queue
behind their own log traffic.

Designs that must respect persist ordering wait on the returned
:class:`WriteTicket.persisted` cycle; "background" writes ignore it but
still consume WPQ slots and media bandwidth.

Each channel's media banks are kept as a min-heap of bank-free times
(``heapq``): picking the earliest-free bank is O(log banks) instead of
a linear scan, and because only the *value* of the minimum matters for
timing, the schedule is identical to the scan it replaced.
"""

from __future__ import annotations

from heapq import heappop, heappush, heapreplace
from typing import Dict, Mapping, NamedTuple, Optional

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.common.stats import Stats
from repro.mc.wpq import BoundedQueueModel
from repro.mem.pm import PMDevice


class WriteTicket(NamedTuple):
    """Result of submitting one write request.

    (A ``NamedTuple``: one ticket is allocated per write request on the
    simulator's hottest path, and tuple construction is markedly
    cheaper than a frozen dataclass's field-by-field ``__init__``.)

    ``admission_stall`` cycles are always charged to the issuing core
    (a full WPQ blocks even posted writes).  ``persisted`` is the cycle
    at which the request is inside the ADR domain — the point a persist
    barrier waits for.  ``media_done`` is when any media work it
    triggered finishes (used only for end-of-run draining).
    """

    admission_stall: int
    persisted: int
    media_done: int


class MemoryController:
    """One shared controller in front of the PM device."""

    def __init__(
        self,
        config: SystemConfig,
        pm: PMDevice,
        stats: Optional[Stats] = None,
        channels: int = 1,
        obs=None,
    ) -> None:
        """``channels`` models multiple memory controllers: each MC has
        its own bus, write-pending queue and bank pool, and each serves
        the whole memory (Section III-D).  A thread's requests all go
        to the MC chosen by the issuer, so a transaction's logs and
        in-place updates always meet at the same controller.

        A run has exactly one stats registry: passing a ``stats``
        distinct from ``pm.stats`` rebinds the device (and its media /
        on-PM buffer) onto it, so ``mc.*`` and ``media.*`` counters can
        never split across two registries.
        """
        if channels <= 0:
            raise ConfigError("need at least one memory channel")
        self.config = config
        self.pm = pm
        if stats is None:
            stats = pm.stats
        else:
            pm.rebind_stats(stats)
        self.stats = stats
        self.channels = channels
        self._obs = obs
        #: Per-channel min-heaps of bank-free cycles (all-zero lists are
        #: valid heaps; only ``heapreplace`` mutates them afterwards).
        self._bank_free = [
            [0] * config.pm.banks for _ in range(channels)
        ]
        self._write_service = config.pm_write_cycles
        self._read_service = config.pm_read_cycles
        self._bus_overhead = config.pm.bus_overhead_cycles
        self._bus_beat = config.pm.bus_beat_cycles
        self._wpq = [
            BoundedQueueModel(config.mc.write_queue_entries)
            for _ in range(channels)
        ]
        #: The raw completion heaps of the per-channel WPQs, aliased so
        #: the write path can prune/push in place without two method
        #: calls per request.  All mutations keep heap order, so the
        #: models stay valid for occupancy queries and the read path.
        self._wpq_heaps = [q._completions for q in self._wpq]
        self._wpq_capacity = config.mc.write_queue_entries
        #: Each MC's request channel is serial: back-to-back requests
        #: are spaced by the request service time.
        self._channel_free = [0] * channels
        #: Precomputed per-kind counter names (hot path: no f-strings).
        #: Kind names are normalized at this boundary — dots become
        #: underscores — so ``mc.writes.<kind>`` keys always split back
        #: into exactly (``mc``, ``writes``, kind).
        self._kind_keys: Dict[str, str] = {}
        #: Raw kind -> normalized kind (used off the hot path).
        self._kind_norm: Dict[str, str] = {}
        #: The live counter mapping, hoisted once (stable for life).
        self._counters = self.stats.counters
        #: Bound fast-path entry into the PM device.
        self._pm_write_request = pm.write_request

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def submit_write(
        self,
        now: int,
        words: Mapping[int, int],
        kind: str = "data",
        write_through: bool = False,
        channel: int = 0,
    ) -> WriteTicket:
        """Submit one write request (a cacheline, a log-entry flush, a
        word flush or a batched overflow line) for persistence.
        ``write_through`` marks an explicit forced flush: the DIMM may
        not hold it for coalescing.  ``channel`` selects the issuing
        core's memory controller."""
        media_sectors = self._pm_write_request(words, kind, write_through=write_through)
        counters = self._counters
        counters["mc.writes"] += 1
        key = self._kind_keys.get(kind)
        if key is None:
            safe = kind.replace(".", "_")
            key = self._kind_keys.setdefault(kind, "mc.writes." + safe)
            self._kind_norm.setdefault(kind, safe)
        counters[key] += 1
        c = channel % self.channels

        # Inlined BoundedQueueModel.admit/record on the aliased heap:
        # identical semantics (prune on every admit — see wpq.py), two
        # fewer calls on the hottest path in the simulator.
        wpq_heap = self._wpq_heaps[c]
        while wpq_heap and wpq_heap[0] <= now:
            heappop(wpq_heap)
        admit_at = (
            now if len(wpq_heap) < self._wpq_capacity else wpq_heap[0]
        )
        channel_free = self._channel_free
        busy_until = channel_free[c]
        start = admit_at if admit_at > busy_until else busy_until
        persisted = start + self._bus_overhead + self._bus_beat * len(words)
        channel_free[c] = persisted

        media_done = persisted
        if media_sectors:
            banks = self._bank_free[c]
            service = self._write_service
            for _ in range(media_sectors):
                free = banks[0]
                begin = persisted if persisted > free else free
                media_done = begin + service
                heapreplace(banks, media_done)
            # Successive assignments pop a non-decreasing sequence of
            # bank-free times, so the last completion is the latest.
        heappush(wpq_heap, media_done)

        stall = admit_at - now
        if stall:
            counters["mc.wpq_stall_cycles"] += stall
        obs = self._obs
        if obs is not None:
            obs.mc_write(
                self._kind_norm[kind],
                c,
                now,
                stall,
                persisted,
                media_done,
                len(words),
                len(wpq_heap),
                write_through,
            )
        # An explicit forced flush is only "persisted" once the media
        # write completes (the persist latency the conventional designs
        # wait for); a posted write is durable at WPQ admission (ADR).
        return WriteTicket(
            stall,
            media_done if write_through else persisted,
            media_done,
        )

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def submit_read(self, now: int, addr: int, channel: int = 0) -> int:
        """Timing for one demand read from PM; returns completion cycle.

        The read command passes the same two stages as a write: it
        waits for the per-channel request bus (and, when the WPQ is
        full, for write back-pressure to clear) before occupying the
        earliest-free media bank for the read service time.
        """
        counters = self._counters
        counters["mc.reads"] += 1
        c = channel % self.channels
        # A full WPQ blocks the shared request channel for reads too:
        # the command cannot be accepted until a write slot drains.
        # The query is read-only: a demand read observes the write
        # queue but holds no slot in it, so it must not prune the
        # completion heap (admits are non-monotone — a mutating prune
        # here would retire entries an earlier-time write admit still
        # has to count, skewing write-occupancy accounting).
        ready = self._wpq[c].earliest_admission(now)
        if ready > now:
            counters["mc.read_wpq_stall_cycles"] += ready - now
        channel_free = self._channel_free
        busy_until = channel_free[c]
        start = ready if ready > busy_until else busy_until
        issued = start + self._bus_overhead
        channel_free[c] = issued
        banks = self._bank_free[c]
        free = banks[0]
        begin = issued if issued > free else free
        completion = begin + self._read_service
        heapreplace(banks, completion)
        obs = self._obs
        if obs is not None:
            obs.mc_read(c, now, ready - now, completion)
        return completion

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def drain_completion(self) -> int:
        """Cycle at which every accepted write has reached the media."""
        latest = 0
        for c in range(self.channels):
            latest = max(latest, max(self._bank_free[c]), self._channel_free[c])
        return latest

    def occupancy(self, now: int, channel: int = 0) -> int:
        return self._wpq[channel % self.channels].occupancy(now)

    @property
    def wpq_capacity(self) -> int:
        """Entries one channel's write-pending queue can hold — the
        upper bound on writes still volatile inside the ADR domain at a
        power failure (the fault injector's tear/drop window)."""
        return self._wpq_capacity
