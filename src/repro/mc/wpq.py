"""Finite-queue admission model for the write-pending queue.

The WPQ has 64 entries (Table II) and sits in the ADR persistent
domain: once a request is admitted it is durable.  When the queue is
full, the next request cannot be accepted until an entry drains to the
DIMM, which back-pressures the issuing core.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from repro.common.errors import ConfigError


class BoundedQueueModel:
    """Tracks occupancy of a bounded queue via completion timestamps."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigError("queue capacity must be positive")
        self.capacity = capacity
        self._completions: List[int] = []

    def admit(self, now: int) -> int:
        """Earliest cycle at which a new entry can be admitted.

        Entries whose completion time has passed are pruned first; if
        the queue is still full, admission waits for the oldest
        in-flight entry to drain.

        Pruning must happen on *every* call, even when the queue has a
        free slot: callers admit at non-monotone times (background
        flushes admit at future completion times), and a later-time
        admit deliberately retires everything drained by then before an
        earlier-time admit counts occupancy.  Deferring the prune to
        full-queue calls is observably different.
        """
        heap = self._completions
        while heap and heap[0] <= now:
            heapq.heappop(heap)
        if len(heap) < self.capacity:
            return now
        return heap[0]

    def record(self, completion: int) -> None:
        """Register the completion time of an admitted entry."""
        heapq.heappush(self._completions, completion)

    def earliest_admission(self, now: int) -> int:
        """Read-only variant of :meth:`admit` for observers that must
        not perturb the queue (the demand-read path).

        Returns exactly what :meth:`admit` would — ``now`` if an entry
        slot is free once everything drained by ``now`` is discounted,
        else the earliest completion still in flight — but *without*
        pruning the heap.  Because admits are non-monotone (see
        :meth:`admit`), a mutating prune from a later-time read would
        retire entries that an earlier-time write admit should still
        count, corrupting write-occupancy accounting.
        """
        heap = self._completions
        if len(heap) < self.capacity:
            # In-flight entries are a subset of the heap, so a
            # not-full heap means a free slot without counting.
            return now
        in_flight = 0
        earliest: Optional[int] = None
        for completion in heap:
            if completion > now:
                in_flight += 1
                if earliest is None or completion < earliest:
                    earliest = completion
        if in_flight < self.capacity:
            return now
        # Queue full: the next slot opens at the earliest in-flight
        # completion (earliest is never None here).
        return earliest

    def occupancy(self, now: int) -> int:
        """Entries still in flight at ``now``, without mutating the
        queue.  Like :meth:`earliest_admission`, a query must not prune
        the completion heap: admits are non-monotone, so a prune from a
        later-time observer would retire entries an earlier-time
        :meth:`admit` still has to count, changing admission stalls."""
        return sum(1 for completion in self._completions if completion > now)
