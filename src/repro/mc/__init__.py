"""Memory controller: banked PM bandwidth + ADR write-pending queue."""

from repro.mc.wpq import BoundedQueueModel
from repro.mc.memctrl import MemoryController, WriteTicket

__all__ = ["BoundedQueueModel", "MemoryController", "WriteTicket"]
