"""The paper's contribution: the Silo speculative hardware logging design,
its crash-recovery procedure and the battery/energy model."""

from repro.core.battery import (
    BatteryRequirement,
    bbb_requirement,
    eadr_requirement,
    hardware_overhead,
    silo_requirement,
)
from repro.core.recovery import RecoveryReport, wal_recover
from repro.core.silo import SiloScheme

__all__ = [
    "BatteryRequirement",
    "bbb_requirement",
    "eadr_requirement",
    "hardware_overhead",
    "silo_requirement",
    "RecoveryReport",
    "wal_recover",
    "SiloScheme",
]
