"""Energy and battery sizing for persistent on-chip buffers.

Reproduces Table IV (battery requirements of eADR, BBB and Silo) and
Table I (Silo's hardware overhead).  The energy model follows
Section VI-E: moving one byte from an on-chip buffer to PM costs
11.228 nJ; supercapacitors store 1e-4 Wh/cm^3 and lithium thin-film
batteries 1e-2 Wh/cm^3; the "area" of a battery is the face of the
cube holding its volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.config import LogBufferConfig
from repro.common.constants import ENERGY_NJ_PER_BYTE

#: Energy density in Wh per cubic centimetre (Section VI-E).
CAP_DENSITY_WH_PER_CM3 = 1e-4
LI_DENSITY_WH_PER_CM3 = 1e-2

_J_PER_WH = 3600.0


@dataclass(frozen=True)
class BatteryRequirement:
    """One row of Table IV."""

    system: str
    flush_size_bytes: float
    flush_energy_uj: float
    cap_volume_mm3: float
    cap_area_mm2: float
    li_volume_mm3: float
    li_area_mm2: float

    @property
    def flush_size_kb(self) -> float:
        return self.flush_size_bytes / 1024.0


def _requirement(system: str, flush_bytes: float, energy_bytes: float = None
                 ) -> BatteryRequirement:
    """Size both battery types for flushing ``energy_bytes`` (defaults
    to ``flush_bytes``) on a power failure."""
    if energy_bytes is None:
        energy_bytes = flush_bytes
    energy_j = energy_bytes * ENERGY_NJ_PER_BYTE * 1e-9
    energy_wh = energy_j / _J_PER_WH

    cap_volume_cm3 = energy_wh / CAP_DENSITY_WH_PER_CM3
    li_volume_cm3 = energy_wh / LI_DENSITY_WH_PER_CM3
    cap_volume_mm3 = cap_volume_cm3 * 1e3
    li_volume_mm3 = li_volume_cm3 * 1e3
    return BatteryRequirement(
        system=system,
        flush_size_bytes=flush_bytes,
        flush_energy_uj=energy_j * 1e6,
        cap_volume_mm3=cap_volume_mm3,
        cap_area_mm2=cap_volume_mm3 ** (2.0 / 3.0),
        li_volume_mm3=li_volume_mm3,
        li_area_mm2=li_volume_mm3 ** (2.0 / 3.0),
    )


def silo_requirement(
    cores: int = 8, log_buffer: LogBufferConfig = None
) -> BatteryRequirement:
    """Silo flushes each core's log buffer: 20 entries x 34 B = 680 B
    per core, 5.3125 KB for 8 cores."""
    cfg = log_buffer if log_buffer is not None else LogBufferConfig()
    flush = cores * cfg.capacity_bytes
    return _requirement("Silo", flush)


def bbb_requirement(cores: int = 8, entries_per_core: int = 32,
                    entry_bytes: int = 64) -> BatteryRequirement:
    """BBB flushes each core's battery-backed buffer: 32 64-B entries
    per core, 16 KB for 8 cores."""
    flush = cores * entries_per_core * entry_bytes
    return _requirement("BBB", flush)


def eadr_requirement(
    cache_bytes: int = 10496 << 10, dirty_fraction: float = 0.45
) -> BatteryRequirement:
    """eADR flushes the dirty blocks of the entire cache hierarchy
    (10,496 KB in Table II; 45% dirty per Section VI-E).  The flush
    *size* column reports the protected capacity; the energy only moves
    the dirty fraction, as in the paper."""
    return _requirement("eADR", cache_bytes, energy_bytes=cache_bytes * dirty_fraction)


def table4(cores: int = 8) -> Dict[str, BatteryRequirement]:
    """All three rows of Table IV."""
    return {
        "eADR": eadr_requirement(),
        "BBB": bbb_requirement(cores=cores),
        "Silo": silo_requirement(cores=cores),
    }


def hardware_overhead(
    cores: int = 8, log_buffer: LogBufferConfig = None
) -> Dict[str, str]:
    """Table I: the hardware Silo adds to the processor."""
    cfg = log_buffer if log_buffer is not None else LogBufferConfig()
    req = silo_requirement(cores=1, log_buffer=cfg)
    return {
        "Log buffer": (
            f"SRAM, {cfg.entries} entries, {cfg.capacity_bytes}B per core"
        ),
        "64-bit comparators": (
            f"CMOS cells, {cfg.entries} comparators per log buffer"
        ),
        "Battery": (
            "Lithium thin-film, "
            f"{req.li_volume_mm3:.3e} mm^3 per log buffer"
        ),
        "Log head and tail": "Flip-flops, 16B per core (two 8B registers)",
    }
