"""Silo: speculative hardware logging with "Log as Data" (Section III).

The scheme keeps each transaction's merged undo+redo logs in a small
battery-backed log buffer in the memory controller.  In the common
failure-free case nothing is ever written to the PM log region:

* **commit** is an on-chip handshake; afterwards the log controller
  flushes the *new data* words of the surviving log entries straight
  into the PM data region (in-place update), in the background
  (Section III-D);
* **cacheline evictions** are never blocked — an evicted line sets the
  flush-bit of the matching log entries so their new data is not
  redundantly flushed at commit (Section III-D);
* **log overflow** evicts the oldest entries' *undo* halves to the log
  region in 14-entry batches while their new data goes to the data
  region, in parallel with new log generation (Section III-F);
* **a crash** triggers selective flushing: undo logs for open
  transactions (atomicity), redo logs plus an ID tuple for a
  transaction caught mid-commit (durability) (Section III-G).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.common.constants import ONPM_LINE_SIZE, OVERFLOW_BATCH_ENTRIES
from repro.designs.scheme import LoggingScheme, SchemeRegistry, Writebacks
from repro.hwlog.entry import LogEntry
from repro.hwlog.generator import LogGenerator
from repro.hwlog.logbuffer import AppendResult, LogBuffer
from repro.hwlog.region import PersistedLog
from repro.core.recovery import RecoveryReport, wal_recover
from repro.mem.address import split_words_by_line

#: Dense crash-flush packing: undo+redo entries per 256-byte request.
_CRASH_FLUSH_PER_LINE = ONPM_LINE_SIZE // LogEntry.UNDO_REDO_SIZE

#: How far the per-core log controller may run behind before a commit
#: handshake has to wait (the controller's work queue, in cycles).
_CONTROLLER_QUEUE_CYCLES = 2000


def _silo_redo_filter(entry: PersistedLog) -> bool:
    """Committed transactions replay only flush-bit-0 redo logs; the
    flush-bit-1 overflow undo logs next to them are discarded."""
    return entry.kind == "redo" and not entry.flush_bit


def _silo_undo_filter(entry: PersistedLog) -> bool:
    """Uncommitted transactions revoke every persisted undo log."""
    return entry.kind == "undo"


@SchemeRegistry.register
class SiloScheme(LoggingScheme):
    """The paper's contribution (Fig. 2e, Fig. 5)."""

    name = "silo"

    def __init__(
        self,
        system,
        merging: bool = True,
        ignore_silent: bool = True,
        overflow_batch: int = OVERFLOW_BATCH_ENTRIES,
    ) -> None:
        """``merging``, ``ignore_silent`` and ``overflow_batch`` exist
        for the ablation benchmarks; the paper's design uses the
        defaults (Sections III-C and III-F)."""
        super().__init__(system)
        cores = self.config.cores
        self._overflow_batch = overflow_batch
        self._gens = [
            LogGenerator(c, self.stats, ignore_silent=ignore_silent)
            for c in range(cores)
        ]
        self._bufs = [
            LogBuffer(
                self.config.log_buffer,
                self.stats,
                name=f"logbuf.core{c}",
                merging=merging,
            )
            for c in range(cores)
        ]
        #: When each core's log controller finishes its queued flushes.
        self._controller_free = [0] * cores
        #: Arrival time of the most recent in-flight log entry per core.
        self._last_store = [0] * cores
        #: Transactions that spilled undo logs to the log region.
        self._overflowed: Set[Tuple[int, int]] = set()
        #: Per-transaction (total, remaining) log counts, for Fig. 13.
        self.tx_log_counts: List[Tuple[int, int]] = []
        self._tx_total = [0] * cores
        self._buf_latency = self.config.log_buffer.access_latency_cycles

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------
    def on_tx_begin(self, core: int, tid: int, txid: int, now: int) -> int:
        self._gens[core].tx_begin(tid, txid)
        self._tx_total[core] = 0
        return 0

    def on_store(
        self,
        core: int,
        tid: int,
        txid: int,
        addr: int,
        old: int,
        new: int,
        now: int,
        access,
    ) -> int:
        self._tx_total[core] += 1
        entry = self._gens[core].on_store(addr, old, new)
        self._last_store[core] = now
        if entry is None:
            return 0  # log ignorance: the store changed nothing
        buf = self._bufs[core]
        stall = 0
        if buf.offer(entry) is AppendResult.FULL:
            stall += self._handle_overflow(core, tid, txid, now)
            if buf.offer(entry) is AppendResult.FULL:  # pragma: no cover
                raise AssertionError("log buffer still full after overflow")
        # The CPU store completes without waiting for the log entry to
        # reach the buffer (Section III-B): no critical-path cost.
        return stall

    def on_tx_end(self, core: int, tid: int, txid: int, now: int) -> int:
        self._gens[core].tx_end()
        buf = self._bufs[core]
        self.tx_log_counts.append((self._tx_total[core], buf.occupancy))

        # Commit handshake: the log generator notifies the controller,
        # which ACKs and starts flushing.  The final log entry was sent
        # at the final store over the same FIFO channel, so it arrives
        # before the notification regardless of the buffer's write
        # latency (Section III-D) — the handshake never waits for it.
        stall = self.config.commit_handshake_cycles
        # The in-place updates run in the background; commit only waits
        # if the controller's flush backlog exceeds its queue depth.
        backlog = self._controller_free[core] - now
        if backlog > _CONTROLLER_QUEUE_CYCLES:
            stall += backlog - _CONTROLLER_QUEUE_CYCLES

        # Background in-place update with the new data in the logs.
        entries = buf.drain()
        new_data: Dict[int, int] = {}
        for entry in entries:
            if entry.flush_bit:
                self.stats.add("silo.flushbit_discarded")
            else:
                new_data[entry.addr] = entry.new
        # The buffer read is pipelined: its latency delays when the
        # flush data reaches the MC but does not occupy the controller.
        start = max(now, self._controller_free[core]) + self._buf_latency
        free = start
        for _, words in split_words_by_line(new_data).items():
            ticket = self.mc.submit_write(start, words, kind="data", channel=core)
            free = max(free, ticket.persisted)
        self._controller_free[core] = max(
            self._controller_free[core], free - self._buf_latency
        )
        self.stats.add("silo.inplace_words", len(new_data))

        # The overflowed undo logs of this transaction are now useless.
        if (tid, txid) in self._overflowed:
            self._overflowed.discard((tid, txid))
            self.region.discard_tx(tid, txid)
        return stall

    # ------------------------------------------------------------------
    # Log overflow (Section III-F)
    # ------------------------------------------------------------------
    def _handle_overflow(self, core: int, tid: int, txid: int, now: int) -> int:
        """Evict the oldest entries: undo halves to the log region in a
        single batched request, new data to the data region."""
        buf = self._bufs[core]
        # Flushing overflowed logs runs in parallel with adding new
        # logs (Section III-F); only a controller whose flush queue has
        # fallen far behind delays buffer eviction.
        backlog = self._controller_free[core] - now
        stall = max(0, backlog - _CONTROLLER_QUEUE_CYCLES)
        start = now + stall + self._buf_latency

        batch = buf.pop_oldest(self._overflow_batch)
        new_data: Dict[int, int] = {}
        for entry in batch:
            if not entry.flush_bit:
                new_data[entry.addr] = entry.new
                entry.flush_bit = True
        free = start
        requests = self.region.persist_entries(
            tid,
            batch,
            kind="undo",
            per_request=OVERFLOW_BATCH_ENTRIES,
            request_span=ONPM_LINE_SIZE,
        )
        # The batch targets one on-PM buffer line precisely so it can
        # coalesce there (Section III-F): it is not forced through.
        for words in requests:
            ticket = self.mc.submit_write(start, words, kind="log", channel=core)
            free = max(free, ticket.persisted)
        for _, words in split_words_by_line(new_data).items():
            ticket = self.mc.submit_write(start, words, kind="data", channel=core)
            free = max(free, ticket.persisted)
        self._controller_free[core] = max(
            self._controller_free[core], free - self._buf_latency
        )
        self._overflowed.add((tid, txid))
        self.stats.add("silo.overflows")
        self.stats.add("silo.overflow_entries", len(batch))
        return stall

    # ------------------------------------------------------------------
    # Cacheline evictions set flush-bits (Section III-D)
    # ------------------------------------------------------------------
    def on_evictions(self, core: int, now: int, writebacks: Writebacks) -> int:
        stall = 0
        for line_base, words in writebacks:
            ticket = self.mc.submit_write(now, words, kind="data", channel=core)
            stall += ticket.admission_stall
            for buf in self._bufs:
                buf.mark_line_flushed(line_base)
        return stall

    # ------------------------------------------------------------------
    # Rare cases: crash and recovery (Section III-G)
    # ------------------------------------------------------------------
    def on_crash(self, core_in_tx: Dict[int, Tuple[int, int]], now: int) -> None:
        """Selective log flushing, powered by the small battery."""
        for core, buf in enumerate(self._bufs):
            if not len(buf):
                continue
            if core not in core_in_tx:  # pragma: no cover - defensive
                continue
            tid, _txid = core_in_tx[core]
            # Transaction failed to commit: flush all undo logs so
            # recovery can revoke the partial updates.
            entries = buf.drain()
            requests = self.region.persist_entries(
                tid,
                entries,
                kind="undo",
                per_request=self._overflow_batch,
                request_span=ONPM_LINE_SIZE,
            )
            for words in requests:
                self.mc.submit_write(
                    now, words, kind="log", write_through=True, channel=core
                )
            self.stats.add("silo.crash_undo_flushed", len(entries))

    def interrupted_commit(self, core: int, tid: int, txid: int, now: int) -> bool:
        """Crash at commit: Tx_end retired, so durability must hold.
        Flush the flush-bit-0 redo logs and the (tid, txid) ID tuple;
        recovery will replay them (Fig. 10f)."""
        self._gens[core].tx_end()
        buf = self._bufs[core]
        self.tx_log_counts.append((self._tx_total[core], buf.occupancy))
        entries = buf.drain()
        redo = [e for e in entries if not e.flush_bit]
        requests = self.region.persist_entries(
            tid,
            redo,
            kind="redo",
            per_request=_CRASH_FLUSH_PER_LINE,
            request_span=ONPM_LINE_SIZE,
        )
        for words in requests:
            self.mc.submit_write(
                now, words, kind="log", write_through=True, channel=core
            )
        tuple_words = self.region.persist_commit_tuple(tid, txid)
        self.mc.submit_write(
            now, tuple_words, kind="log", write_through=True, channel=core
        )
        self.stats.add("silo.crash_redo_flushed", len(redo))
        return True

    def recover(self) -> RecoveryReport:
        return wal_recover(
            self.region,
            self.pm,
            redo_filter=_silo_redo_filter,
            undo_filter=_silo_undo_filter,
        )

    def finalize(self, now: int) -> int:
        return max([now] + self._controller_free)
