"""Silo: speculative hardware logging with "Log as Data" (Section III).

The scheme keeps each transaction's merged undo+redo logs in a small
battery-backed log buffer in the memory controller.  In the common
failure-free case nothing is ever written to the PM log region:

* **commit** is an on-chip handshake; afterwards the log controller
  flushes the *new data* words of the surviving log entries straight
  into the PM data region (in-place update), in the background
  (Section III-D);
* **cacheline evictions** are never blocked — an evicted line sets the
  flush-bit of the matching log entries so their new data is not
  redundantly flushed at commit (Section III-D);
* **log overflow** evicts the oldest entries' *undo* halves to the log
  region in 14-entry batches while their new data goes to the data
  region, in parallel with new log generation (Section III-F);
* **a crash** triggers selective flushing: undo logs for open
  transactions (atomicity), redo logs plus an ID tuple for a
  transaction caught mid-commit (durability) (Section III-G).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.common.constants import ONPM_LINE_SIZE, OVERFLOW_BATCH_ENTRIES, WORD_MASK
from repro.common.errors import SimulationError
from repro.designs.policy import (
    DeltaGranularity,
    DesignSpec,
    ONE_FENCE_HW,
    RecoveryWalk,
)
from repro.designs.scheme import LoggingScheme, SchemeRegistry, Writebacks
from repro.hwlog.entry import LogEntry
from repro.hwlog.generator import LogGenerator
from repro.hwlog.logbuffer import AppendResult, LogBuffer
from repro.hwlog.region import PersistedLog
from repro.mem.address import split_words_by_line

#: Dense crash-flush packing: undo+redo entries per 256-byte request.
_CRASH_FLUSH_PER_LINE = ONPM_LINE_SIZE // LogEntry.UNDO_REDO_SIZE

#: How far the per-core log controller may run behind before a commit
#: handshake has to wait (the controller's work queue, in cycles).
_CONTROLLER_QUEUE_CYCLES = 2000

#: Enum member hoisted out of the per-store path (attribute lookups on
#: an Enum class are surprisingly costly at this call rate).
_FULL = AppendResult.FULL


def _silo_redo_filter(entry: PersistedLog) -> bool:
    """Committed transactions replay only flush-bit-0 redo logs; the
    flush-bit-1 overflow undo logs next to them are discarded."""
    return entry.kind == "redo" and not entry.flush_bit


def _silo_undo_filter(entry: PersistedLog) -> bool:
    """Uncommitted transactions revoke every persisted undo log."""
    return entry.kind == "undo"


@SchemeRegistry.register
class SiloScheme(LoggingScheme):
    """The paper's contribution (Fig. 2e, Fig. 5)."""

    name = "silo"
    spec = DesignSpec(
        name="silo",
        summary="speculative logging; commit is a controller handshake",
        granularity=DeltaGranularity(),
        fences=ONE_FENCE_HW,
        recovery=RecoveryWalk.selective(_silo_redo_filter, _silo_undo_filter),
        columnar_profile="silo",
    )

    def __init__(
        self,
        system,
        merging: bool = True,
        ignore_silent: bool = True,
        overflow_batch: int = OVERFLOW_BATCH_ENTRIES,
    ) -> None:
        """``merging``, ``ignore_silent`` and ``overflow_batch`` exist
        for the ablation benchmarks; the paper's design uses the
        defaults (Sections III-C and III-F)."""
        super().__init__(system)
        cores = self.config.cores
        self._overflow_batch = overflow_batch
        self._gens = [
            LogGenerator(c, self.stats, ignore_silent=ignore_silent)
            for c in range(cores)
        ]
        self._bufs = [
            LogBuffer(
                self.config.log_buffer,
                self.stats,
                name=f"logbuf.core{c}",
                merging=merging,
                obs=self.obs,
                core=c,
            )
            for c in range(cores)
        ]
        #: When each core's log controller finishes its queued flushes.
        self._controller_free = [0] * cores
        #: Arrival time of the most recent in-flight log entry per core.
        self._last_store = [0] * cores
        #: Transactions that spilled undo logs to the log region.
        self._overflowed: Set[Tuple[int, int]] = set()
        #: Per-transaction (total, remaining) log counts, for Fig. 13.
        self.tx_log_counts: List[Tuple[int, int]] = []
        self._tx_total = [0] * cores
        self._buf_latency = self.config.log_buffer.access_latency_cycles
        self._line_mask = ~(self.config.l1.line_size - 1)
        # Bound-method caches for the per-store/per-commit paths.
        self._submit_write = self.mc.submit_write
        self._buf_offer = [b.offer for b in self._bufs]
        self._buf_capacity = self.config.log_buffer.entries
        self._counters = self.stats.counters

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------
    def on_tx_begin(self, core: int, tid: int, txid: int, now: int) -> int:
        self._gens[core].tx_begin(tid, txid)
        self._tx_total[core] = 0
        return 0

    def on_store(
        self,
        core: int,
        tid: int,
        txid: int,
        addr: int,
        old: int,
        new: int,
        now: int,
        access,
    ) -> int:
        self._tx_total[core] += 1
        self._last_store[core] = now
        # LogGenerator.on_store() and LogBuffer.offer(), fused: this is
        # the scheme's per-store path, and the merge case (one buffer
        # probe, no LogEntry allocation) is the common one under
        # workload locality.  Semantics match the two calls exactly.
        gen = self._gens[core]
        if gen._txid is None:
            return 0
        counters = self._counters
        counters["loggen.stores_seen"] += 1
        if old == new and gen.ignore_silent:
            counters["loggen.ignored"] += 1
            return 0  # log ignorance: the store changed nothing
        counters["loggen.entries"] += 1
        buf = self._bufs[core]
        if not buf.merging:  # ablation configuration: generic path
            entry = LogEntry(gen._tid, gen._txid, addr, old, new)
            offer = self._buf_offer[core]
            stall = 0
            if offer(entry) is _FULL:
                stall += self._handle_overflow(core, tid, txid, now)
                if offer(entry) is _FULL:  # pragma: no cover
                    raise AssertionError("log buffer still full after overflow")
            return stall
        entries = buf._entries
        existing = entries.get(addr)
        obs = self.obs
        if existing is not None:
            if existing.tid != gen._tid or existing.txid != gen._txid:
                raise SimulationError(
                    "log merging must not cross transactions "
                    f"({existing.id_tuple()} vs {(gen._tid, gen._txid)})"
                )
            existing.new = new & WORD_MASK  # merge_new()
            counters[buf._k_merged] += 1
            if obs is not None:
                obs.logbuf_offer(core, "merged", len(entries))
            return 0
        stall = 0
        if len(entries) >= self._buf_capacity:
            stall = self._handle_overflow(core, tid, txid, now)
        entries[addr] = LogEntry(gen._tid, gen._txid, addr, old, new)
        counters[buf._k_appended] += 1
        occupancy = len(entries)
        if occupancy > counters.get(buf._k_peak, 0):
            counters[buf._k_peak] = occupancy
        if obs is not None:
            obs.logbuf_offer(core, "appended", occupancy)
        # The CPU store completes without waiting for the log entry to
        # reach the buffer (Section III-B): no critical-path cost.
        return stall

    def on_tx_end(self, core: int, tid: int, txid: int, now: int) -> int:
        self._gens[core].tx_end()
        buf = self._bufs[core]
        self.tx_log_counts.append((self._tx_total[core], buf.occupancy))

        # Commit handshake: the log generator notifies the controller,
        # which ACKs and starts flushing.  The final log entry was sent
        # at the final store over the same FIFO channel, so it arrives
        # before the notification regardless of the buffer's write
        # latency (Section III-D) — the handshake never waits for it.
        stall = self.config.commit_handshake_cycles
        # The in-place updates run in the background; commit only waits
        # if the controller's flush backlog exceeds its queue depth.
        backlog = self._controller_free[core] - now
        if backlog > _CONTROLLER_QUEUE_CYCLES:
            stall += backlog - _CONTROLLER_QUEUE_CYCLES

        # Background in-place update with the new data in the logs.
        entries = buf.drain()
        counters = self.stats.counters
        discarded = 0
        new_data: Dict[int, int] = {}
        for entry in entries:
            if entry.flush_bit:
                discarded += 1
            else:
                new_data[entry.addr] = entry.new
        if discarded:
            counters["silo.flushbit_discarded"] += discarded
        # The buffer read is pipelined: its latency delays when the
        # flush data reaches the MC but does not occupy the controller.
        controller_free = self._controller_free[core]
        start = (now if now > controller_free else controller_free) + self._buf_latency
        free = start
        if new_data:
            # split_words_by_line(), inlined (dict literal per line).
            mask = self._line_mask
            grouped: Dict[int, Dict[int, int]] = {}
            for addr, value in new_data.items():
                base = addr & mask
                group = grouped.get(base)
                if group is None:
                    grouped[base] = {addr: value}
                else:
                    group[addr] = value
            submit_write = self._submit_write
            for words in grouped.values():
                ticket = submit_write(start, words, kind="data", channel=core)
                persisted = ticket.persisted
                if persisted > free:
                    free = persisted
        back = free - self._buf_latency
        if back > self._controller_free[core]:
            self._controller_free[core] = back
        counters["silo.inplace_words"] += len(new_data)
        obs = self.obs
        if obs is not None and new_data:
            if obs.trace is not None:
                obs.trace.emit(
                    start,
                    "silo.inplace_flush",
                    core,
                    dur=free - start,
                    args={"words": len(new_data), "discarded": discarded},
                )
            if obs.metrics is not None:
                obs.metrics.record("silo.inplace_words", len(new_data))

        # The overflowed undo logs of this transaction are now useless.
        if (tid, txid) in self._overflowed:
            self._overflowed.discard((tid, txid))
            self.region.discard_tx(tid, txid)
        return stall

    # ------------------------------------------------------------------
    # Log overflow (Section III-F)
    # ------------------------------------------------------------------
    def _handle_overflow(self, core: int, tid: int, txid: int, now: int) -> int:
        """Evict the oldest entries: undo halves to the log region in a
        single batched request, new data to the data region."""
        buf = self._bufs[core]
        # Flushing overflowed logs runs in parallel with adding new
        # logs (Section III-F); only a controller whose flush queue has
        # fallen far behind delays buffer eviction.
        backlog = self._controller_free[core] - now
        stall = max(0, backlog - _CONTROLLER_QUEUE_CYCLES)
        start = now + stall + self._buf_latency

        batch = buf.pop_oldest(self._overflow_batch)
        new_data: Dict[int, int] = {}
        for entry in batch:
            if not entry.flush_bit:
                new_data[entry.addr] = entry.new
                entry.flush_bit = True
        free = start
        requests = self.region.persist_entries(
            tid,
            batch,
            kind="undo",
            per_request=OVERFLOW_BATCH_ENTRIES,
            request_span=ONPM_LINE_SIZE,
        )
        submit_write = self._submit_write
        # The batch targets one on-PM buffer line precisely so it can
        # coalesce there (Section III-F): it is not forced through.
        for words in requests:
            ticket = submit_write(start, words, kind="log", channel=core)
            persisted = ticket.persisted
            if persisted > free:
                free = persisted
        for words in split_words_by_line(new_data).values():
            ticket = submit_write(start, words, kind="data", channel=core)
            persisted = ticket.persisted
            if persisted > free:
                free = persisted
        back = free - self._buf_latency
        if back > self._controller_free[core]:
            self._controller_free[core] = back
        self._overflowed.add((tid, txid))
        counters = self.stats.counters
        counters["silo.overflows"] += 1
        counters["silo.overflow_entries"] += len(batch)
        obs = self.obs
        if obs is not None:
            obs.logbuf_overflow(core, now, len(batch), free - now)
        return stall

    # ------------------------------------------------------------------
    # Cacheline evictions set flush-bits (Section III-D)
    # ------------------------------------------------------------------
    def on_evictions(self, core: int, now: int, writebacks: Writebacks) -> int:
        stall = 0
        bufs = self._bufs
        counters = self.stats.counters
        submit_write = self._submit_write
        for _line_base, words in writebacks:
            ticket = submit_write(now, words, kind="data", channel=core)
            stall += ticket.admission_stall
            # The eviction search matches the *written-back words*, not
            # the whole line: under false sharing another core's word on
            # this line can still be dirty only in that core's private
            # L1/L2, so its new data never reached PM and its flush-bit
            # must stay clear — otherwise commit skips the in-place
            # flush and the update is silently lost on a crash.
            for buf in bufs:
                if buf.merging:
                    # mark_words_flushed(), inlined for the merging
                    # (word-keyed) buffer: one dict probe per word.
                    entries = buf._entries
                    if not entries:
                        continue
                    marked = 0
                    lookup = entries.get
                    for addr in words:
                        entry = lookup(addr)
                        if entry is not None and not entry.flush_bit:
                            entry.flush_bit = True
                            marked += 1
                    if marked:
                        counters[buf._k_flush_bits] += marked
                else:
                    buf.mark_words_flushed(words)
        return stall

    # ------------------------------------------------------------------
    # Rare cases: crash and recovery (Section III-G)
    # ------------------------------------------------------------------
    def on_crash(self, core_in_tx: Dict[int, Tuple[int, int]], now: int) -> None:
        """Selective log flushing, powered by the small battery."""
        for core, buf in enumerate(self._bufs):
            if not len(buf):
                continue
            if core not in core_in_tx:  # pragma: no cover - defensive
                continue
            tid, _txid = core_in_tx[core]
            # Transaction failed to commit: flush all undo logs so
            # recovery can revoke the partial updates.
            entries = buf.drain()
            requests = self.region.persist_entries(
                tid,
                entries,
                kind="undo",
                per_request=self._overflow_batch,
                request_span=ONPM_LINE_SIZE,
            )
            for words in requests:
                self.mc.submit_write(
                    now, words, kind="log", write_through=True, channel=core
                )
            self.stats.add("silo.crash_undo_flushed", len(entries))
            obs = self.obs
            if obs is not None and obs.trace is not None:
                obs.trace.emit(
                    now,
                    "crash.undo_flush",
                    core,
                    args={"entries": len(entries)},
                )

    def interrupted_commit(self, core: int, tid: int, txid: int, now: int) -> bool:
        """Crash at commit: Tx_end retired, so durability must hold.
        Flush the flush-bit-0 redo logs and the (tid, txid) ID tuple;
        recovery will replay them (Fig. 10f)."""
        self._gens[core].tx_end()
        buf = self._bufs[core]
        self.tx_log_counts.append((self._tx_total[core], buf.occupancy))
        entries = buf.drain()
        redo = [e for e in entries if not e.flush_bit]
        requests = self.region.persist_entries(
            tid,
            redo,
            kind="redo",
            per_request=_CRASH_FLUSH_PER_LINE,
            request_span=ONPM_LINE_SIZE,
        )
        for words in requests:
            self.mc.submit_write(
                now, words, kind="log", write_through=True, channel=core
            )
        tuple_words = self.region.persist_commit_tuple(tid, txid)
        self.mc.submit_write(
            now, tuple_words, kind="log", write_through=True, channel=core
        )
        self.stats.add("silo.crash_redo_flushed", len(redo))
        obs = self.obs
        if obs is not None and obs.trace is not None:
            obs.trace.emit(
                now, "crash.redo_flush", core, args={"entries": len(redo)}
            )
        return True

    def finalize(self, now: int) -> int:
        return max([now] + self._controller_free)
