"""Crash recovery from the PM log region (Section III-G, Fig. 10g).

All evaluated write-ahead designs share the same recovery skeleton:
walk each thread's log area in append order, group entries by
transaction, then

* **replay** the redo data of transactions whose ID tuple is recorded
  as committed (guaranteeing durability), and
* **revoke** the undo data of uncommitted transactions in reverse order
  (guaranteeing atomicity).

Designs differ only in which persisted entries participate — Silo's
selective flushing leaves flush-bit-1 overflow undo logs next to
flush-bit-0 redo logs of committed transactions and the recovery logic
must discard the former — so the walker takes per-design predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.hwlog.entry import entry_checksum
from repro.hwlog.region import LogRegion, PersistedLog
from repro.mem.pm import PMDevice

#: Decides whether a persisted entry's redo data is replayed for a
#: committed transaction.
RedoFilter = Callable[[PersistedLog], bool]
#: Decides whether a persisted entry's undo data is revoked for an
#: uncommitted transaction.
UndoFilter = Callable[[PersistedLog], bool]


def _default_redo(entry: PersistedLog) -> bool:
    return entry.kind in ("redo", "undo_redo")


def _default_undo(entry: PersistedLog) -> bool:
    return entry.kind in ("undo", "undo_redo")


#: Recovery timing model: scanning one persisted entry costs one PM
#: read; every replay/revoke costs one PM write (word granularity).
_SCAN_READ_NS = 50.0
_APPLY_WRITE_NS = 150.0


@dataclass
class RecoveryReport:
    """What recovery did, for tests and the worked examples.

    The corruption-accounting fields stay at their zero defaults on a
    clean crash, so pre-fault-injection consumers see exactly the old
    report.  They are the oracle's ground truth for the "no silent
    corruption" check: recovery must reject — and thereby report —
    every damaged entry it scans, never blindly replay it.
    """

    replayed: int = 0
    revoked: int = 0
    discarded: int = 0
    scanned: int = 0
    committed_txs: List[Tuple[int, int]] = field(default_factory=list)
    uncommitted_txs: List[Tuple[int, int]] = field(default_factory=list)
    #: Which design produced this report (empty for merged/aggregate).
    scheme: str = ""
    #: Entries rejected because the slot is a strict prefix — the tear
    #: left the trailing (checksum-bearing) words unwritten.
    rejected_torn: int = 0
    #: Entries rejected because the WPQ entry never reached media.
    rejected_dropped: int = 0
    #: Entries rejected because the recomputed checksum disagrees with
    #: the stored one (media bit error in a payload word).
    rejected_checksum: int = 0
    #: Commit tuples rejected by the complement-word check; their
    #: transactions were demoted to uncommitted.
    rejected_tuples: int = 0
    #: Words readable out of torn entries (the salvageable prefix) —
    #: never applied, but reported for diagnostics.
    words_salvaged: int = 0
    #: Data-region cells the post-recovery media scrub found still
    #: poisoned (uncorrectable media error, not overwritten during
    #: replay/revoke).
    media_poisoned: int = 0
    #: Poisoned cells healed because recovery's writes re-programmed
    #: them.
    poison_healed: int = 0
    #: The still-poisoned word addresses, for operator triage.
    poisoned_addrs: List[int] = field(default_factory=list)

    @property
    def rejected_total(self) -> int:
        return (
            self.rejected_torn
            + self.rejected_dropped
            + self.rejected_checksum
        )

    @property
    def estimated_ns(self) -> float:
        """First-order recovery latency: sequential log scan plus the
        replay/revoke writes.  Independent of the simulator clock —
        recovery happens on the post-crash boot path."""
        applies = self.replayed + self.revoked
        return self.scanned * _SCAN_READ_NS + applies * _APPLY_WRITE_NS

    def merge(self, other: "RecoveryReport") -> None:
        self.replayed += other.replayed
        self.revoked += other.revoked
        self.discarded += other.discarded
        self.scanned += other.scanned
        self.committed_txs.extend(other.committed_txs)
        self.uncommitted_txs.extend(other.uncommitted_txs)
        self.rejected_torn += other.rejected_torn
        self.rejected_dropped += other.rejected_dropped
        self.rejected_checksum += other.rejected_checksum
        self.rejected_tuples += other.rejected_tuples
        self.words_salvaged += other.words_salvaged
        self.media_poisoned += other.media_poisoned
        self.poison_healed += other.poison_healed
        self.poisoned_addrs.extend(other.poisoned_addrs)


def _group_by_tx(
    logs: List[PersistedLog],
) -> List[Tuple[Tuple[int, int], List[PersistedLog]]]:
    """Group a thread's logs by transaction, preserving append order."""
    groups: Dict[Tuple[int, int], List[PersistedLog]] = {}
    order: List[Tuple[int, int]] = []
    for entry in logs:
        key = entry.id_tuple()
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(entry)
    return [(key, groups[key]) for key in order]


def _entry_state(entry: PersistedLog) -> str:
    """Classify one scanned entry: ``"ok"`` | ``"torn"`` | ``"dropped"``
    | ``"checksum"``.

    Device-level slot damage (torn prefix, lost WPQ entry) is checked
    first — a torn slot is always detectable because the checksum word
    is serialized last.  An intact slot is then validated against its
    stored checksum; ``checksum is None`` marks a hand-built record
    with no stored checksum, treated as unchecked (legacy behaviour).
    """
    integrity = entry.integrity
    if integrity != "ok":
        return "torn" if integrity == "torn" else "dropped"
    stored = entry.checksum
    if stored is not None and stored != entry_checksum(
        entry.tid, entry.txid, entry.addr, entry.old, entry.new
    ):
        return "checksum"
    return "ok"


def wal_recover(
    region: LogRegion,
    pm: PMDevice,
    redo_filter: Optional[RedoFilter] = None,
    undo_filter: Optional[UndoFilter] = None,
    truncate: bool = True,
    scheme: str = "",
) -> RecoveryReport:
    """Run the shared recovery walk and rebuild the PM data region.

    Recovery writes go through the PM device tagged ``recovery`` so
    experiments can separate them from runtime traffic.

    Every scanned entry is validated before use (``_entry_state``):
    torn, dropped and checksum-mismatched entries are skipped and
    *reported* — never replayed or revoked — and a post-walk media
    scrub surfaces any data-region cell still carrying an
    uncorrectable error.  On a clean crash every entry validates and
    the walk is bit-identical to the pre-hardening recovery.
    """
    redo_ok = redo_filter if redo_filter is not None else _default_redo
    undo_ok = undo_filter if undo_filter is not None else _default_undo
    report = RecoveryReport(scheme=scheme)
    report.rejected_tuples = len(region.corrupt_tuples())

    for tid in region.all_threads():
        logs = region.logs_for_thread(tid)
        report.scanned += len(logs)
        for (log_tid, txid), entries in _group_by_tx(logs):
            usable: List[PersistedLog] = []
            for entry in entries:
                state = _entry_state(entry)
                if state == "ok":
                    usable.append(entry)
                elif state == "torn":
                    report.rejected_torn += 1
                    if entry.present_words:
                        report.words_salvaged += entry.present_words
                elif state == "dropped":
                    report.rejected_dropped += 1
                else:
                    report.rejected_checksum += 1
            if region.is_committed(log_tid, txid):
                report.committed_txs.append((log_tid, txid))
                for entry in usable:  # replay in append order
                    if redo_ok(entry):
                        pm.write_request({entry.addr: entry.new}, kind="recovery")
                        report.replayed += 1
                    else:
                        report.discarded += 1
            else:
                report.uncommitted_txs.append((log_tid, txid))
                for entry in reversed(usable):  # revoke newest-first
                    if undo_ok(entry):
                        pm.write_request({entry.addr: entry.old}, kind="recovery")
                        report.revoked += 1
                    else:
                        report.discarded += 1

    pm.drain()
    # Media scrub: after every recovery write has reached the cells,
    # any address still poisoned is an uncorrectable error the log
    # could not repair — report it rather than serving corrupt data.
    report.poisoned_addrs = pm.media.poisoned_addrs()
    report.media_poisoned = len(report.poisoned_addrs)
    report.poison_healed = pm.media.poison_healed
    if truncate:
        region.truncate_all()
    return report
