"""Crash recovery from the PM log region (Section III-G, Fig. 10g).

All evaluated write-ahead designs share the same recovery skeleton:
walk each thread's log area in append order, group entries by
transaction, then

* **replay** the redo data of transactions whose ID tuple is recorded
  as committed (guaranteeing durability), and
* **revoke** the undo data of uncommitted transactions in reverse order
  (guaranteeing atomicity).

Designs differ only in which persisted entries participate — Silo's
selective flushing leaves flush-bit-1 overflow undo logs next to
flush-bit-0 redo logs of committed transactions and the recovery logic
must discard the former — so the walker takes per-design predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.hwlog.region import LogRegion, PersistedLog
from repro.mem.pm import PMDevice

#: Decides whether a persisted entry's redo data is replayed for a
#: committed transaction.
RedoFilter = Callable[[PersistedLog], bool]
#: Decides whether a persisted entry's undo data is revoked for an
#: uncommitted transaction.
UndoFilter = Callable[[PersistedLog], bool]


def _default_redo(entry: PersistedLog) -> bool:
    return entry.kind in ("redo", "undo_redo")


def _default_undo(entry: PersistedLog) -> bool:
    return entry.kind in ("undo", "undo_redo")


#: Recovery timing model: scanning one persisted entry costs one PM
#: read; every replay/revoke costs one PM write (word granularity).
_SCAN_READ_NS = 50.0
_APPLY_WRITE_NS = 150.0


@dataclass
class RecoveryReport:
    """What recovery did, for tests and the worked examples."""

    replayed: int = 0
    revoked: int = 0
    discarded: int = 0
    scanned: int = 0
    committed_txs: List[Tuple[int, int]] = field(default_factory=list)
    uncommitted_txs: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def estimated_ns(self) -> float:
        """First-order recovery latency: sequential log scan plus the
        replay/revoke writes.  Independent of the simulator clock —
        recovery happens on the post-crash boot path."""
        applies = self.replayed + self.revoked
        return self.scanned * _SCAN_READ_NS + applies * _APPLY_WRITE_NS

    def merge(self, other: "RecoveryReport") -> None:
        self.replayed += other.replayed
        self.revoked += other.revoked
        self.discarded += other.discarded
        self.scanned += other.scanned
        self.committed_txs.extend(other.committed_txs)
        self.uncommitted_txs.extend(other.uncommitted_txs)


def _group_by_tx(
    logs: List[PersistedLog],
) -> List[Tuple[Tuple[int, int], List[PersistedLog]]]:
    """Group a thread's logs by transaction, preserving append order."""
    groups: Dict[Tuple[int, int], List[PersistedLog]] = {}
    order: List[Tuple[int, int]] = []
    for entry in logs:
        key = entry.id_tuple()
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(entry)
    return [(key, groups[key]) for key in order]


def wal_recover(
    region: LogRegion,
    pm: PMDevice,
    redo_filter: Optional[RedoFilter] = None,
    undo_filter: Optional[UndoFilter] = None,
    truncate: bool = True,
) -> RecoveryReport:
    """Run the shared recovery walk and rebuild the PM data region.

    Recovery writes go through the PM device tagged ``recovery`` so
    experiments can separate them from runtime traffic.
    """
    redo_ok = redo_filter if redo_filter is not None else _default_redo
    undo_ok = undo_filter if undo_filter is not None else _default_undo
    report = RecoveryReport()

    for tid in region.all_threads():
        report.scanned += len(region.logs_for_thread(tid))
        for (log_tid, txid), entries in _group_by_tx(region.logs_for_thread(tid)):
            if region.is_committed(log_tid, txid):
                report.committed_txs.append((log_tid, txid))
                for entry in entries:  # replay in append order
                    if redo_ok(entry):
                        pm.write_request({entry.addr: entry.new}, kind="recovery")
                        report.replayed += 1
                    else:
                        report.discarded += 1
            else:
                report.uncommitted_txs.append((log_tid, txid))
                for entry in reversed(entries):  # revoke newest-first
                    if undo_ok(entry):
                        pm.write_request({entry.addr: entry.old}, kind="recovery")
                        report.revoked += 1
                    else:
                        report.discarded += 1

    pm.drain()
    if truncate:
        region.truncate_all()
    return report
