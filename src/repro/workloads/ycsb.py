"""YCSB macro-benchmark: 20% reads / 80% updates (Section VI-A).

Key-value records with an 8-word (64-byte) value payload, accessed
with a Zipfian key distribution.  An update rewrites the record's
value line; a read loads it.  The skewed access pattern gives the
strong locality the paper credits for TPCC/YCSB's stable behaviour in
large-transaction runs (Section VI-F).
"""

from __future__ import annotations

import bisect
import random
from typing import List

from repro.common.constants import LINE_SIZE, WORD_SIZE
from repro.trace.trace import Trace
from repro.workloads.memspace import RecordingMemory, WorkloadContext

_VALUE_WORDS = 8


class ZipfSampler:
    """Zipfian(theta) sampler over ``0..n-1`` via inverse-CDF lookup."""

    def __init__(self, n: int, theta: float = 0.99) -> None:
        weights = [1.0 / ((i + 1) ** theta) for i in range(n)]
        total = sum(weights)
        cumulative: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cumulative.append(acc)
        self._cdf = cumulative

    def sample(self, rng: random.Random) -> int:
        return bisect.bisect_left(self._cdf, rng.random())


class YCSBStore:
    """One thread's key-value store: a flat record table."""

    def __init__(self, mem: RecordingMemory, records: int) -> None:
        self.mem = mem
        self.records = records
        self._table = mem.heap.alloc(records * _VALUE_WORDS * WORD_SIZE, align=LINE_SIZE)
        for key in range(records):
            base = self.record_addr(key)
            for i in range(_VALUE_WORDS):
                mem.write_field(base, i, (key << 8) | i)

    def record_addr(self, key: int) -> int:
        return self._table + key * _VALUE_WORDS * WORD_SIZE

    def read(self, key: int) -> List[int]:
        base = self.record_addr(key)
        return [self.mem.read_field(base, i) for i in range(_VALUE_WORDS)]

    def update(self, key: int, payload: int, fields: int = 2) -> None:
        """Rewrite the whole record (row marshalling), changing only
        ``fields`` field words — the rest are silent rewrites that log
        ignorance removes, the locality the paper credits YCSB with."""
        base = self.record_addr(key)
        changed = {1 + (payload + k) % (_VALUE_WORDS - 1) for k in range(fields)}
        for i in range(_VALUE_WORDS):
            if i in changed:
                self.mem.write_field(base, i, payload ^ (i << 56) | 1)
            else:
                self.mem.write_field(base, i, self.mem.peek_field(base, i))


def build(
    threads: int = 8,
    transactions: int = 1000,
    records: int = 1024,
    read_fraction: float = 0.20,
    zipf_theta: float = 0.99,
    ops_per_tx: int = 1,
    seed: int = 9,
) -> Trace:
    """Build the YCSB trace (``ops_per_tx`` reads/updates per
    transaction)."""
    ctx = WorkloadContext(threads, "ycsb")
    zipf = ZipfSampler(records, zipf_theta)
    for tid, mem in enumerate(ctx.memories):
        rng = random.Random((seed << 8) | tid)
        store = YCSBStore(mem, records)
        for i in range(transactions):
            mem.begin_tx()
            for _ in range(ops_per_tx):
                key = zipf.sample(rng)
                if rng.random() < read_fraction:
                    store.read(key)
                else:
                    store.update(key, rng.getrandbits(56))
            mem.commit()
    return ctx.build_trace()
