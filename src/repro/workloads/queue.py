"""Queue micro-benchmark: random enqueues and dequeues.

A linked FIFO of 64-byte nodes.  Enqueues allocate and fill a fresh
node (low spatial reuse — every transaction touches new cachelines),
dequeues advance the head pointer.  The paper calls out Array and
Queue as the workloads where LAD suffers from many dirty lines per
transaction (Section VI-C).
"""

from __future__ import annotations

import random

from repro.common.constants import LINE_SIZE, WORD_SIZE
from repro.trace.trace import Trace
from repro.workloads.elements import PAD_PATTERN
from repro.workloads.memspace import RecordingMemory, WorkloadContext

_VALUE = 0
_NEXT = 1
_PAD0 = 2
_NODE_WORDS = 8


class PersistentQueue:
    """One thread's persistent linked queue."""

    def __init__(self, mem: RecordingMemory) -> None:
        self.mem = mem
        #: Two adjacent pointer cells: head and tail.
        self.head_cell = mem.heap.alloc(2 * WORD_SIZE, align=LINE_SIZE)
        self.tail_cell = self.head_cell + WORD_SIZE
        sentinel = self._new_node(0)
        mem.write(self.head_cell, sentinel)
        mem.write(self.tail_cell, sentinel)

    def _new_node(self, value: int) -> int:
        node = self.mem.heap.alloc(_NODE_WORDS * WORD_SIZE, align=LINE_SIZE)
        self.mem.write_field(node, _VALUE, value)
        self.mem.write_field(node, _NEXT, 0)
        for i in range(_PAD0, _NODE_WORDS):
            self.mem.write_field(node, i, PAD_PATTERN)
        return node

    def enqueue(self, value: int) -> None:
        node = self._new_node(value)
        tail = self.mem.read(self.tail_cell)
        self.mem.write_field(tail, _NEXT, node)
        self.mem.write(self.tail_cell, node)

    def dequeue(self):
        head = self.mem.read(self.head_cell)
        first = self.mem.read_field(head, _NEXT)
        if not first:
            return None
        value = self.mem.read_field(first, _VALUE)
        self.mem.write(self.head_cell, first)
        return value

    def is_empty(self) -> bool:
        head = self.mem.peek(self.head_cell)
        return self.mem.peek_field(head, _NEXT) == 0


def build(
    threads: int = 8,
    transactions: int = 1000,
    warmup_items: int = 64,
    ops_per_tx: int = 1,
    seed: int = 4,
) -> Trace:
    """Build the Queue workload: ``ops_per_tx`` random
    enqueue/dequeue operations per transaction."""
    ctx = WorkloadContext(threads, "queue")
    for tid, mem in enumerate(ctx.memories):
        rng = random.Random((seed << 8) | tid)
        queue = PersistentQueue(mem)
        for i in range(warmup_items):
            queue.enqueue(i + 1)
        for i in range(transactions):
            mem.begin_tx()
            for _ in range(ops_per_tx):
                if rng.random() < 0.5 and not queue.is_empty():
                    queue.dequeue()
                else:
                    queue.enqueue(i + 1)
            mem.commit()
    return ctx.build_trace()
