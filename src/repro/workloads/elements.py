"""The 64-byte data element shared by the micro-benchmarks.

Section VI-A: "The size of data element is 64B in each
micro-benchmark."  An element is eight words: a key, a value and six
words of common formatting/padding.  The padding words are identical
across elements, which is what makes whole-element copies (Array's
swaps) mostly *silent* stores — the behaviour behind the paper's
observation that 90.4% of Array's logs are ignored (Section VI-D).
"""

from __future__ import annotations

from typing import List

from repro.common.constants import LINE_SIZE, WORD_SIZE
from repro.workloads.memspace import RecordingMemory

#: Words per element.
ELEMENT_WORDS = LINE_SIZE // WORD_SIZE

#: The common padding pattern shared by all elements.
PAD_PATTERN = 0xABABABABABABABAB


def element_words(key: int, value: int) -> List[int]:
    """The eight word values of an element."""
    return [key, value] + [PAD_PATTERN] * (ELEMENT_WORDS - 2)


def write_element(mem: RecordingMemory, base: int, key: int, value: int) -> None:
    """Store a full element (eight word stores)."""
    for index, word in enumerate(element_words(key, value)):
        mem.write_field(base, index, word)


def read_element(mem: RecordingMemory, base: int) -> List[int]:
    """Load a full element (eight word loads, line-deduplicated)."""
    return [mem.read_field(base, index) for index in range(ELEMENT_WORDS)]


def copy_element(mem: RecordingMemory, src_words: List[int], dst: int) -> None:
    """Store previously-read element content to another slot."""
    for index, word in enumerate(src_words):
        mem.write_field(dst, index, word)
