"""Array micro-benchmark: randomly swap two 64-byte elements.

Each transaction reads two random elements and writes both back
swapped.  Sixteen word stores are issued, but the six padding words of
every element are identical, so most stores do not change the stored
value — the log generator's *log ignorance* removes them
(Section VI-D reports 90.4% of Array's logs ignored).
"""

from __future__ import annotations

import random

from repro.common.constants import LINE_SIZE
from repro.trace.trace import Trace
from repro.workloads.elements import copy_element, read_element, write_element
from repro.workloads.memspace import WorkloadContext


def build(
    threads: int = 8,
    transactions: int = 1000,
    elements: int = 1024,
    ops_per_tx: int = 1,
    seed: int = 1,
) -> Trace:
    """Build the Array workload trace.  ``ops_per_tx`` swaps are
    wrapped in each transaction (used to scale write sets, Fig. 14)."""
    ctx = WorkloadContext(threads, "array")
    for tid, mem in enumerate(ctx.memories):
        rng = random.Random((seed << 8) | tid)
        base = mem.heap.alloc_line(elements * LINE_SIZE)

        # Setup: elements carry a distinct key and shared formatting
        # (value + padding), so a swap only really changes the keys.
        for i in range(elements):
            write_element(mem, base + i * LINE_SIZE, key=i + 1, value=0)

        # Measured phase: ``ops_per_tx`` swaps per transaction.
        for _ in range(transactions):
            mem.begin_tx()
            for _ in range(ops_per_tx):
                i = rng.randrange(elements)
                j = rng.randrange(elements)
                while j == i:
                    j = rng.randrange(elements)
                a = base + i * LINE_SIZE
                b = base + j * LINE_SIZE
                ea = read_element(mem, a)
                eb = read_element(mem, b)
                copy_element(mem, eb, a)
                copy_element(mem, ea, b)
            mem.commit()
    return ctx.build_trace()
