"""B-tree micro-benchmark: random insertions of 64-byte elements.

A real order-9 B-tree (at most 8 elements per node) implemented over
the recording memory, using preemptive top-down splitting so one pass
per insert suffices.  Each slot holds a full 64-byte data element
(key + value + shared padding, Section VI-A); inserting shifts whole
elements, so most of the shifted words rewrite identical padding —
the log generator's *log ignorance* and *log merging* remove them
(Section VI-D).

Node layout (word indices):

    0        element count (leaf flag in the high bit)
    1..64    eight 8-word element slots
    65..73   nine child pointers (internal nodes only)
"""

from __future__ import annotations

import random

from repro.common.constants import WORD_SIZE
from repro.trace.trace import Trace
from repro.workloads.elements import ELEMENT_WORDS, element_words
from repro.workloads.memspace import RecordingMemory, WorkloadContext

MAX_KEYS = 8
_NODE_WORDS = 1 + MAX_KEYS * ELEMENT_WORDS + (MAX_KEYS + 1)
_NODE_BYTES = _NODE_WORDS * WORD_SIZE
_LEAF_FLAG = 1 << 62

_COUNT = 0
_ELEM0 = 1
_CHILD0 = 1 + MAX_KEYS * ELEMENT_WORDS


class BTree:
    """One thread's persistent B-tree of 64-byte elements."""

    def __init__(self, mem: RecordingMemory) -> None:
        self.mem = mem
        self.root = self._new_node(leaf=True)
        #: Root pointer cell in PM (so root changes are persistent).
        self.root_cell = mem.heap.alloc(WORD_SIZE)
        mem.write(self.root_cell, self.root)

    # ------------------------------------------------------------------
    # Node helpers
    # ------------------------------------------------------------------
    def _new_node(self, leaf: bool) -> int:
        node = self.mem.heap.alloc(_NODE_BYTES, align=64)
        self.mem.write_field(node, _COUNT, _LEAF_FLAG if leaf else 0)
        return node

    def _count(self, node: int) -> int:
        return self.mem.read_field(node, _COUNT) & ~_LEAF_FLAG

    def _is_leaf(self, node: int) -> bool:
        return bool(self.mem.read_field(node, _COUNT) & _LEAF_FLAG)

    def _set_count(self, node: int, count: int, leaf: bool) -> None:
        self.mem.write_field(node, _COUNT, count | (_LEAF_FLAG if leaf else 0))

    def _elem_field(self, slot: int, word: int) -> int:
        return _ELEM0 + slot * ELEMENT_WORDS + word

    def _key(self, node: int, slot: int) -> int:
        return self.mem.read_field(node, self._elem_field(slot, 0))

    def _read_element(self, node: int, slot: int):
        return [
            self.mem.read_field(node, self._elem_field(slot, w))
            for w in range(ELEMENT_WORDS)
        ]

    def _write_element(self, node: int, slot: int, words) -> None:
        for w, value in enumerate(words):
            self.mem.write_field(node, self._elem_field(slot, w), value)

    def _child(self, node: int, i: int) -> int:
        return self.mem.read_field(node, _CHILD0 + i)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, key: int, value: int = 0) -> None:
        root = self.mem.read(self.root_cell)
        if self._count(root) == MAX_KEYS:
            new_root = self._new_node(leaf=False)
            self.mem.write_field(new_root, _CHILD0, root)
            self._split_child(new_root, 0)
            self.mem.write(self.root_cell, new_root)
            root = new_root
        self._insert_nonfull(root, key, value)

    def _split_child(self, parent: int, index: int) -> None:
        """Split the full child at ``index``; the median moves up."""
        child = self._child(parent, index)
        leaf = self._is_leaf(child)
        sibling = self._new_node(leaf=leaf)
        mid = MAX_KEYS // 2
        median = self._read_element(child, mid)

        # Upper half of the elements (and children) moves to the sibling.
        upper = MAX_KEYS - mid - 1
        for i in range(upper):
            self._write_element(sibling, i, self._read_element(child, mid + 1 + i))
        if not leaf:
            for i in range(upper + 1):
                self.mem.write_field(
                    sibling, _CHILD0 + i, self._child(child, mid + 1 + i)
                )
        self._set_count(sibling, upper, leaf)
        self._set_count(child, mid, leaf)

        # Shift the parent's elements/children right, link the sibling.
        count = self._count(parent)
        for i in range(count - 1, index - 1, -1):
            self._write_element(parent, i + 1, self._read_element(parent, i))
        for i in range(count, index, -1):
            self.mem.write_field(parent, _CHILD0 + i + 1, self._child(parent, i))
        self._write_element(parent, index, median)
        self.mem.write_field(parent, _CHILD0 + index + 1, sibling)
        self._set_count(parent, count + 1, leaf=False)

    def _insert_nonfull(self, node: int, key: int, value: int) -> None:
        element = element_words(key, value)
        while True:
            count = self._count(node)
            if self._is_leaf(node):
                i = count - 1
                while i >= 0 and self._key(node, i) > key:
                    self._write_element(node, i + 1, self._read_element(node, i))
                    i -= 1
                self._write_element(node, i + 1, element)
                self._set_count(node, count + 1, leaf=True)
                return
            i = count - 1
            while i >= 0 and self._key(node, i) > key:
                i -= 1
            i += 1
            if self._count(self._child(node, i)) == MAX_KEYS:
                self._split_child(node, i)
                if self._key(node, i) < key:
                    i += 1
            node = self._child(node, i)

    # ------------------------------------------------------------------
    # Deletion (classic CLRS top-down delete with merge/borrow)
    # ------------------------------------------------------------------
    #: Minimum keys per non-root node.  With an even MAX_KEYS a merge
    #: combines two minimal children plus the separator, which must fit:
    #: 2 * MIN + 1 <= MAX.
    _MIN_KEYS = (MAX_KEYS - 1) // 2

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns whether it was present."""
        root = self.mem.read(self.root_cell)
        removed = self._delete_from(root, key)
        # Shrink the root if it emptied out.
        root = self.mem.read(self.root_cell)
        if self._count(root) == 0 and not self._is_leaf(root):
            self.mem.write(self.root_cell, self._child(root, 0))
        return removed

    def _find_slot(self, node: int, key: int) -> int:
        i = 0
        count = self._count(node)
        while i < count and self._key(node, i) < key:
            i += 1
        return i

    def _delete_from(self, node: int, key: int) -> bool:
        while True:
            count = self._count(node)
            i = self._find_slot(node, key)
            hit = i < count and self._key(node, i) == key
            if self._is_leaf(node):
                if not hit:
                    return False
                for j in range(i, count - 1):
                    self._write_element(node, j, self._read_element(node, j + 1))
                self._set_count(node, count - 1, leaf=True)
                return True
            if hit:
                return self._delete_internal(node, i)
            child = self._child(node, i)
            if self._count(child) <= self._MIN_KEYS:
                i = self._refill_child(node, i)
            node = self._child(node, i)

    def _delete_internal(self, node: int, i: int) -> bool:
        """Key found in an internal node: replace it with the
        predecessor (or successor) and delete that from the subtree."""
        left, right = self._child(node, i), self._child(node, i + 1)
        if self._count(left) > self._MIN_KEYS:
            pred = self._max_element(left)
            self._write_element(node, i, pred)
            return self._delete_from(left, pred[0])
        if self._count(right) > self._MIN_KEYS:
            succ = self._min_element(right)
            self._write_element(node, i, succ)
            return self._delete_from(right, succ[0])
        key = self._key(node, i)
        self._merge_children(node, i)
        return self._delete_from(self._child(node, i), key)

    def _max_element(self, node: int):
        while not self._is_leaf(node):
            node = self._child(node, self._count(node))
        return self._read_element(node, self._count(node) - 1)

    def _min_element(self, node: int):
        while not self._is_leaf(node):
            node = self._child(node, 0)
        return self._read_element(node, 0)

    def _refill_child(self, node: int, i: int) -> int:
        """Ensure child ``i`` has more than the minimum keys before
        descending; returns the (possibly shifted) child index."""
        count = self._count(node)
        if i > 0 and self._count(self._child(node, i - 1)) > self._MIN_KEYS:
            self._borrow_from_left(node, i)
            return i
        if i < count and self._count(self._child(node, i + 1)) > self._MIN_KEYS:
            self._borrow_from_right(node, i)
            return i
        if i == count:  # rightmost: merge with the left sibling
            i -= 1
        self._merge_children(node, i)
        return i

    def _borrow_from_left(self, node: int, i: int) -> None:
        child, left = self._child(node, i), self._child(node, i - 1)
        child_count = self._count(child)
        leaf = self._is_leaf(child)
        for j in range(child_count - 1, -1, -1):
            self._write_element(child, j + 1, self._read_element(child, j))
        if not leaf:
            for j in range(child_count, -1, -1):
                self.mem.write_field(
                    child, _CHILD0 + j + 1, self._child(child, j)
                )
        self._write_element(child, 0, self._read_element(node, i - 1))
        left_count = self._count(left)
        self._write_element(node, i - 1, self._read_element(left, left_count - 1))
        if not leaf:
            self.mem.write_field(
                child, _CHILD0, self._child(left, left_count)
            )
        self._set_count(child, child_count + 1, leaf)
        self._set_count(left, left_count - 1, leaf)

    def _borrow_from_right(self, node: int, i: int) -> None:
        child, right = self._child(node, i), self._child(node, i + 1)
        child_count = self._count(child)
        leaf = self._is_leaf(child)
        self._write_element(child, child_count, self._read_element(node, i))
        self._write_element(node, i, self._read_element(right, 0))
        right_count = self._count(right)
        if not leaf:
            self.mem.write_field(
                child, _CHILD0 + child_count + 1, self._child(right, 0)
            )
        for j in range(right_count - 1):
            self._write_element(right, j, self._read_element(right, j + 1))
        if not leaf:
            for j in range(right_count):
                self.mem.write_field(
                    right, _CHILD0 + j, self._child(right, j + 1)
                )
        self._set_count(child, child_count + 1, leaf)
        self._set_count(right, right_count - 1, leaf)

    def _merge_children(self, node: int, i: int) -> None:
        """Fold the separator at ``i`` and child ``i+1`` into child
        ``i`` (both have the minimum key count)."""
        child, right = self._child(node, i), self._child(node, i + 1)
        child_count = self._count(child)
        right_count = self._count(right)
        leaf = self._is_leaf(child)
        self._write_element(child, child_count, self._read_element(node, i))
        for j in range(right_count):
            self._write_element(
                child, child_count + 1 + j, self._read_element(right, j)
            )
        if not leaf:
            for j in range(right_count + 1):
                self.mem.write_field(
                    child, _CHILD0 + child_count + 1 + j, self._child(right, j)
                )
        self._set_count(child, child_count + 1 + right_count, leaf)
        # Close the gap in the parent.
        count = self._count(node)
        for j in range(i, count - 1):
            self._write_element(node, j, self._read_element(node, j + 1))
        for j in range(i + 1, count):
            self.mem.write_field(node, _CHILD0 + j, self._child(node, j + 1))
        self._set_count(node, count - 1, leaf=False)

    # ------------------------------------------------------------------
    # Lookup (used by tests)
    # ------------------------------------------------------------------
    def contains(self, key: int) -> bool:
        node = self.mem.peek(self.root_cell)
        while True:
            count = self.mem.peek_field(node, _COUNT) & ~_LEAF_FLAG
            leaf = bool(self.mem.peek_field(node, _COUNT) & _LEAF_FLAG)
            i = 0
            while (
                i < count
                and self.mem.peek_field(node, self._elem_field(i, 0)) < key
            ):
                i += 1
            if i < count and self.mem.peek_field(node, self._elem_field(i, 0)) == key:
                return True
            if leaf:
                return False
            node = self.mem.peek_field(node, _CHILD0 + i)


def build(
    threads: int = 8,
    transactions: int = 1000,
    warmup_inserts: int = 256,
    ops_per_tx: int = 1,
    operation_mix: str = "insert",
    seed: int = 2,
) -> Trace:
    """Build the Btree workload: ``ops_per_tx`` operations per
    transaction.  ``operation_mix`` is ``"insert"`` (the paper's
    configuration) or ``"mixed"`` (50% insert / 30% delete /
    20% lookup), exercising the full structure."""
    ctx = WorkloadContext(threads, "btree")
    for tid, mem in enumerate(ctx.memories):
        rng = random.Random((seed << 8) | tid)
        tree = BTree(mem)
        live = []
        used = set()

        def fresh_key() -> int:
            while True:
                key = rng.getrandbits(40) + 1
                if key not in used:
                    used.add(key)
                    return key

        def one_op() -> None:
            roll = rng.random() if operation_mix == "mixed" else 0.0
            if roll < 0.5 or not live:
                key = fresh_key()
                tree.insert(key)
                live.append(key)
            elif roll < 0.8:
                index = rng.randrange(len(live))
                live[index], live[-1] = live[-1], live[index]
                tree.delete(live.pop())
            else:
                tree.contains(rng.choice(live))

        for _ in range(warmup_inserts):
            key = fresh_key()
            tree.insert(key)
            live.append(key)
        for _ in range(transactions):
            mem.begin_tx()
            for _ in range(ops_per_tx):
                one_op()
            mem.commit()
    return ctx.build_trace()
