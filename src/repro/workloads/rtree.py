"""Rtree: the PMDK radix-tree insert workload (Fig. 4).

A 16-ary radix tree over 40-bit keys (10 nibble levels).  An insert
walks nibble by nibble, allocating interior nodes on demand and
finally writing the leaf value — a pointer-chasing workload with small
write sets, like PMDK's ``radix_tree`` example.
"""

from __future__ import annotations

import random

from repro.common.constants import LINE_SIZE, WORD_SIZE
from repro.trace.trace import Trace
from repro.workloads.memspace import RecordingMemory, WorkloadContext

_FANOUT = 16
_LEVELS = 10  # 40-bit keys, 4 bits per level
_NODE_BYTES = _FANOUT * WORD_SIZE


class RadixTree:
    """One thread's persistent 16-ary radix tree."""

    def __init__(self, mem: RecordingMemory) -> None:
        self.mem = mem
        self.root = self._new_node()

    def _new_node(self) -> int:
        # Freshly allocated PM is zeroed, so a new node needs no
        # initialization stores (its 16 child slots read as null).
        return self.mem.heap.alloc(_NODE_BYTES, align=LINE_SIZE)

    @staticmethod
    def _nibble(key: int, level: int) -> int:
        return (key >> (4 * (_LEVELS - 1 - level))) & 0xF

    def insert(self, key: int, value: int) -> None:
        node = self.root
        for level in range(_LEVELS - 1):
            slot = node + self._nibble(key, level) * WORD_SIZE
            child = self.mem.read(slot)
            if not child:
                child = self._new_node()
                self.mem.write(slot, child)
            node = child
        leaf_slot = node + self._nibble(key, _LEVELS - 1) * WORD_SIZE
        self.mem.write(leaf_slot, value)

    def delete(self, key: int) -> bool:
        """Clear the leaf slot for ``key``; returns whether a value was
        present.  Interior nodes are not collapsed (PMDK's radix tree
        likewise defers reclamation)."""
        node = self.root
        for level in range(_LEVELS - 1):
            node = self.mem.read(node + self._nibble(key, level) * WORD_SIZE)
            if not node:
                return False
        slot = node + self._nibble(key, _LEVELS - 1) * WORD_SIZE
        if not self.mem.read(slot):
            return False
        self.mem.write(slot, 0)
        return True

    def lookup(self, key: int):
        node = self.root
        for level in range(_LEVELS - 1):
            node = self.mem.peek(node + self._nibble(key, level) * WORD_SIZE)
            if not node:
                return None
        value = self.mem.peek(node + self._nibble(key, _LEVELS - 1) * WORD_SIZE)
        return value or None


def build(
    threads: int = 8,
    transactions: int = 1000,
    warmup_inserts: int = 256,
    seed: int = 6,
) -> Trace:
    """Build the Rtree workload: one random insert per transaction."""
    ctx = WorkloadContext(threads, "rtree")
    for tid, mem in enumerate(ctx.memories):
        rng = random.Random((seed << 8) | tid)
        tree = RadixTree(mem)
        for i in range(warmup_inserts):
            tree.insert(rng.getrandbits(40), i + 1)
        for i in range(transactions):
            key = rng.getrandbits(40)
            mem.begin_tx()
            tree.insert(key, i + 1)
            mem.commit()
    return ctx.build_trace()
