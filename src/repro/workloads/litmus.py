"""Litmus workload: lower an encoded persist-ordering pattern.

Registered as ``litmus`` so a pattern rides the ordinary executor
machinery — a :class:`~repro.harness.executor.WorkloadSpec` recipe
``("litmus", threads, transactions, pattern=<key>)`` is picklable,
content-addressable and replayable with ``silo-repro replay --spec``
like any other cell.  ``threads``/``transactions`` are redundant with
the key (every recipe carries them) and are validated against it, so
a hand-edited replay spec cannot silently run a different program
than it claims.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.litmus.patterns import decode_pattern, lower_pattern
from repro.trace.trace import Trace


def build(threads: int = 1, transactions: int = 1, pattern: str = "") -> Trace:
    """Build the trace of one litmus pattern key."""
    if not pattern:
        raise ConfigError(
            "the litmus workload needs pattern=<family/body> "
            "(see repro.litmus.patterns)"
        )
    decoded = decode_pattern(pattern)
    if threads != decoded.cores:
        raise ConfigError(
            f"litmus pattern {pattern!r} runs on {decoded.cores} core(s), "
            f"but the recipe says threads={threads}"
        )
    if transactions != decoded.total_txs:
        raise ConfigError(
            f"litmus pattern {pattern!r} has {decoded.total_txs} "
            f"transaction(s), but the recipe says "
            f"transactions={transactions}"
        )
    return lower_pattern(decoded)
