"""Instrumented PM workloads (Table III + Fig. 4).

Micro-benchmarks: Array, Btree, Hash, Queue, RBtree (64-byte data
elements, random operations).  Macro-benchmarks: TPCC (New-Order by
default, all five transaction types available) and YCSB (20%/80%
read/update).  Additional Fig. 4 workloads: Rtree (radix tree), Ctrie
(crit-bit trie), TATP and Bank.

Every workload builds its persistent data structure on a simulated PM
heap through a :class:`~repro.workloads.memspace.RecordingMemory`;
operations executed inside ``begin_tx``/``commit`` become the
transaction trace the engine replays.
"""

from repro.workloads.memspace import PMHeap, RecordingMemory, WorkloadContext
from repro.workloads.registry import (
    FIG4_WORKLOADS,
    MACRO_WORKLOADS,
    MICRO_WORKLOADS,
    WORKLOADS,
    build_workload,
)

__all__ = [
    "PMHeap",
    "RecordingMemory",
    "WorkloadContext",
    "FIG4_WORKLOADS",
    "MACRO_WORKLOADS",
    "MICRO_WORKLOADS",
    "WORKLOADS",
    "build_workload",
]
