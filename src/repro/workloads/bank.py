"""Bank: the banking transfer application (Fig. 4, citing Alomari et
al.).

Accounts are single balance words; a transfer debits one account,
credits another and appends an audit entry — a three-store write set,
the canonical tiny OLTP transaction.
"""

from __future__ import annotations

import random

from repro.common.constants import LINE_SIZE, WORD_SIZE
from repro.trace.trace import Trace
from repro.workloads.memspace import RecordingMemory, WorkloadContext

#: Balances start biased so unsigned words never underflow.
_BALANCE_BIAS = 1 << 40


class BankDatabase:
    """One thread's accounts table plus an audit log."""

    def __init__(self, mem: RecordingMemory, accounts: int) -> None:
        self.mem = mem
        self.accounts = accounts
        self._table = mem.heap.alloc(accounts * WORD_SIZE, align=LINE_SIZE)
        for a in range(accounts):
            mem.write(self._table + a * WORD_SIZE, _BALANCE_BIAS)
        #: Audit ring buffer of one word per transfer.
        self._audit_len = 4096
        self._audit = mem.heap.alloc(self._audit_len * WORD_SIZE, align=LINE_SIZE)
        self._audit_pos = 0
        for i in range(self._audit_len):
            mem.write(self._audit + i * WORD_SIZE, 0)

    def _cell(self, account: int) -> int:
        return self._table + account * WORD_SIZE

    def balance(self, account: int) -> int:
        return self.mem.peek(self._cell(account)) - _BALANCE_BIAS

    def transfer(self, src: int, dst: int, amount: int) -> None:
        mem = self.mem
        src_balance = mem.read(self._cell(src))
        dst_balance = mem.read(self._cell(dst))
        mem.write(self._cell(src), src_balance - amount)
        mem.write(self._cell(dst), dst_balance + amount)
        slot = self._audit + self._audit_pos * WORD_SIZE
        mem.write(slot, (src << 40) | (dst << 16) | (amount & 0xFFFF))
        self._audit_pos = (self._audit_pos + 1) % self._audit_len

    def total_balance(self) -> int:
        return sum(self.balance(a) for a in range(self.accounts))


def build(
    threads: int = 8,
    transactions: int = 1000,
    accounts: int = 1024,
    seed: int = 11,
) -> Trace:
    """Build the Bank trace: one transfer per transaction."""
    ctx = WorkloadContext(threads, "bank")
    for tid, mem in enumerate(ctx.memories):
        rng = random.Random((seed << 8) | tid)
        bank = BankDatabase(mem, accounts)
        for _ in range(transactions):
            src = rng.randrange(accounts)
            dst = rng.randrange(accounts)
            while dst == src:
                dst = rng.randrange(accounts)
            mem.begin_tx()
            bank.transfer(src, dst, rng.randint(1, 1000))
            mem.commit()
    return ctx.build_trace()
