"""TATP: the telecom application transaction processing benchmark
(Fig. 4; tatpbenchmark.sourceforge.net).

A subscriber table with special-facility rows.  The classic TATP mix
is read-dominated; its write transactions have the smallest write sets
of the Fig. 4 workloads (one or two words), which is exactly why the
paper includes it as evidence that real transactions write little.
"""

from __future__ import annotations

import random

from repro.common.constants import LINE_SIZE, WORD_SIZE
from repro.trace.trace import Trace
from repro.workloads.memspace import RecordingMemory, WorkloadContext

_S_ID = 0
_BITS = 1
_HEX = 2
_LOCATION = 3
_SF_DATA_A = 4
_SF_DATA_B = 5
_REC_WORDS = 8


class TATPDatabase:
    """One thread's subscriber table."""

    def __init__(self, mem: RecordingMemory, subscribers: int) -> None:
        self.mem = mem
        self.subscribers = subscribers
        self._table = mem.heap.alloc(
            subscribers * _REC_WORDS * WORD_SIZE, align=LINE_SIZE
        )
        for s in range(subscribers):
            base = self._record(s)
            mem.write_field(base, _S_ID, s)
            mem.write_field(base, _BITS, 0b1010)
            mem.write_field(base, _HEX, 0xF0)
            mem.write_field(base, _LOCATION, 1000 + s)
            mem.write_field(base, _SF_DATA_A, 1)
            mem.write_field(base, _SF_DATA_B, 2)
            mem.write_field(base, 6, 0)
            mem.write_field(base, 7, 0)

    def _record(self, s_id: int) -> int:
        return self._table + s_id * _REC_WORDS * WORD_SIZE

    def get_subscriber_data(self, s_id: int) -> int:
        base = self._record(s_id)
        self.mem.read_field(base, _BITS)
        self.mem.read_field(base, _HEX)
        return self.mem.read_field(base, _LOCATION)

    def update_subscriber_data(self, s_id: int, bits: int, sf_data: int) -> None:
        base = self._record(s_id)
        self.mem.write_field(base, _BITS, bits)
        self.mem.write_field(base, _SF_DATA_A, sf_data)

    def update_location(self, s_id: int, location: int) -> None:
        base = self._record(s_id)
        self.mem.write_field(base, _LOCATION, location)


def build(
    threads: int = 8,
    transactions: int = 1000,
    subscribers: int = 1024,
    read_fraction: float = 0.80,
    seed: int = 10,
) -> Trace:
    """Build the TATP trace with the standard read-heavy mix."""
    ctx = WorkloadContext(threads, "tatp")
    for tid, mem in enumerate(ctx.memories):
        rng = random.Random((seed << 8) | tid)
        db = TATPDatabase(mem, subscribers)
        for _ in range(transactions):
            s_id = rng.randrange(subscribers)
            mem.begin_tx()
            roll = rng.random()
            if roll < read_fraction:
                db.get_subscriber_data(s_id)
            elif roll < read_fraction + (1 - read_fraction) * 0.625:
                db.update_subscriber_data(s_id, rng.getrandbits(4), rng.getrandbits(8))
            else:
                db.update_location(s_id, rng.getrandbits(32))
            mem.commit()
    return ctx.build_trace()
