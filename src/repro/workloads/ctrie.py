"""Ctrie: the PMDK crit-bit trie insert workload (Fig. 4).

A binary crit-bit trie: internal nodes hold the index of the bit that
distinguishes their two subtrees; leaves hold the key/value.  Inserts
walk to the closest leaf, find the critical bit and splice a new
internal node into the path — two allocations and a single pointer
swing, the smallest write set of the Fig. 4 workloads.
"""

from __future__ import annotations

import random

from repro.common.constants import LINE_SIZE, WORD_SIZE
from repro.trace.trace import Trace
from repro.workloads.memspace import RecordingMemory, WorkloadContext

_KEY_BITS = 48

# Leaf layout: [key, value]; internal layout: [bit | _INTERNAL, left, right]
_INTERNAL = 1 << 63


class CritBitTrie:
    """One thread's persistent crit-bit trie."""

    def __init__(self, mem: RecordingMemory) -> None:
        self.mem = mem
        self.root_cell = mem.heap.alloc(WORD_SIZE, align=LINE_SIZE)
        mem.write(self.root_cell, 0)

    def _new_leaf(self, key: int, value: int) -> int:
        leaf = self.mem.heap.alloc(2 * WORD_SIZE, align=16)
        self.mem.write(leaf, key)
        self.mem.write(leaf + WORD_SIZE, value)
        return leaf

    def _new_internal(self, bit: int, left: int, right: int) -> int:
        node = self.mem.heap.alloc(3 * WORD_SIZE, align=32)
        self.mem.write(node, bit | _INTERNAL)
        self.mem.write(node + WORD_SIZE, left)
        self.mem.write(node + 2 * WORD_SIZE, right)
        return node

    def _is_internal(self, node: int) -> bool:
        return bool(self.mem.read(node) & _INTERNAL)

    @staticmethod
    def _bit(key: int, index: int) -> int:
        return (key >> (_KEY_BITS - 1 - index)) & 1

    def insert(self, key: int, value: int) -> None:
        root = self.mem.read(self.root_cell)
        if not root:
            self.mem.write(self.root_cell, self._new_leaf(key, value))
            return

        # Walk to the closest leaf.
        node = root
        while self._is_internal(node):
            bit = self.mem.read(node) & ~_INTERNAL
            node = self.mem.read(node + (2 if self._bit(key, bit) else 1) * WORD_SIZE)
        leaf_key = self.mem.read(node)
        if leaf_key == key:
            self.mem.write(node + WORD_SIZE, value)  # update in place
            return

        # Find the critical bit.
        crit = 0
        while self._bit(key, crit) == self._bit(leaf_key, crit):
            crit += 1

        # Re-walk from the root to the splice point.
        parent_cell = self.root_cell
        node = self.mem.read(parent_cell)
        while self._is_internal(node):
            bit = self.mem.read(node) & ~_INTERNAL
            if bit >= crit:
                break
            parent_cell = node + (2 if self._bit(key, bit) else 1) * WORD_SIZE
            node = self.mem.read(parent_cell)

        leaf = self._new_leaf(key, value)
        if self._bit(key, crit):
            internal = self._new_internal(crit, node, leaf)
        else:
            internal = self._new_internal(crit, leaf, node)
        self.mem.write(parent_cell, internal)

    def delete(self, key: int) -> bool:
        """Remove ``key``, splicing its parent out of the path (the
        sibling subtree takes the parent's place); returns whether the
        key was present."""
        root = self.mem.read(self.root_cell)
        if not root:
            return False
        grand_cell = None  # cell pointing at the parent
        parent = 0
        parent_cell = self.root_cell
        node = root
        while self._is_internal(node):
            bit = self.mem.read(node) & ~_INTERNAL
            side = 2 if self._bit(key, bit) else 1
            grand_cell = parent_cell
            parent = node
            parent_cell = node + side * WORD_SIZE
            node = self.mem.read(parent_cell)
        if self.mem.read(node) != key:
            return False
        if not parent:
            self.mem.write(self.root_cell, 0)
            return True
        # The sibling replaces the parent in the grandparent's slot.
        left = self.mem.read(parent + WORD_SIZE)
        right = self.mem.read(parent + 2 * WORD_SIZE)
        sibling = right if left == node else left
        self.mem.write(grand_cell, sibling)
        return True

    def lookup(self, key: int):
        node = self.mem.peek(self.root_cell)
        if not node:
            return None
        while self.mem.peek(node) & _INTERNAL:
            bit = self.mem.peek(node) & ~_INTERNAL
            node = self.mem.peek(node + (2 if self._bit(key, bit) else 1) * WORD_SIZE)
        if self.mem.peek(node) == key:
            return self.mem.peek(node + WORD_SIZE)
        return None


def build(
    threads: int = 8,
    transactions: int = 1000,
    warmup_inserts: int = 256,
    seed: int = 7,
) -> Trace:
    """Build the Ctrie workload: one random insert per transaction."""
    ctx = WorkloadContext(threads, "ctrie")
    for tid, mem in enumerate(ctx.memories):
        rng = random.Random((seed << 8) | tid)
        trie = CritBitTrie(mem)
        for i in range(warmup_inserts):
            trie.insert(rng.getrandbits(_KEY_BITS), i + 1)
        for i in range(transactions):
            key = rng.getrandbits(_KEY_BITS)
            mem.begin_tx()
            trie.insert(key, i + 1)
            mem.commit()
    return ctx.build_trace()
