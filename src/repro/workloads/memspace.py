"""The simulated PM heap and the workload instrumentation layer.

Workloads are real data-structure implementations.  They allocate
persistent objects from a per-thread :class:`PMHeap` arena and access
them through a :class:`RecordingMemory`:

* writes/reads *outside* a transaction belong to the setup phase and
  define the trace's initial PM image;
* writes/reads *inside* ``begin_tx`` ... ``commit`` are recorded as
  the transaction's :class:`~repro.trace.ops.Store`/``Load`` stream.

Loads are deduplicated per cacheline within a transaction — repeat
reads of a line the transaction already touched would be L1 hits and
only bloat the trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.common.constants import LINE_SIZE, WORD_SIZE
from repro.common.errors import AddressError, TransactionError
from repro.trace.trace import ThreadTrace, Trace, Transaction
from repro.trace.ops import Load, Store

#: Per-thread heap arenas inside the PM data region.
_HEAP_BASE = 0x2000_0000
_HEAP_STRIDE = 0x0400_0000  # 64 MB per thread


class PMHeap:
    """A bump allocator over one thread's PM arena."""

    def __init__(self, tid: int) -> None:
        self.tid = tid
        self._base = _HEAP_BASE + tid * _HEAP_STRIDE
        self._next = self._base
        self._limit = self._base + _HEAP_STRIDE

    def alloc(self, size_bytes: int, align: int = WORD_SIZE) -> int:
        """Allocate ``size_bytes`` of persistent memory."""
        if size_bytes <= 0:
            raise AddressError("allocation size must be positive")
        addr = (self._next + align - 1) & ~(align - 1)
        if addr + size_bytes > self._limit:
            raise AddressError(
                f"thread {self.tid} heap exhausted ({self._next - self._base}B used)"
            )
        self._next = addr + size_bytes
        return addr

    def alloc_line(self, size_bytes: int = LINE_SIZE) -> int:
        """Allocate a cacheline-aligned object (the micro-benchmarks'
        64-byte data elements)."""
        return self.alloc(size_bytes, align=LINE_SIZE)

    @property
    def used_bytes(self) -> int:
        return self._next - self._base


class RecordingMemory:
    """Word-granular memory view that records transactional accesses."""

    def __init__(self, tid: int, dedup_loads: bool = True) -> None:
        self.tid = tid
        self.heap = PMHeap(tid)
        self.trace = ThreadTrace(tid)
        self._words: Dict[int, int] = {}
        self._initial: Dict[int, int] = {}
        self._tx: Optional[Transaction] = None
        self._tx_loaded_lines: Set[int] = set()
        self._dedup_loads = dedup_loads
        self._setup_frozen = False

    # ------------------------------------------------------------------
    # Transaction control
    # ------------------------------------------------------------------
    def begin_tx(self) -> None:
        if self._tx is not None:
            raise TransactionError("nested transactions are not supported")
        if not self._setup_frozen:
            # First transaction: everything written so far is setup.
            self._initial = dict(self._words)
            self._setup_frozen = True
        self._tx = Transaction()
        self._tx_loaded_lines.clear()

    def commit(self) -> Transaction:
        if self._tx is None:
            raise TransactionError("commit without begin_tx")
        tx, self._tx = self._tx, None
        self.trace.append(tx)
        return tx

    @property
    def in_tx(self) -> bool:
        return self._tx is not None

    # ------------------------------------------------------------------
    # Memory accesses
    # ------------------------------------------------------------------
    def write(self, addr: int, value: int) -> None:
        """Store one word (recorded when inside a transaction)."""
        if addr % WORD_SIZE:
            raise AddressError(f"unaligned store to {addr:#x}")
        if self._setup_frozen and self._tx is None:
            raise TransactionError(
                "workload wrote persistent memory outside a transaction "
                "after the setup phase"
            )
        value &= (1 << 64) - 1
        if self._tx is not None:
            self._tx.ops.append(Store(addr, value))
        self._words[addr] = value

    def read(self, addr: int) -> int:
        """Load one word (recorded, line-deduplicated, inside a tx)."""
        if addr % WORD_SIZE:
            raise AddressError(f"unaligned load from {addr:#x}")
        if self._tx is not None:
            line = addr & ~(LINE_SIZE - 1)
            if not self._dedup_loads or line not in self._tx_loaded_lines:
                self._tx.ops.append(Load(addr))
                self._tx_loaded_lines.add(line)
        return self._words.get(addr, 0)

    def peek(self, addr: int) -> int:
        """Read without recording (bookkeeping the hardware never sees)."""
        return self._words.get(addr, 0)

    # ------------------------------------------------------------------
    # Struct helpers: objects are arrays of words
    # ------------------------------------------------------------------
    def write_field(self, base: int, index: int, value: int) -> None:
        self.write(base + index * WORD_SIZE, value)

    def read_field(self, base: int, index: int) -> int:
        return self.read(base + index * WORD_SIZE)

    def peek_field(self, base: int, index: int) -> int:
        return self.peek(base + index * WORD_SIZE)

    # ------------------------------------------------------------------
    # Trace assembly
    # ------------------------------------------------------------------
    def initial_image(self) -> Dict[int, int]:
        if not self._setup_frozen:
            return dict(self._words)
        return dict(self._initial)


class WorkloadContext:
    """Builds one multi-threaded workload trace from per-thread
    :class:`RecordingMemory` instances."""

    def __init__(self, threads: int, name: str) -> None:
        if threads <= 0:
            raise TransactionError("need at least one thread")
        self.name = name
        self.memories: List[RecordingMemory] = [
            RecordingMemory(tid) for tid in range(threads)
        ]

    def build_trace(self) -> Trace:
        image: Dict[int, int] = {}
        for memory in self.memories:
            image.update(memory.initial_image())
        return Trace(
            [memory.trace for memory in self.memories],
            initial_image=image,
            name=self.name,
        )
