"""TPC-C macro-benchmark (Whisper configuration, Section VI-A).

One warehouse per thread (the standard conflict-free partitioning),
with districts, customers, stock, orders, order lines and the
new-order queue laid out as 64-byte persistent records.

Like the paper (and MorLog), the default run executes only the
``New-Order`` transaction; ``mix="full"`` runs all five types with the
TPC-C mix percentages (45/43/4/4/4), which Section VI-D uses to size
the log buffer.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.common.constants import LINE_SIZE, WORD_SIZE
from repro.common.errors import ConfigError
from repro.trace.trace import Trace
from repro.workloads.memspace import RecordingMemory, WorkloadContext

#: TPC-C scaling, shrunk to simulation-friendly sizes.
DISTRICTS_PER_WAREHOUSE = 10
CUSTOMERS_PER_DISTRICT = 32
ITEMS_PER_WAREHOUSE = 256

_REC_WORDS = 8
_REC_BYTES = _REC_WORDS * WORD_SIZE
_PAD = 0x5C5C5C5C5C5C5C5C

# Warehouse fields
_W_ID, _W_YTD, _W_TAX = 0, 1, 2
# District fields
_D_ID, _D_NEXT_O_ID, _D_YTD, _D_TAX = 0, 1, 2, 3
# Customer fields
_C_ID, _C_BALANCE, _C_YTD, _C_PAYMENT_CNT, _C_DELIVERY_CNT = 0, 1, 2, 3, 4
# Stock fields
_S_I_ID, _S_QTY, _S_YTD, _S_ORDER_CNT = 0, 1, 2, 3
# Order fields
_O_ID, _O_C_ID, _O_D_ID, _O_OL_CNT, _O_CARRIER, _O_NEXT = 0, 1, 2, 3, 4, 5
_O_OL_HEAD = 6
# Order-line fields
_OL_O_ID, _OL_NUM, _OL_I_ID, _OL_QTY, _OL_AMOUNT = 0, 1, 2, 3, 4
_OL_NEXT = 5

#: Initial balance, in TPC-C cents, stored biased so it never goes
#: negative in the unsigned word representation.
_BALANCE_BIAS = 1 << 40


class TPCCWarehouse:
    """One thread's warehouse with all dependent tables."""

    def __init__(self, mem: RecordingMemory, w_id: int) -> None:
        self.mem = mem
        self.w_id = w_id
        self.warehouse = self._new_record([w_id, 0, 7])
        self.districts = [
            self._new_record([d, 1, 0, 5]) for d in range(DISTRICTS_PER_WAREHOUSE)
        ]
        self.customers = [
            [
                self._new_record([c, _BALANCE_BIAS, 0, 0, 0])
                for c in range(CUSTOMERS_PER_DISTRICT)
            ]
            for _ in range(DISTRICTS_PER_WAREHOUSE)
        ]
        self.stock = [
            self._new_record([i, 100, 0, 0]) for i in range(ITEMS_PER_WAREHOUSE)
        ]
        #: Per-district FIFO of undelivered orders: [head, tail] cells.
        self.neworder_queues = []
        for _ in range(DISTRICTS_PER_WAREHOUSE):
            cells = mem.heap.alloc(2 * WORD_SIZE, align=16)
            mem.write(cells, 0)
            mem.write(cells + WORD_SIZE, 0)
            self.neworder_queues.append(cells)

    def _new_record(self, fields: List[int]) -> int:
        rec = self.mem.heap.alloc(_REC_BYTES, align=LINE_SIZE)
        for i in range(_REC_WORDS):
            self.mem.write_field(rec, i, fields[i] if i < len(fields) else _PAD)
        return rec

    def _marshal_record(self, rec: int, changes: Dict[int, int]) -> None:
        """Rewrite a whole record through a row buffer, changing only
        the fields in ``changes`` — the rest are silent rewrites that
        log ignorance removes (row-store update path)."""
        for i in range(_REC_WORDS):
            if i in changes:
                self.mem.write_field(rec, i, changes[i])
            else:
                self.mem.write_field(rec, i, self.mem.peek_field(rec, i))

    def _new_order_line(self, fields: List[int]) -> int:
        """Order lines are 40-byte records: only their five live fields
        are written (fresh PM reads as zero)."""
        rec = self.mem.heap.alloc(_REC_BYTES, align=LINE_SIZE)
        for i, value in enumerate(fields):
            self.mem.write_field(rec, i, value)
        return rec

    # ------------------------------------------------------------------
    # 1. New-Order (the default measured transaction)
    # ------------------------------------------------------------------
    def new_order(self, rng: random.Random) -> None:
        mem = self.mem
        d = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        district = self.districts[d]
        c = rng.randrange(CUSTOMERS_PER_DISTRICT)

        o_id = mem.read_field(district, _D_NEXT_O_ID)
        mem.write_field(district, _D_NEXT_O_ID, o_id + 1)
        mem.read_field(district, _D_TAX)
        mem.read_field(self.warehouse, _W_TAX)

        ol_cnt = rng.randint(3, 8)
        order = self._new_record([o_id, c, d, ol_cnt, 0, 0])
        ol_head = 0
        for number in range(ol_cnt):
            item = rng.randrange(ITEMS_PER_WAREHOUSE)
            qty = rng.randint(1, 10)
            stock = self.stock[item]
            s_qty = mem.read_field(stock, _S_QTY)
            if s_qty >= qty + 10:
                s_qty -= qty
            else:
                s_qty += 91 - qty
            mem.write_field(stock, _S_QTY, s_qty)
            mem.write_field(stock, _S_YTD, mem.read_field(stock, _S_YTD) + qty)
            mem.write_field(
                stock, _S_ORDER_CNT, mem.read_field(stock, _S_ORDER_CNT) + 1
            )
            ol_head = self._new_order_line(
                [o_id, number, item, qty, qty * 100 + item, ol_head]
            )
        mem.write_field(order, _O_OL_HEAD, ol_head)

        # Append to the district's new-order queue.
        cells = self.neworder_queues[d]
        tail = mem.read(cells + WORD_SIZE)
        if tail:
            mem.write_field(tail, _O_NEXT, order)
        else:
            mem.write(cells, order)
        mem.write(cells + WORD_SIZE, order)

    # ------------------------------------------------------------------
    # 2. Payment
    # ------------------------------------------------------------------
    def payment(self, rng: random.Random) -> None:
        mem = self.mem
        d = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        c = rng.randrange(CUSTOMERS_PER_DISTRICT)
        amount = rng.randint(100, 500000)
        customer = self.customers[d][c]
        mem.write_field(
            self.warehouse, _W_YTD, mem.read_field(self.warehouse, _W_YTD) + amount
        )
        district = self.districts[d]
        mem.write_field(district, _D_YTD, mem.read_field(district, _D_YTD) + amount)
        self._marshal_record(
            customer,
            {
                _C_BALANCE: mem.read_field(customer, _C_BALANCE) - amount,
                _C_YTD: mem.read_field(customer, _C_YTD) + amount,
                _C_PAYMENT_CNT: mem.read_field(customer, _C_PAYMENT_CNT) + 1,
            },
        )

    # ------------------------------------------------------------------
    # 3. Order-Status (read only)
    # ------------------------------------------------------------------
    def order_status(self, rng: random.Random) -> None:
        mem = self.mem
        d = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        c = rng.randrange(CUSTOMERS_PER_DISTRICT)
        customer = self.customers[d][c]
        mem.read_field(customer, _C_BALANCE)
        order = mem.read(self.neworder_queues[d])
        if order:
            mem.read_field(order, _O_ID)
            mem.read_field(order, _O_CARRIER)
            # Walk the order's real order lines (read-only).
            line = mem.read_field(order, _O_OL_HEAD)
            while line:
                mem.read_field(line, _OL_I_ID)
                mem.read_field(line, _OL_AMOUNT)
                line = mem.read_field(line, _OL_NEXT)

    # ------------------------------------------------------------------
    # 4. Delivery
    # ------------------------------------------------------------------
    def delivery(self, rng: random.Random) -> None:
        mem = self.mem
        carrier = rng.randint(1, 10)
        for d in range(DISTRICTS_PER_WAREHOUSE):
            cells = self.neworder_queues[d]
            order = mem.read(cells)
            if not order:
                continue
            nxt = mem.read_field(order, _O_NEXT)
            mem.write(cells, nxt)
            if not nxt:
                mem.write(cells + WORD_SIZE, 0)
            mem.write_field(order, _O_CARRIER, carrier)
            c = mem.read_field(order, _O_C_ID)
            customer = self.customers[d][c]
            # Sum the delivered order's real order-line amounts.
            amount = 0
            line = mem.read_field(order, _O_OL_HEAD)
            while line:
                amount += mem.read_field(line, _OL_AMOUNT)
                line = mem.read_field(line, _OL_NEXT)
            self._marshal_record(
                customer,
                {
                    _C_BALANCE: mem.read_field(customer, _C_BALANCE) + amount,
                    _C_DELIVERY_CNT: mem.read_field(customer, _C_DELIVERY_CNT)
                    + 1,
                },
            )

    # ------------------------------------------------------------------
    # 5. Stock-Level (read only)
    # ------------------------------------------------------------------
    def stock_level(self, rng: random.Random) -> None:
        mem = self.mem
        d = rng.randrange(DISTRICTS_PER_WAREHOUSE)
        mem.read_field(self.districts[d], _D_NEXT_O_ID)
        for _ in range(8):
            stock = self.stock[rng.randrange(ITEMS_PER_WAREHOUSE)]
            mem.read_field(stock, _S_QTY)


#: TPC-C transaction mix (name, weight percent).
FULL_MIX = [
    ("new_order", 45),
    ("payment", 43),
    ("order_status", 4),
    ("delivery", 4),
    ("stock_level", 4),
]


def build(
    threads: int = 8,
    transactions: int = 1000,
    mix: str = "neworder",
    ops_per_tx: int = 1,
    seed: int = 8,
) -> Trace:
    """Build the TPCC trace.  ``mix`` is ``"neworder"`` (the paper's
    default measured configuration) or ``"full"`` (all five types)."""
    if mix not in ("neworder", "full"):
        raise ConfigError(f"unknown TPCC mix {mix!r}")
    name = "tpcc" if mix == "neworder" else "tpcc_full"
    ctx = WorkloadContext(threads, name)
    for tid, mem in enumerate(ctx.memories):
        rng = random.Random((seed << 8) | tid)
        warehouse = TPCCWarehouse(mem, w_id=tid)
        choices, weights = zip(*FULL_MIX)
        for _ in range(transactions):
            if mix == "neworder":
                kind = "new_order"
            else:
                kind = rng.choices(choices, weights=weights)[0]
            mem.begin_tx()
            for _ in range(ops_per_tx):
                getattr(warehouse, kind)(rng)
            mem.commit()
    return ctx.build_trace()
