"""Red-black tree micro-benchmark: random insertions.

A full red-black tree with parent pointers, rotations and the classic
recolouring fixup, implemented over the recording memory.  Inserts
touch a handful of scattered nodes (parent/uncle/grandparent), giving
the low-spatial-locality write pattern the paper attributes to tree
workloads.

Node layout (word indices): key, value, left, right, parent, color,
two padding words — one 64-byte element per node.
"""

from __future__ import annotations

import random

from repro.common.constants import LINE_SIZE, WORD_SIZE
from repro.trace.trace import Trace
from repro.workloads.elements import PAD_PATTERN
from repro.workloads.memspace import RecordingMemory, WorkloadContext

_KEY = 0
_VALUE = 1
_LEFT = 2
_RIGHT = 3
_PARENT = 4
_COLOR = 5
_NODE_WORDS = 8

RED = 1
BLACK = 0


class RBTree:
    """One thread's persistent red-black tree."""

    def __init__(self, mem: RecordingMemory) -> None:
        self.mem = mem
        self.root_cell = mem.heap.alloc(WORD_SIZE, align=LINE_SIZE)
        mem.write(self.root_cell, 0)

    # ------------------------------------------------------------------
    # Field accessors
    # ------------------------------------------------------------------
    def _get(self, node: int, field: int) -> int:
        return self.mem.read_field(node, field)

    def _set(self, node: int, field: int, value: int) -> None:
        self.mem.write_field(node, field, value)

    def _root(self) -> int:
        return self.mem.read(self.root_cell)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, key: int, value: int) -> None:
        node = self.mem.heap.alloc(_NODE_WORDS * WORD_SIZE, align=LINE_SIZE)
        self._set(node, _KEY, key)
        self._set(node, _VALUE, value)
        self._set(node, _LEFT, 0)
        self._set(node, _RIGHT, 0)
        self._set(node, _COLOR, RED)
        self._set(node, 6, PAD_PATTERN)
        self._set(node, 7, PAD_PATTERN)

        parent, current = 0, self._root()
        while current:
            parent = current
            current = self._get(
                current, _LEFT if key < self._get(current, _KEY) else _RIGHT
            )
        self._set(node, _PARENT, parent)
        if not parent:
            self.mem.write(self.root_cell, node)
        elif key < self._get(parent, _KEY):
            self._set(parent, _LEFT, node)
        else:
            self._set(parent, _RIGHT, node)
        self._fixup(node)

    def _fixup(self, node: int) -> None:
        while True:
            parent = self._get(node, _PARENT)
            if not parent or self._get(parent, _COLOR) != RED:
                break
            grand = self._get(parent, _PARENT)
            if not grand:
                break
            if parent == self._get(grand, _LEFT):
                uncle = self._get(grand, _RIGHT)
                if uncle and self._get(uncle, _COLOR) == RED:
                    self._set(parent, _COLOR, BLACK)
                    self._set(uncle, _COLOR, BLACK)
                    self._set(grand, _COLOR, RED)
                    node = grand
                    continue
                if node == self._get(parent, _RIGHT):
                    node = parent
                    self._rotate_left(node)
                    parent = self._get(node, _PARENT)
                    grand = self._get(parent, _PARENT)
                self._set(parent, _COLOR, BLACK)
                self._set(grand, _COLOR, RED)
                self._rotate_right(grand)
            else:
                uncle = self._get(grand, _LEFT)
                if uncle and self._get(uncle, _COLOR) == RED:
                    self._set(parent, _COLOR, BLACK)
                    self._set(uncle, _COLOR, BLACK)
                    self._set(grand, _COLOR, RED)
                    node = grand
                    continue
                if node == self._get(parent, _LEFT):
                    node = parent
                    self._rotate_right(node)
                    parent = self._get(node, _PARENT)
                    grand = self._get(parent, _PARENT)
                self._set(parent, _COLOR, BLACK)
                self._set(grand, _COLOR, RED)
                self._rotate_left(grand)
        root = self._root()
        if self._get(root, _COLOR) != BLACK:
            self._set(root, _COLOR, BLACK)

    def _rotate_left(self, node: int) -> None:
        right = self._get(node, _RIGHT)
        child = self._get(right, _LEFT)
        self._set(node, _RIGHT, child)
        if child:
            self._set(child, _PARENT, node)
        self._transplant_up(node, right)
        self._set(right, _LEFT, node)
        self._set(node, _PARENT, right)

    def _rotate_right(self, node: int) -> None:
        left = self._get(node, _LEFT)
        child = self._get(left, _RIGHT)
        self._set(node, _LEFT, child)
        if child:
            self._set(child, _PARENT, node)
        self._transplant_up(node, left)
        self._set(left, _RIGHT, node)
        self._set(node, _PARENT, left)

    def _transplant_up(self, node: int, replacement: int) -> None:
        parent = self._get(node, _PARENT)
        self._set(replacement, _PARENT, parent)
        if not parent:
            self.mem.write(self.root_cell, replacement)
        elif node == self._get(parent, _LEFT):
            self._set(parent, _LEFT, replacement)
        else:
            self._set(parent, _RIGHT, replacement)

    # ------------------------------------------------------------------
    # Deletion (CLRS delete with the double-black fixup)
    # ------------------------------------------------------------------
    def delete(self, key: int) -> bool:
        """Remove ``key``; returns whether it was present."""
        node = self._root()
        while node:
            node_key = self._get(node, _KEY)
            if node_key == key:
                break
            node = self._get(node, _LEFT if key < node_key else _RIGHT)
        if not node:
            return False
        self._delete_node(node)
        return True

    def _delete_node(self, node: int) -> None:
        # Reduce to deleting a node with at most one child.
        if self._get(node, _LEFT) and self._get(node, _RIGHT):
            successor = self._get(node, _RIGHT)
            while self._get(successor, _LEFT):
                successor = self._get(successor, _LEFT)
            self._set(node, _KEY, self._get(successor, _KEY))
            self._set(node, _VALUE, self._get(successor, _VALUE))
            node = successor

        child = self._get(node, _LEFT) or self._get(node, _RIGHT)
        parent = self._get(node, _PARENT)
        color = self._get(node, _COLOR)

        if child:
            self._set(child, _PARENT, parent)
        if not parent:
            self.mem.write(self.root_cell, child)
        elif node == self._get(parent, _LEFT):
            self._set(parent, _LEFT, child)
        else:
            self._set(parent, _RIGHT, child)

        if color == BLACK:
            if child and self._get(child, _COLOR) == RED:
                self._set(child, _COLOR, BLACK)
            else:
                self._delete_fixup(child, parent)

    def _delete_fixup(self, node: int, parent: int) -> None:
        """``node`` (possibly null) carries an extra black."""
        while parent and (not node or self._get(node, _COLOR) == BLACK):
            if node == self._get(parent, _LEFT):
                sibling = self._get(parent, _RIGHT)
                if self._get(sibling, _COLOR) == RED:
                    self._set(sibling, _COLOR, BLACK)
                    self._set(parent, _COLOR, RED)
                    self._rotate_left(parent)
                    sibling = self._get(parent, _RIGHT)
                s_left, s_right = (
                    self._get(sibling, _LEFT),
                    self._get(sibling, _RIGHT),
                )
                if (not s_left or self._get(s_left, _COLOR) == BLACK) and (
                    not s_right or self._get(s_right, _COLOR) == BLACK
                ):
                    self._set(sibling, _COLOR, RED)
                    node, parent = parent, self._get(parent, _PARENT)
                    continue
                if not s_right or self._get(s_right, _COLOR) == BLACK:
                    if s_left:
                        self._set(s_left, _COLOR, BLACK)
                    self._set(sibling, _COLOR, RED)
                    self._rotate_right(sibling)
                    sibling = self._get(parent, _RIGHT)
                self._set(sibling, _COLOR, self._get(parent, _COLOR))
                self._set(parent, _COLOR, BLACK)
                s_right = self._get(sibling, _RIGHT)
                if s_right:
                    self._set(s_right, _COLOR, BLACK)
                self._rotate_left(parent)
                node = self._root()
                break
            else:
                sibling = self._get(parent, _LEFT)
                if self._get(sibling, _COLOR) == RED:
                    self._set(sibling, _COLOR, BLACK)
                    self._set(parent, _COLOR, RED)
                    self._rotate_right(parent)
                    sibling = self._get(parent, _LEFT)
                s_left, s_right = (
                    self._get(sibling, _LEFT),
                    self._get(sibling, _RIGHT),
                )
                if (not s_left or self._get(s_left, _COLOR) == BLACK) and (
                    not s_right or self._get(s_right, _COLOR) == BLACK
                ):
                    self._set(sibling, _COLOR, RED)
                    node, parent = parent, self._get(parent, _PARENT)
                    continue
                if not s_left or self._get(s_left, _COLOR) == BLACK:
                    if s_right:
                        self._set(s_right, _COLOR, BLACK)
                    self._set(sibling, _COLOR, RED)
                    self._rotate_left(sibling)
                    sibling = self._get(parent, _LEFT)
                self._set(sibling, _COLOR, self._get(parent, _COLOR))
                self._set(parent, _COLOR, BLACK)
                s_left = self._get(sibling, _LEFT)
                if s_left:
                    self._set(s_left, _COLOR, BLACK)
                self._rotate_right(parent)
                node = self._root()
                break
        if node:
            self._set(node, _COLOR, BLACK)

    # ------------------------------------------------------------------
    # Validation helpers (tests)
    # ------------------------------------------------------------------
    def black_height_valid(self) -> bool:
        """Check the red-black invariants via the non-recording view."""

        def walk(node: int):
            if not node:
                return 1, True
            color = self.mem.peek_field(node, _COLOR)
            left, right = (
                self.mem.peek_field(node, _LEFT),
                self.mem.peek_field(node, _RIGHT),
            )
            if color == RED:
                for child in (left, right):
                    if child and self.mem.peek_field(child, _COLOR) == RED:
                        return 0, False
            lh, lok = walk(left)
            rh, rok = walk(right)
            if not (lok and rok) or lh != rh:
                return 0, False
            return lh + (1 if color == BLACK else 0), True

        root = self.mem.peek(self.root_cell)
        if not root:
            return True
        if self.mem.peek_field(root, _COLOR) != BLACK:
            return False
        return walk(root)[1]

    def contains(self, key: int) -> bool:
        node = self.mem.peek(self.root_cell)
        while node:
            node_key = self.mem.peek_field(node, _KEY)
            if node_key == key:
                return True
            node = self.mem.peek_field(node, _LEFT if key < node_key else _RIGHT)
        return False


def build(
    threads: int = 8,
    transactions: int = 1000,
    warmup_inserts: int = 256,
    ops_per_tx: int = 1,
    operation_mix: str = "insert",
    seed: int = 5,
) -> Trace:
    """Build the RBtree workload: ``ops_per_tx`` operations per
    transaction.  ``operation_mix`` is ``"insert"`` (paper) or
    ``"mixed"`` (50% insert / 30% delete / 20% lookup)."""
    ctx = WorkloadContext(threads, "rbtree")
    for tid, mem in enumerate(ctx.memories):
        rng = random.Random((seed << 8) | tid)
        tree = RBTree(mem)
        live = []
        used = set()

        def fresh_key() -> int:
            while True:
                key = rng.getrandbits(40)
                if key not in used:
                    used.add(key)
                    return key

        def one_op(i: int) -> None:
            roll = rng.random() if operation_mix == "mixed" else 0.0
            if roll < 0.5 or not live:
                key = fresh_key()
                tree.insert(key, i)
                live.append(key)
            elif roll < 0.8:
                index = rng.randrange(len(live))
                live[index], live[-1] = live[-1], live[index]
                tree.delete(live.pop())
            else:
                tree.contains(rng.choice(live))

        for i in range(warmup_inserts):
            key = fresh_key()
            tree.insert(key, i)
            live.append(key)
        for i in range(transactions):
            mem.begin_tx()
            for _ in range(ops_per_tx):
                one_op(i)
            mem.commit()
    return ctx.build_trace()
