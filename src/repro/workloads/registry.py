"""Workload registry: name -> trace builder.

``MICRO_WORKLOADS`` and ``MACRO_WORKLOADS`` are the seven benchmarks
of Figs. 11-15; ``FIG4_WORKLOADS`` is the full eleven-workload set of
Fig. 4 (adding Rtree, Ctrie, TATP and Bank).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.common.errors import ConfigError
from repro.trace.trace import Trace
from repro.workloads import (
    array,
    bank,
    btree,
    ctrie,
    hashtable,
    litmus,
    queue,
    rbtree,
    rtree,
    tatp,
    tpcc,
    ycsb,
)

Builder = Callable[..., Trace]

WORKLOADS: Dict[str, Builder] = {
    "array": array.build,
    "btree": btree.build,
    "hash": hashtable.build,
    "queue": queue.build,
    "rbtree": rbtree.build,
    "rtree": rtree.build,
    "ctrie": ctrie.build,
    "tpcc": tpcc.build,
    "ycsb": ycsb.build,
    "tatp": tatp.build,
    "bank": bank.build,
    "litmus": litmus.build,
}

#: The five micro-benchmarks of Table III.
MICRO_WORKLOADS: List[str] = ["array", "btree", "hash", "queue", "rbtree"]

#: The two Whisper macro-benchmarks of Table III.
MACRO_WORKLOADS: List[str] = ["tpcc", "ycsb"]

#: The seven benchmarks evaluated in Figs. 11-15.
FIG_WORKLOADS: List[str] = MICRO_WORKLOADS + MACRO_WORKLOADS

#: The eleven workloads of Fig. 4, in the figure's order.
FIG4_WORKLOADS: List[str] = [
    "array",
    "btree",
    "hash",
    "queue",
    "rbtree",
    "tpcc",
    "ycsb",
    "rtree",
    "ctrie",
    "tatp",
    "bank",
]


def build_workload(name: str, threads: int = 8, transactions: int = 1000,
                   **kwargs) -> Trace:
    """Build a workload trace by registry name."""
    try:
        builder = WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise ConfigError(f"unknown workload {name!r} (known: {known})") from None
    return builder(threads=threads, transactions=transactions, **kwargs)
