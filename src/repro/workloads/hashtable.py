"""Hash-table micro-benchmark: random insertions.

Chained hashing with 64-byte nodes.  One insert allocates a node,
fills it (key, value, next pointer, padding) and swings the bucket
head — a small scattered write set typical of PM index updates.
"""

from __future__ import annotations

import random

from repro.common.constants import LINE_SIZE, WORD_SIZE
from repro.trace.trace import Trace
from repro.workloads.elements import PAD_PATTERN
from repro.workloads.memspace import RecordingMemory, WorkloadContext

_KEY = 0
_VALUE = 1
_NEXT = 2
_PAD0 = 3
_NODE_WORDS = 8


class HashTable:
    """One thread's persistent chained hash table."""

    def __init__(self, mem: RecordingMemory, buckets: int = 1024) -> None:
        self.mem = mem
        self.buckets = buckets
        self.table = mem.heap.alloc(buckets * WORD_SIZE, align=64)
        for i in range(buckets):
            mem.write(self.table + i * WORD_SIZE, 0)

    def _bucket_cell(self, key: int) -> int:
        return self.table + (hash_mix(key) % self.buckets) * WORD_SIZE

    def insert(self, key: int, value: int) -> None:
        cell = self._bucket_cell(key)
        head = self.mem.read(cell)
        # Update in place if the key is already chained (map semantics).
        node = head
        while node:
            if self.mem.read_field(node, _KEY) == key:
                self.mem.write_field(node, _VALUE, value)
                return
            node = self.mem.read_field(node, _NEXT)
        node = self.mem.heap.alloc(_NODE_WORDS * WORD_SIZE, align=LINE_SIZE)
        self.mem.write_field(node, _KEY, key)
        self.mem.write_field(node, _VALUE, value)
        self.mem.write_field(node, _NEXT, head)
        for i in range(_PAD0, _NODE_WORDS):
            self.mem.write_field(node, i, PAD_PATTERN)
        self.mem.write(cell, node)

    def remove(self, key: int) -> bool:
        """Unlink the first node holding ``key``; returns whether one
        was present (the node itself is leaked, as PM allocators
        without GC do — its slot would be reclaimed by an epoch-based
        free list in a production system)."""
        cell = self._bucket_cell(key)
        node = self.mem.read(cell)
        prev_cell = cell
        while node:
            if self.mem.read_field(node, _KEY) == key:
                self.mem.write(prev_cell, self.mem.read_field(node, _NEXT))
                return True
            prev_cell = node + _NEXT * 8
            node = self.mem.read_field(node, _NEXT)
        return False

    def lookup(self, key: int):
        node = self.mem.peek(self._bucket_cell(key))
        while node:
            if self.mem.peek_field(node, _KEY) == key:
                return self.mem.peek_field(node, _VALUE)
            node = self.mem.peek_field(node, _NEXT)
        return None


def hash_mix(key: int) -> int:
    """A 64-bit finalizer (splitmix64-style) for bucket selection."""
    key = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9 & (1 << 64) - 1
    key = (key ^ (key >> 27)) * 0x94D049BB133111EB & (1 << 64) - 1
    return key ^ (key >> 31)


def build(
    threads: int = 8,
    transactions: int = 1000,
    buckets: int = 1024,
    warmup_inserts: int = 512,
    ops_per_tx: int = 1,
    operation_mix: str = "insert",
    seed: int = 3,
) -> Trace:
    """Build the Hash workload: ``ops_per_tx`` operations per
    transaction.  ``operation_mix`` is ``"insert"`` (paper) or
    ``"mixed"`` (50% insert / 30% remove / 20% lookup)."""
    ctx = WorkloadContext(threads, "hash")
    for tid, mem in enumerate(ctx.memories):
        rng = random.Random((seed << 8) | tid)
        table = HashTable(mem, buckets=buckets)
        live = []

        def one_op(i: int) -> None:
            roll = rng.random() if operation_mix == "mixed" else 0.0
            if roll < 0.5 or not live:
                key = rng.getrandbits(48)
                table.insert(key, i)
                live.append(key)
            elif roll < 0.8:
                index = rng.randrange(len(live))
                live[index], live[-1] = live[-1], live[index]
                table.remove(live.pop())
            else:
                table.lookup(rng.choice(live))

        for i in range(warmup_inserts):
            key = rng.getrandbits(48)
            table.insert(key, i)
            live.append(key)
        for i in range(transactions):
            mem.begin_tx()
            for _ in range(ops_per_tx):
                one_op(i)
            mem.commit()
    return ctx.build_trace()
