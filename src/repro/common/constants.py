"""Architectural constants shared across the simulator.

The values follow the paper's hardware assumptions: 64-bit x86 cores
(8-byte words, 64-byte cachelines) and an on-PM internal buffer with
256-byte lines (Silo, HPCA 2023, Sections III-D through III-F).
"""

#: Size of one CPU word in bytes.  A CPU store updates one word and one
#: log entry records one old word plus one new word (Fig. 6).
WORD_SIZE = 8

#: Bit mask selecting a 64-bit word value.
WORD_MASK = (1 << 64) - 1

#: Size of one cacheline in bytes (Table II).
LINE_SIZE = 64

#: Line size of the internal buffer inside the PM DIMM (Section III-E).
ONPM_LINE_SIZE = 256

#: Size in bytes of a full undo+redo log entry: 1-bit flush-bit, 8-bit
#: tid, 16-bit txid, 48-bit address packed into ~10 bytes of metadata
#: plus two 8-byte data words (Fig. 6).  The paper quotes 26 bytes.
UNDO_REDO_LOG_ENTRY_SIZE = 26

#: Size in bytes of an undo-only log entry: metadata plus the old word.
#: The paper quotes 18 bytes (Section III-F).
UNDO_LOG_ENTRY_SIZE = 18

#: Entries per on-PM buffer line when batching overflowed undo logs,
#: ``N = floor(S / 18)`` with ``S = 256`` (Section III-F).
OVERFLOW_BATCH_ENTRIES = ONPM_LINE_SIZE // UNDO_LOG_ENTRY_SIZE

#: Energy to move one byte from the on-chip log buffer to PM, in
#: nanojoules (Section VI-E, citing Pandiyan & Wu / BBB).
ENERGY_NJ_PER_BYTE = 11.228
