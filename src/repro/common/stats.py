"""Lightweight statistics registry used by every simulated component.

A single :class:`Stats` instance is threaded through the system so
experiments can read one coherent set of counters after a run.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Mapping, Tuple


class Stats:
    """Named integer/float counters with a tiny, explicit API."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._counters[name] += amount

    def set(self, name: str, value: float) -> None:
        """Overwrite counter ``name`` with ``value``."""
        self._counters[name] = value

    def get(self, name: str, default: float = 0) -> float:
        return self._counters.get(name, default)

    def max(self, name: str, value: float) -> None:
        """Record ``value`` if it exceeds the stored maximum."""
        if value > self._counters.get(name, float("-inf")):
            self._counters[name] = value

    def merge(self, other: "Stats") -> None:
        """Accumulate all counters of ``other`` into this registry."""
        for name, value in other.items():
            self._counters[name] += value

    def reset(self) -> None:
        self._counters.clear()

    def items(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._counters.items()))

    def as_dict(self) -> Mapping[str, float]:
        return dict(self._counters)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in self.items())
        return f"Stats({inner})"
