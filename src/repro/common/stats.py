"""Lightweight statistics registry used by every simulated component.

A single :class:`Stats` instance is threaded through the system so
experiments can read one coherent set of counters after a run.

The registry sits on the simulator's hottest paths (every cache access
and memory-controller request increments counters), so it is backed by
:class:`collections.Counter` and exposes that mapping directly as
:attr:`Stats.counters`: components with per-event increments hoist it
into a local and bump keys in place (``counters[key] += n``, which a
``Counter`` resolves to 0 for missing keys) instead of paying a method
call per event.  Hot components also precompute their counter-name
strings once instead of building f-strings per event.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterator, Mapping, Tuple


class Stats:
    """Named integer/float counters with a tiny, explicit API.

    :attr:`counters` is the live backing ``Counter``; it is public so
    hot paths can batch increments without the :meth:`add` call
    overhead.  All reads still go through :meth:`get`/:meth:`items`.
    """

    __slots__ = ("counters",)

    def __init__(self) -> None:
        self.counters: Counter = Counter()

    def add(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counters[name] += amount

    def add_many(self, increments: Mapping[str, float]) -> None:
        """Batched increment: fold a whole ``{name: amount}`` mapping in
        at once (one C-level ``Counter.update``)."""
        self.counters.update(increments)

    def set(self, name: str, value: float) -> None:
        """Overwrite counter ``name`` with ``value``."""
        self.counters[name] = value

    def get(self, name: str, default: float = 0) -> float:
        return self.counters.get(name, default)

    def max(self, name: str, value: float) -> None:
        """Record ``value`` if it exceeds the stored maximum."""
        if value > self.counters.get(name, float("-inf")):
            self.counters[name] = value

    def merge(self, other: "Stats") -> None:
        """Accumulate all counters of ``other`` into this registry."""
        self.counters.update(other.counters)

    def reset(self) -> None:
        self.counters.clear()

    def items(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self.counters.items()))

    def as_dict(self) -> Dict[str, float]:
        return dict(self.counters)

    def __contains__(self, name: str) -> bool:
        return name in self.counters

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in self.items())
        return f"Stats({inner})"
