"""System configuration mirroring Table II of the paper.

All latencies are expressed in CPU cycles at the configured frequency.
``SystemConfig.table2()`` returns the exact configuration evaluated in
the paper: 8 x86-64 cores at 2 GHz, a 3-level cache hierarchy, an
FRFCFS memory controller with a 64-entry ADR write queue, a 20-entry
battery-backed log buffer per core, and 16 GB of phase-change memory
with 50 / 150 ns read / write latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.constants import LINE_SIZE, ONPM_LINE_SIZE, WORD_SIZE
from repro.common.errors import ConfigError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and access latency of one cache level."""

    size_bytes: int
    ways: int
    line_size: int = LINE_SIZE
    latency_cycles: int = 4

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_size <= 0:
            raise ConfigError("cache sizes and associativity must be positive")
        if self.size_bytes % (self.ways * self.line_size):
            raise ConfigError(
                f"cache size {self.size_bytes} is not divisible by "
                f"ways*line_size={self.ways * self.line_size}"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_size)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size


@dataclass(frozen=True)
class PMConfig:
    """Persistent-memory device parameters (phase-change memory)."""

    capacity_bytes: int = 16 << 30
    read_ns: float = 50.0
    write_ns: float = 150.0
    #: Fixed cycles to issue one request on the processor-memory bus.
    bus_overhead_cycles: int = 4
    #: Cycles per 8-byte beat on the 64-bit bus: a full 64B cacheline
    #: request takes ``overhead + 8*beat`` cycles, a single-word flush
    #: (Silo's in-place updates, Section III-E) just one beat.
    bus_beat_cycles: int = 2
    onpm_line_size: int = ONPM_LINE_SIZE
    onpm_buffer_lines: int = 64
    banks: int = 8

    def __post_init__(self) -> None:
        if self.read_ns <= 0 or self.write_ns <= 0:
            raise ConfigError("PM latencies must be positive")
        if self.onpm_line_size % WORD_SIZE:
            raise ConfigError("on-PM line size must be a multiple of the word size")
        if self.banks <= 0 or self.onpm_buffer_lines <= 0:
            raise ConfigError("banks and on-PM buffer lines must be positive")


@dataclass(frozen=True)
class MemoryControllerConfig:
    """FRFCFS memory controller with an ADR-protected write queue."""

    write_queue_entries: int = 64
    read_queue_entries: int = 64


@dataclass(frozen=True)
class LogBufferConfig:
    """Per-core battery-backed log buffer (Section III-B, Table I)."""

    entries: int = 20
    access_latency_cycles: int = 8
    #: Bytes per stored entry: 26-byte undo+redo entry plus the 8-byte
    #: physical address assigned in the PM log region (Section VI-D).
    bytes_per_entry: int = 34

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ConfigError("log buffer needs at least one entry")

    @property
    def capacity_bytes(self) -> int:
        return self.entries * self.bytes_per_entry


@dataclass(frozen=True)
class SystemConfig:
    """Complete simulated system (Table II)."""

    cores: int = 8
    freq_ghz: float = 2.0
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 << 10, 8, latency_cycles=4)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(256 << 10, 8, latency_cycles=12)
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig(8 << 20, 16, latency_cycles=28)
    )
    mc: MemoryControllerConfig = field(default_factory=MemoryControllerConfig)
    log_buffer: LogBufferConfig = field(default_factory=LogBufferConfig)
    pm: PMConfig = field(default_factory=PMConfig)
    #: Number of memory controllers; each serves the whole memory and
    #: a core always uses its own (Section III-D's multi-MC argument).
    memory_channels: int = 1
    #: Fixed cycles charged per executed operation for non-memory work.
    op_overhead_cycles: int = 1
    #: Cycles for the on-chip commit handshake between log generator and
    #: log controller ("several cycles", Section III-D).
    commit_handshake_cycles: int = 6

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigError("need at least one core")
        if self.freq_ghz <= 0:
            raise ConfigError("frequency must be positive")

    @classmethod
    def table2(cls, cores: int = 8) -> "SystemConfig":
        """The paper's evaluated configuration, optionally re-cored."""
        return cls(cores=cores)

    def ns_to_cycles(self, ns: float) -> int:
        """Convert nanoseconds to (rounded-up) CPU cycles."""
        cycles = ns * self.freq_ghz
        whole = int(cycles)
        return whole if cycles == whole else whole + 1

    @property
    def pm_read_cycles(self) -> int:
        return self.ns_to_cycles(self.pm.read_ns)

    @property
    def pm_write_cycles(self) -> int:
        return self.ns_to_cycles(self.pm.write_ns)

    def pm_request_cycles(self, words: int = 8) -> int:
        """Bus cycles to transfer a request of ``words`` 8-byte beats."""
        return self.pm.bus_overhead_cycles + words * self.pm.bus_beat_cycles

    def with_log_buffer(self, **kwargs: object) -> "SystemConfig":
        """Return a copy with modified log-buffer parameters."""
        return replace(self, log_buffer=replace(self.log_buffer, **kwargs))
