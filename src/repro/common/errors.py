"""Exception hierarchy for the reproduction package."""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class AddressError(ReproError):
    """A malformed or out-of-range physical address."""


class TransactionError(ReproError):
    """Illegal transaction usage (e.g. a store outside Tx_begin/Tx_end)."""


class SimulationError(ReproError):
    """Internal simulator invariant violation."""


class ExecutionError(ReproError):
    """One or more cells of an experiment campaign failed; the message
    carries the failed cells and their worker tracebacks."""
