"""Shared building blocks: constants, configuration, statistics, errors."""

from repro.common.config import (
    CacheConfig,
    LogBufferConfig,
    MemoryControllerConfig,
    PMConfig,
    SystemConfig,
)
from repro.common.constants import (
    LINE_SIZE,
    ONPM_LINE_SIZE,
    UNDO_LOG_ENTRY_SIZE,
    UNDO_REDO_LOG_ENTRY_SIZE,
    WORD_MASK,
    WORD_SIZE,
)
from repro.common.errors import (
    AddressError,
    ConfigError,
    ReproError,
    SimulationError,
    TransactionError,
)
from repro.common.stats import Stats

__all__ = [
    "CacheConfig",
    "LogBufferConfig",
    "MemoryControllerConfig",
    "PMConfig",
    "SystemConfig",
    "LINE_SIZE",
    "ONPM_LINE_SIZE",
    "UNDO_LOG_ENTRY_SIZE",
    "UNDO_REDO_LOG_ENTRY_SIZE",
    "WORD_MASK",
    "WORD_SIZE",
    "AddressError",
    "ConfigError",
    "ReproError",
    "SimulationError",
    "TransactionError",
    "Stats",
]
