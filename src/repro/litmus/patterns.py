"""Litmus pattern grammar, enumerator and trace lowering.

A pattern is a tiny multi-core persist-ordering program over a fixed
table of word **slots**:

* slots ``0..7`` are the eight words of one shared cache line — the
  *false-sharing line*: different cores storing different slots of it
  contend at line granularity while staying word-disjoint (the
  isolation assumption of Section III-A holds at word granularity);
* slots ``8..`` each live at the base of their own private line.

The textual **key** is the pattern's identity everywhere (spec kwargs,
cache addresses, replay commands)::

    <family>/<threads>            threads  := thread ('|' thread)*
                                  thread   := tx (';' tx)*
                                  tx       := op ('.' op)*
                                  op       := 's' slot | 'l' slot

``s<slot>`` is a transactional store to the slot, ``l<slot>`` a load.
Example: ``false_share/s0.s1|s2`` — core 0 runs one transaction
storing slots 0 and 1, core 1 one transaction storing slot 2, all on
the shared line.

Lowering assigns every store a value unique across the whole pattern
(``(tid+1) << 20 | store-sequence``), and every slot a distinct
nonzero initial value (``0xF00 | slot``), so the declarative oracle
can attribute any recovered word to exactly one writer — a torn or
invented value is never mistaken for a legal state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.common.constants import LINE_SIZE, WORD_SIZE
from repro.common.errors import ConfigError
from repro.trace.trace import ThreadTrace, Trace, Transaction

#: The litmus arena sits in its own region of the PM data space
#: (synthetic traces use 0x1000_0000, workload heaps 0x2000_0000).
LITMUS_BASE = 0x3000_0000

#: Words per cache line (slots 0..SHARED_SLOTS-1 share line 0).
SHARED_SLOTS = LINE_SIZE // WORD_SIZE

#: One op is ``('s'|'l', slot)``; a tx is a tuple of ops; a thread a
#: tuple of txs; a pattern body a tuple of threads.
OpTuple = Tuple[str, int]
TxTuple = Tuple[OpTuple, ...]
ThreadTuple = Tuple[TxTuple, ...]
BodyTuple = Tuple[ThreadTuple, ...]


def slot_addr(slot: int) -> int:
    """Word address of one slot (see module docstring)."""
    if slot < 0:
        raise ConfigError(f"negative litmus slot {slot}")
    if slot < SHARED_SLOTS:
        return LITMUS_BASE + slot * WORD_SIZE
    return LITMUS_BASE + (slot - SHARED_SLOTS + 1) * LINE_SIZE


def initial_value(slot: int) -> int:
    """Distinct nonzero pre-crash value of one slot (< any store
    value, which start at ``1 << 20``)."""
    return 0xF00 | slot


@dataclass(frozen=True)
class Pattern:
    """One litmus pattern: family label plus the decoded body."""

    family: str
    body: BodyTuple

    @property
    def key(self) -> str:
        threads = "|".join(
            ";".join(".".join(f"{kind}{slot}" for kind, slot in tx) for tx in thread)
            for thread in self.body
        )
        return f"{self.family}/{threads}"

    @property
    def cores(self) -> int:
        return len(self.body)

    @property
    def total_txs(self) -> int:
        return sum(len(thread) for thread in self.body)

    @property
    def total_ops(self) -> int:
        """Engine-visible op count: every tx contributes its ops plus
        the implicit ``Tx_begin``/``Tx_end`` markers."""
        return sum(len(tx) + 2 for thread in self.body for tx in thread)

    def stored_slots(self, tid: int) -> Tuple[int, ...]:
        """Slots thread ``tid`` stores to, deduplicated, in order."""
        seen: List[int] = []
        for tx in self.body[tid]:
            for kind, slot in tx:
                if kind == "s" and slot not in seen:
                    seen.append(slot)
        return tuple(seen)

    def all_slots(self) -> Tuple[int, ...]:
        """Every slot any op touches, sorted."""
        slots = {
            slot for thread in self.body for tx in thread for _, slot in tx
        }
        return tuple(sorted(slots))


def decode_pattern(key: str) -> Pattern:
    """Parse a pattern key back into a :class:`Pattern`.

    The grammar is validated strictly — a malformed key raises
    :class:`ConfigError` — and cross-thread *word* disjointness is
    enforced: two threads may share the false-sharing line, never a
    slot (the isolation assumption the oracle relies on).
    """
    family, sep, text = key.partition("/")
    if not sep or not family or not text:
        raise ConfigError(f"malformed litmus key {key!r} (want family/body)")
    threads: List[ThreadTuple] = []
    for thread_text in text.split("|"):
        txs: List[TxTuple] = []
        for tx_text in thread_text.split(";"):
            ops: List[OpTuple] = []
            for op_text in tx_text.split("."):
                if len(op_text) < 2 or op_text[0] not in ("s", "l"):
                    raise ConfigError(
                        f"malformed litmus op {op_text!r} in {key!r}"
                    )
                if not op_text[1:].isdigit():
                    raise ConfigError(
                        f"malformed litmus op {op_text!r} in {key!r}"
                    )
                slot = int(op_text[1:])
                ops.append((op_text[0], slot))
            if not ops:
                raise ConfigError(f"empty transaction in {key!r}")
            txs.append(tuple(ops))
        if not txs:
            raise ConfigError(f"empty thread in {key!r}")
        threads.append(tuple(txs))
    pattern = Pattern(family=family, body=tuple(threads))
    stored = [set(pattern.stored_slots(tid)) for tid in range(pattern.cores)]
    for a in range(len(stored)):
        for b in range(a + 1, len(stored)):
            overlap = stored[a] & stored[b]
            if overlap:
                raise ConfigError(
                    f"litmus pattern {key!r} violates word isolation: "
                    f"threads {a} and {b} both store slot(s) "
                    f"{sorted(overlap)}"
                )
    return pattern


def lower_pattern(pattern: Pattern) -> Trace:
    """Lower a pattern to an executable :class:`Trace`.

    Store values are globally unique (``(tid+1) << 20 | seq``), and
    every touched slot appears in the initial image with its distinct
    :func:`initial_value` — so each recovered word names exactly one
    legal writer (or none).
    """
    threads: List[ThreadTrace] = []
    for tid, thread_body in enumerate(pattern.body):
        thread = ThreadTrace(tid)
        seq = 0
        for tx_body in thread_body:
            tx = Transaction()
            for kind, slot in tx_body:
                if kind == "s":
                    seq += 1
                    tx.store(slot_addr(slot), ((tid + 1) << 20) | seq)
                else:
                    tx.load(slot_addr(slot))
            thread.append(tx)
        threads.append(thread)
    image = {slot_addr(slot): initial_value(slot) for slot in pattern.all_slots()}
    return Trace(threads, initial_image=image, name=f"litmus:{pattern.key}")


# ----------------------------------------------------------------------
# Enumeration
# ----------------------------------------------------------------------
def _patterns(family: str, bodies: List[str]) -> Iterator[Pattern]:
    for body in bodies:
        yield decode_pattern(f"{family}/{body}")


def _chains(max_len: int) -> List[str]:
    """Single-core store chains over private lines, plus same-word
    rewrite chains (persist ordering within one transaction)."""
    bodies = []
    for length in range(2, max_len + 1):
        bodies.append(".".join(f"s{8 + i}" for i in range(length)))
    bodies.append("s8.s8")          # rewrite: last store must win
    bodies.append("s8.s8.s9")       # rewrite then move on
    bodies.append("s8.l8.s9")       # load between the stores
    return bodies


def _torn(full: bool) -> List[str]:
    """Single transactions spanning the shared line and private lines:
    a crash mid-drain may tear the multi-word write set."""
    bodies = ["s0.s8", "s0.s1.s8", "s0.s1.s8.s9"]
    if full:
        bodies += ["s0.s1.s2.s8.s9.s10", "s0.s4.s8", "s0.s7.s8.s15"]
    return bodies


def _multitx(full: bool) -> List[str]:
    """Single-core multi-transaction programs: the durable set must be
    a program-order prefix, so crash points between commits
    discriminate."""
    bodies = ["s8;s9", "s8;s8", "s0.s8;s1.s9"]
    if full:
        bodies += ["s8;s9;s10", "s8.s9;s8", "s0;s1;s2"]
    return bodies


def _false_share(full: bool) -> List[str]:
    """2-3 cores storing disjoint words of the one shared line."""
    bodies = ["s0|s1", "s0.s1|s2", "s0|s1|s2", "s0.s2|s1.s3"]
    if full:
        bodies += [
            "s0.s1|s2.s3",
            "s0.s1.s2|s3",
            "s0|s1.s2|s3",
            "s0.s4|s1.s5|s2.s6",
            "s0;s1|s2;s3",
        ]
    return bodies


def _races(full: bool) -> List[str]:
    """Cross-core programs whose commits race each other (and, under
    exhaustive enumeration, the crash point): private lines, mixed
    private/shared, multi-transaction."""
    bodies = ["s8|s9", "s0.s8|s1.s9", "s8;s0|s9;s1"]
    if full:
        bodies += [
            "s8.s9|s10.s11",
            "s8.s0|s9.s1|s10.s2",
            "s8;s9|s10;s11",
            "l8.s8|s9.l9",
        ]
    return bodies


def enumerate_patterns(smoke: bool = False) -> List[Pattern]:
    """The deterministic pattern catalog, in a fixed order.

    ``smoke=True`` keeps the catalog CI-sized (still >500 cells once
    crossed with exhaustive crash points and all nine designs); the
    full catalog widens every family.
    """
    full = not smoke
    out: List[Pattern] = []
    out += _patterns("chain", _chains(6 if full else 4))
    out += _patterns("torn", _torn(full))
    out += _patterns("multitx", _multitx(full))
    out += _patterns("false_share", _false_share(full))
    out += _patterns("race", _races(full))
    keys = [p.key for p in out]
    if len(set(keys)) != len(keys):  # pragma: no cover - catalog bug
        raise ConfigError("duplicate litmus pattern keys in the catalog")
    return out
