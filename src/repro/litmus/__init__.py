"""Persistency-model litmus engine (small-scope model checking).

Sampled crash plans (crashtest, faultsweep) validate recovery at
*random* persist boundaries; this package validates it at *every* one.
A litmus **pattern** is a small multi-core persist-ordering program
(2-3 cores, a handful of stores arranged to hit the interesting
structure: store chains, cross-core false sharing on one cache line,
commit/crash races, torn multi-word transactions).  Each pattern
lowers to an ordinary :class:`~repro.trace.trace.Trace` and runs under
**exhaustive crash-point enumeration** — one cell per ``at_op`` in
``[0, total_ops]`` — across every registered design.  Each recovered
image is judged by a small *declarative* persistency-model oracle
(per-location legality plus per-transaction atomicity/durability),
and any failure is shrunk to a minimal cell that replays with one
``silo-repro replay --spec`` line.

Modules:

* :mod:`repro.litmus.patterns` — the pattern grammar, the deterministic
  enumerator and the lowering to traces;
* :mod:`repro.litmus.oracle` — the declarative oracle and its verdict
  taxonomy;
* :mod:`repro.litmus.shrink` — greedy structural shrinking of failing
  cells.

The campaign driver lives in :mod:`repro.harness.litmus`
(``silo-repro litmus``).
"""

from repro.litmus.oracle import LitmusVerdict, check_litmus
from repro.litmus.patterns import (
    Pattern,
    decode_pattern,
    enumerate_patterns,
    lower_pattern,
)
from repro.litmus.shrink import shrink_pattern

__all__ = [
    "LitmusVerdict",
    "Pattern",
    "check_litmus",
    "decode_pattern",
    "enumerate_patterns",
    "lower_pattern",
    "shrink_pattern",
]
