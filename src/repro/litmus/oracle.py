"""The declarative persistency-model oracle.

Judges one recovered PM image against the litmus persistency model
without re-deriving what recovery *should have done* — only what
states are *legal*:

* **legality** — every recovered word holds a value some program-order
  prefix of its owning thread could have left (its pre value or one of
  its writers' values); anything else is a torn or invented word;
* **atomicity** — each transaction's locations recover all-pre or
  all-post: the durable transactions of a thread must form a
  program-order *prefix* (a design cannot persist transaction *k+1*
  while losing *k*);
* **durability** — every transaction whose commit was acknowledged
  before the crash is in the durable prefix;
* **no spurious commits** — a transaction that never acknowledged is
  *not* in the durable prefix (recovery must revoke it).

Formally, for each thread the oracle computes the images after
applying its first ``k`` transactions (``k = 0..n``) to the initial
image, restricted to the thread's words, and the set ``K`` of ``k``
whose image matches the recovered words.  With ``cc`` the thread's
acknowledged-commit count, the thread passes iff ``cc in K``; the
failure taxonomy falls out of *how* ``K`` misses ``cc``.  Under the
word-isolation assumption (threads never store the same word —
enforced by the pattern decoder, true of every registry workload) this
conjunction is exactly equivalent to the PR-3 exact oracle
``check_atomic_durability`` (pinned by a hypothesis suite), but it is
computed per-location/per-transaction and therefore *names* the broken
axiom instead of dumping raw word mismatches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.common.errors import ConfigError
from repro.trace.trace import Trace

#: Verdict kinds, roughly ordered by how alarming they are.
KINDS = (
    "ok",
    "illegal-value",    # a word holds a value no prefix could produce
    "atomicity",        # legal words, but no single prefix matches
    "durability",       # an acknowledged commit did not survive
    "spurious-commit",  # an unacknowledged transaction survived
)


@dataclass(frozen=True)
class LitmusVerdict:
    """What the oracle concluded about one recovered image."""

    kind: str
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.kind == "ok"

    def __str__(self) -> str:
        return self.kind if not self.detail else f"{self.kind}: {self.detail}"


def _thread_prefix_images(
    thread, initial: Dict[int, int]
) -> Tuple[List[Dict[int, int]], Set[int]]:
    """Images of one thread's words after each committed prefix.

    Returns ``(images, words)`` where ``images[k]`` maps every word the
    thread ever stores to its value after the first ``k`` transactions
    (missing initial words default to 0, matching
    :func:`~repro.sim.verify.expected_image`).
    """
    words: Set[int] = set()
    for tx in thread.transactions:
        words.update(tx.final_values())
    image = {addr: initial.get(addr, 0) for addr in words}
    images = [dict(image)]
    for tx in thread.transactions:
        image.update(tx.final_values())
        images.append(dict(image))
    return images, words


def check_litmus(
    trace: Trace,
    committed: Iterable[Tuple[int, int]],
    image: Dict[int, int],
) -> LitmusVerdict:
    """Judge a recovered image (word address -> recovered value).

    ``committed`` holds the engine's acknowledged ``(tid, tx_index)``
    pairs; ``image`` must cover every word in
    ``trace.touched_words()`` (the executor's ``capture_image=True``
    snapshot does).  Raises :class:`ConfigError` when the oracle's
    preconditions do not hold (word sharing across threads, an
    incomplete image, a non-prefix commit set) — those are harness
    bugs, not persistency verdicts.
    """
    committed = set(committed)
    seen_words: Dict[int, int] = {}
    stored_words: Set[int] = set()

    def recovered(addr: int) -> int:
        try:
            return image[addr]
        except KeyError:
            raise ConfigError(
                f"recovered image does not cover word {addr:#x} "
                "(capture_image missing from the cell?)"
            ) from None

    for thread in trace.threads:
        images, words = _thread_prefix_images(thread, trace.initial_image)
        for addr in words:
            if addr in seen_words and seen_words[addr] != thread.tid:
                raise ConfigError(
                    f"threads {seen_words[addr]} and {thread.tid} both "
                    f"store word {addr:#x}: the oracle needs word "
                    "isolation"
                )
            seen_words[addr] = thread.tid
        stored_words.update(words)

        n = len(thread.transactions)
        cc = sum(1 for tid, idx in committed if tid == thread.tid)
        prefix = {idx for tid, idx in committed if tid == thread.tid}
        if prefix != set(range(cc)):
            raise ConfigError(
                f"thread {thread.tid} committed a non-prefix set "
                f"{sorted(prefix)}: engine invariant broken"
            )

        matches = [
            k
            for k in range(n + 1)
            if all(recovered(addr) == images[k][addr] for addr in words)
        ]
        if cc in matches:
            continue
        if not matches:
            # No prefix matches: either some word holds an outright
            # illegal value, or the words mix two different prefixes.
            for addr in sorted(words):
                got = recovered(addr)
                legal = {images[k][addr] for k in range(n + 1)}
                if got not in legal:
                    return LitmusVerdict(
                        "illegal-value",
                        f"thread {thread.tid} word {addr:#x} recovered "
                        f"{got:#x}, legal values {sorted(legal)}",
                    )
            return LitmusVerdict(
                "atomicity",
                f"thread {thread.tid}: words mix transaction prefixes "
                f"(no k in 0..{n} matches; {cc} acknowledged)",
            )
        if all(k < cc for k in matches):
            return LitmusVerdict(
                "durability",
                f"thread {thread.tid}: image matches prefix "
                f"{max(matches)} but {cc} commit(s) were acknowledged",
            )
        return LitmusVerdict(
            "spurious-commit",
            f"thread {thread.tid}: image matches prefix "
            f"{min(k for k in matches if k > cc)} but only {cc} "
            "commit(s) were acknowledged",
        )

    # Words in the initial image no transaction ever stores must
    # survive untouched — recovery has no business rewriting them.
    for addr in sorted(set(trace.initial_image) - stored_words):
        got = recovered(addr)
        want = trace.initial_image[addr]
        if got != want:
            return LitmusVerdict(
                "illegal-value",
                f"untouched word {addr:#x} recovered {got:#x}, "
                f"initial value {want:#x}",
            )
    return LitmusVerdict("ok")
