"""Greedy structural shrinking of failing litmus cells.

A violation found by the exhaustive sweep usually fires on a pattern
with more structure than the bug needs.  The shrinker minimizes it
with the classic delta-debugging moves, in decreasing order of how
much they remove:

1. drop a whole thread,
2. drop a whole transaction,
3. drop a single op.

Each candidate reduction is re-judged by a caller-supplied predicate
(``fails(pattern) -> Optional[int]``: the smallest failing ``at_op``
under exhaustive re-enumeration, or ``None`` if the reduction made the
failure vanish).  The first failing candidate is taken and the search
restarts from it — a fixpoint loop, so the result is 1-minimal: no
single thread, transaction or op can be removed without losing the
failure.  The crash window narrows automatically: every accepted
reduction re-enumerates all of the (now fewer) crash points and keeps
the smallest failing one.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Tuple

from repro.litmus.patterns import Pattern

#: Re-judge predicate: smallest failing ``at_op`` or ``None``.
Fails = Callable[[Pattern], Optional[int]]

#: Safety valve: structural reductions only ever remove elements, so
#: the fixpoint loop is bounded by the op count anyway — this guards
#: against a pathological predicate.
MAX_ROUNDS = 64


def _reductions(pattern: Pattern) -> Iterator[Pattern]:
    """Every pattern one structural deletion away, largest cuts first.

    Deletions never produce an empty program: the last thread, a
    thread's last transaction and a transaction's last op are removed
    as a unit by the coarser move instead.
    """
    body = pattern.body
    if len(body) > 1:
        for t in range(len(body)):
            yield Pattern(pattern.family, body[:t] + body[t + 1 :])
    for t, thread in enumerate(body):
        if len(thread) > 1:
            for x in range(len(thread)):
                reduced = thread[:x] + thread[x + 1 :]
                yield Pattern(
                    pattern.family, body[:t] + (reduced,) + body[t + 1 :]
                )
    for t, thread in enumerate(body):
        for x, tx in enumerate(thread):
            if len(tx) > 1:
                for o in range(len(tx)):
                    reduced_tx = tx[:o] + tx[o + 1 :]
                    reduced = thread[:x] + (reduced_tx,) + thread[x + 1 :]
                    yield Pattern(
                        pattern.family, body[:t] + (reduced,) + body[t + 1 :]
                    )


def shrink_pattern(
    pattern: Pattern, at_op: int, fails: Fails
) -> Tuple[Pattern, int]:
    """Minimize a failing ``(pattern, at_op)`` cell.

    ``at_op`` is the crash point the original failure fired at; the
    returned pair is the 1-minimal pattern and the smallest crash
    point at which it still fails.  The original cell is assumed to
    fail (the caller just observed it); if ``fails`` disagrees even on
    the unreduced pattern — flaky predicate — the original cell is
    returned unchanged.
    """
    confirmed = fails(pattern)
    if confirmed is None:
        return pattern, at_op
    best, best_at = pattern, confirmed
    for _ in range(MAX_ROUNDS):
        for candidate in _reductions(best):
            candidate_at = fails(candidate)
            if candidate_at is not None:
                best, best_at = candidate, candidate_at
                break
        else:
            break
    return best, best_at
