"""Seeded, deterministic device-level fault injection.

The clean crash model (``repro.sim.crash``) assumes the ADR domain
drains perfectly: every accepted write reaches media intact.  Real PM
fails uglier — multi-word log entries tear at the 8-byte
persist-atomicity boundary, WPQ entries are lost outright, and media
cells take uncorrectable bit errors.  This package injects exactly
those faults at a crash point, records what it did in a
:class:`~repro.faults.inject.FaultLedger`, and provides the
fault-aware atomic-durability oracle that checks recovery either
tolerated or *explicitly reported* every injected fault — silent
corruption is the one unforgivable outcome.
"""

from repro.faults.inject import FaultLedger, inject_faults
from repro.faults.oracle import FaultVerdict, check_fault_aware_durability
from repro.faults.plan import FaultPlan

__all__ = [
    "FaultLedger",
    "FaultPlan",
    "FaultVerdict",
    "check_fault_aware_durability",
    "inject_faults",
]
