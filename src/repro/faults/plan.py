"""Fault plans: the declarative description of what breaks at a crash.

A :class:`FaultPlan` composes with a :class:`~repro.sim.crash.CrashPlan`
(faults strike *at* the crash point; a plan without a crash plan is a
configuration error).  All randomness is drawn from one
``random.Random(seed)`` stream, so a ``(crash plan, fault plan)`` pair
replays bit-identically — which is what lets faultsweep cells be
cached, parallelized and replayed in isolation.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class FaultPlan:
    """What the device does to in-flight and at-rest state at a crash.

    * ``tear_prob`` / ``drop_prob`` — per-entry probabilities that a
      log record (or commit tuple) still inside the volatile WPQ /
      log-buffer pipeline is torn at word granularity or lost outright
      instead of draining atomically.
    * ``log_bitflips`` — media bit errors in log-region words (flips a
      payload bit of an at-rest log record; the stored checksum no
      longer matches).
    * ``data_bitflips`` — media bit errors in data-region words (the
      cell is poisoned: device ECC detects but cannot correct it).
    """

    seed: int = 0
    tear_prob: float = 0.0
    drop_prob: float = 0.0
    log_bitflips: int = 0
    data_bitflips: int = 0
    #: Whether in-flight commit tuples participate in tear/drop.  The
    #: complement-word tuple encoding makes any damage detectable, so
    #: a faulted tuple demotes its transaction to uncommitted.
    fault_tuples: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.tear_prob <= 1.0:
            raise ConfigError(f"tear_prob {self.tear_prob} outside [0, 1]")
        if not 0.0 <= self.drop_prob <= 1.0:
            raise ConfigError(f"drop_prob {self.drop_prob} outside [0, 1]")
        if self.tear_prob + self.drop_prob > 1.0:
            raise ConfigError(
                "tear_prob + drop_prob exceed 1.0 — a record cannot be "
                "both torn and dropped"
            )
        if self.log_bitflips < 0 or self.data_bitflips < 0:
            raise ConfigError("bit-flip counts must be non-negative")

    @property
    def is_noop(self) -> bool:
        """True when the plan injects nothing (a clean ADR drain)."""
        return (
            self.tear_prob == 0.0
            and self.drop_prob == 0.0
            and self.log_bitflips == 0
            and self.data_bitflips == 0
        )

    # ------------------------------------------------------------------
    # Canonical serialization (cache keys, repro commands)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        """A canonical, JSON-stable dict: the exact value that enters
        the content-addressed result-cache key."""
        return asdict(self)

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(**data)
