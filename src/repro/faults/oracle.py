"""The fault-aware atomic-durability oracle.

The clean oracle (``repro.sim.verify``) demands the recovered data
region match the committed transactions exactly.  Under injected
faults that is no longer achievable — a committed transaction whose
only redo copy was torn mid-drain cannot be replayed — so the
contract weakens in a precisely-bounded way:

1. **Bounded damage**: every data-region mismatch must be explained by
   an injected fault — it lies on a poisoned media word, or belongs to
   a transaction whose log protection was damaged (torn / dropped /
   bit-flipped record, corrupted commit tuple).  Mismatches outside
   that blast radius are recovery bugs, exactly as in the clean oracle.
2. **No silent corruption**: every injected fault must be *reported*
   by recovery.  Per fault kind, the count recovery rejected (or the
   media scrub surfaced) must equal the count the ledger injected —
   faults are applied disjointly, so the accounting is exact.

A cell passes only when both hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.results import RunResult
    from repro.sim.system import System
    from repro.trace.trace import Trace

_TXID_WRAP = 1 << 16


@dataclass
class FaultVerdict:
    """One cell's verdict under the fault-aware oracle."""

    #: Every raw data-region mismatch ``(addr, actual, expected)``.
    mismatches: List[Tuple[int, int, int]] = field(default_factory=list)
    #: Mismatches *not* explained by any injected-and-reported fault —
    #: genuine atomic-durability violations.
    unattributed: List[Tuple[int, int, int]] = field(default_factory=list)
    #: Fault kinds recovery under-reported: injected damage that was
    #: silently absorbed.  The worst possible outcome.
    silent: List[str] = field(default_factory=list)
    #: Injected fault counts by kind (from the ledger).
    injected: Dict[str, int] = field(default_factory=dict)
    #: Reported fault counts by kind (from the recovery report).
    reported: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.unattributed and not self.silent

    def describe(self) -> str:
        if self.ok:
            return "ok"
        parts = []
        if self.unattributed:
            addr, got, want = self.unattributed[0]
            parts.append(
                f"{len(self.unattributed)} unattributed mismatch(es), "
                f"first at {addr:#x}: got {got:#x}, want {want:#x}"
            )
        for kind in self.silent:
            parts.append(
                f"silent corruption: {kind} injected "
                f"{self.injected.get(kind, 0)}, reported "
                f"{self.reported.get(kind, 0)}"
            )
        return "; ".join(parts)


def _compromised_addrs(
    trace: "Trace", compromised: Set[Tuple[int, int]]
) -> Set[int]:
    """Data words written by transactions that lost log protection.

    The ledger names transactions by ``(tid, txid)``; the trace names
    them by position, and the engine maps position to txid as
    ``(tx_index + 1) % 2**16``.
    """
    addrs: Set[int] = set()
    if not compromised:
        return addrs
    for thread in trace.threads:
        for index, tx in enumerate(thread.transactions):
            if (thread.tid, (index + 1) % _TXID_WRAP) in compromised:
                addrs.update(tx.final_values().keys())
    return addrs


def check_fault_aware_durability(
    system: "System", trace: "Trace", result: "RunResult"
) -> FaultVerdict:
    """Judge one crashed-and-recovered run against the fault model."""
    from repro.sim.verify import check_atomic_durability

    verdict = FaultVerdict()
    verdict.mismatches = check_atomic_durability(
        system, trace, result.committed
    )
    ledger = result.faults
    report = result.recovery
    if ledger is None or ledger.plan.is_noop:
        # No faults injected: this *is* the clean oracle.
        verdict.unattributed = list(verdict.mismatches)
        return verdict

    verdict.injected = {
        "torn": len(ledger.torn_entries),
        "dropped": len(ledger.dropped_entries),
        "log_bitflip": len(ledger.log_bitflips),
        "commit_tuple": len(ledger.corrupt_tuples),
        "data_bitflip": len(ledger.data_bitflips),
    }
    if report is None:
        # Recovery never ran: everything injected went unreported.
        verdict.reported = {kind: 0 for kind in verdict.injected}
        verdict.silent = [
            kind for kind, n in verdict.injected.items() if n > 0
        ]
        verdict.unattributed = list(verdict.mismatches)
        return verdict

    # A poisoned cell is reported either by the post-recovery media
    # scrub (still poisoned) or implicitly healed when recovery's own
    # replay/revoke writes re-programmed the cell with correct data.
    verdict.reported = {
        "torn": report.rejected_torn,
        "dropped": report.rejected_dropped,
        "log_bitflip": report.rejected_checksum,
        "commit_tuple": report.rejected_tuples,
        "data_bitflip": report.media_poisoned + report.poison_healed,
    }
    verdict.silent = sorted(
        kind
        for kind, n in verdict.injected.items()
        if verdict.reported.get(kind, 0) < n
    )

    allowed = _compromised_addrs(trace, ledger.compromised_txs)
    allowed.update(ledger.data_bitflips)
    verdict.unattributed = [
        m for m in verdict.mismatches if m[0] not in allowed
    ]
    return verdict
