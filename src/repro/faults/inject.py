"""The fault injector: applies a :class:`FaultPlan` at the crash point.

Runs at the very end of the engine's crash sequence — after the
scheme's battery-backed flushes and the ADR drain, before recovery —
because that is when the device's view of "what made it to media" is
decided.  Three fault populations:

* **in-flight log records and commit tuples** (anything the crash
  handlers pushed through the WPQ/log-buffer pipeline, plus the
  trailing WPQ-capacity window of pre-crash records belonging to
  transactions with no persisted commit tuple): torn at word
  granularity or dropped outright;
* **at-rest log records**: media bit errors flipping one payload bit
  (the entry's stored checksum no longer matches);
* **data-region media words**: media bit errors poisoning the cell
  (device ECC detects-but-cannot-correct).

Faults are applied *disjointly* — one record takes at most one fault —
so the oracle can demand exact per-kind accounting from recovery.

Everything the injector does is recorded in a :class:`FaultLedger`;
the fault-aware oracle uses it to separate "mismatch explained by an
injected, *reported* fault" from a genuine recovery bug.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Set, Tuple

from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.system import System

#: Words per serialized log slot, by record kind.  The checksum word is
#: serialized last, so a torn entry (any strict prefix of the slot) is
#: always missing it — tears are detectable by construction.
_SLOT_WORDS = {"undo": 3, "redo": 3, "undo_redo": 4}


@dataclass
class FaultLedger:
    """Exactly what the injector did, for the oracle and reports."""

    plan: FaultPlan
    #: ``(tid, txid, index)`` locators of records torn mid-drain.
    torn_entries: List[Tuple[int, int, int]] = field(default_factory=list)
    #: Locators of records whose WPQ entry was lost outright.
    dropped_entries: List[Tuple[int, int, int]] = field(default_factory=list)
    #: Locators of at-rest records that took a media bit error.
    log_bitflips: List[Tuple[int, int, int]] = field(default_factory=list)
    #: ``(tid, txid)`` commit tuples torn or dropped mid-drain.
    corrupt_tuples: List[Tuple[int, int]] = field(default_factory=list)
    #: Data-region word addresses poisoned by a media bit error.
    data_bitflips: List[int] = field(default_factory=list)
    #: Transactions (``(tid, txid)``) that lost log protection to any
    #: injected fault: their durability/atomicity can no longer be
    #: guaranteed, only *detected*.  The oracle accepts data-region
    #: mismatches on these transactions' footprints — recovery reported
    #: the damage — and rejects all others.
    compromised_txs: Set[Tuple[int, int]] = field(default_factory=set)

    @property
    def total_injected(self) -> int:
        return (
            len(self.torn_entries)
            + len(self.dropped_entries)
            + len(self.log_bitflips)
            + len(self.corrupt_tuples)
            + len(self.data_bitflips)
        )


def inject_faults(system: "System", plan: FaultPlan) -> FaultLedger:
    """Apply ``plan`` to ``system``'s PM state at the crash point.

    Deterministic: one ``random.Random(plan.seed)`` stream drives every
    decision, and all candidate populations are enumerated in sorted
    order, so the same (run, plan) pair always injects the same faults.
    """
    ledger = FaultLedger(plan=plan)
    if plan.is_noop:
        return ledger
    rng = random.Random(plan.seed)
    region = system.region
    media = system.pm.media
    layout = system.pm.layout
    faulted: Set[Tuple[int, int, int]] = set()

    # -- tear / drop the in-flight window --------------------------------
    cut = plan.tear_prob + plan.drop_prob
    if cut > 0.0:
        window = system.mc.wpq_capacity
        for loc in region.inflight_record_locators(window):
            r = rng.random()
            if r >= cut:
                continue
            tid, txid, idx = loc
            rec = region.get_record(tid, txid, idx)
            if r < plan.tear_prob:
                slot = _SLOT_WORDS.get(rec.kind, 4)
                present = rng.randrange(1, slot)
                region.replace_record(
                    tid,
                    txid,
                    idx,
                    rec._replace(integrity="torn", present_words=present),
                )
                ledger.torn_entries.append(loc)
            else:
                region.replace_record(
                    tid, txid, idx, rec._replace(integrity="dropped")
                )
                ledger.dropped_entries.append(loc)
            faulted.add(loc)
            ledger.compromised_txs.add((tid, txid))
        if plan.fault_tuples:
            for tid, txid in region.inflight_commit_tuples():
                r = rng.random()
                if r >= cut:
                    continue
                reason = "torn" if r < plan.tear_prob else "dropped"
                region.corrupt_commit_tuple(tid, txid, reason)
                ledger.corrupt_tuples.append((tid, txid))
                ledger.compromised_txs.add((tid, txid))

    # -- media bit errors in at-rest log records -------------------------
    if plan.log_bitflips:
        candidates = [
            loc for loc in region.all_record_locators() if loc not in faulted
        ]
        picks = rng.sample(candidates, min(plan.log_bitflips, len(candidates)))
        for loc in sorted(picks):
            tid, txid, idx = loc
            rec = region.get_record(tid, txid, idx)
            bit = rng.randrange(64)
            if rng.random() < 0.5:
                rec = rec._replace(old=rec.old ^ (1 << bit))
            else:
                rec = rec._replace(new=rec.new ^ (1 << bit))
            # The stored checksum is untouched: recovery's recompute
            # over the corrupted payload words is what must catch this.
            region.replace_record(tid, txid, idx, rec)
            ledger.log_bitflips.append(loc)
            ledger.compromised_txs.add((tid, txid))

    # -- media bit errors in data-region words ---------------------------
    if plan.data_bitflips:
        words = [a for a in media.word_addresses() if layout.in_data_region(a)]
        picks = rng.sample(words, min(plan.data_bitflips, len(words)))
        for addr in sorted(picks):
            media.inject_bitflip(addr, rng.randrange(64))
            ledger.data_bitflips.append(addr)

    return ledger
