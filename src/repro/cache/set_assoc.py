"""A set-associative, write-back, LRU cache level."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional

from repro.common.config import CacheConfig
from repro.common.stats import Stats
from repro.cache.line import CacheLine


class SetAssocCache:
    """One cache level; eviction returns the victim line to the caller."""

    def __init__(
        self, config: CacheConfig, name: str = "cache", stats: Optional[Stats] = None
    ) -> None:
        self.config = config
        self.name = name
        self.stats = stats if stats is not None else Stats()
        self._sets: List["OrderedDict[int, CacheLine]"] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self._num_sets = config.num_sets
        self._ways = config.ways
        self._line_shift = config.line_size.bit_length() - 1
        # Counter names are precomputed: lookups run on the hottest
        # path of the simulator and f-strings per access dominate it.
        self._k_hits = f"{name}.hits"
        self._k_misses = f"{name}.misses"
        self._k_evictions = f"{name}.evictions"
        self._k_dirty_evictions = f"{name}.dirty_evictions"
        # The live counter mapping, hoisted once (the Stats backing
        # Counter is stable for the object's lifetime).
        self._counters = self.stats.counters

    def _set_for(self, base: int) -> "OrderedDict[int, CacheLine]":
        return self._sets[(base >> self._line_shift) % self._num_sets]

    # ------------------------------------------------------------------
    # Lookup / insert / remove
    # ------------------------------------------------------------------
    def lookup(self, base: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the resident line at ``base`` (LRU-touched) or None."""
        bucket = self._sets[(base >> self._line_shift) % self._num_sets]
        line = bucket.get(base)
        if line is None:
            self._counters[self._k_misses] += 1
            return None
        if touch:
            bucket.move_to_end(base)
        self._counters[self._k_hits] += 1
        return line

    def probe(self, base: int) -> Optional[CacheLine]:
        """Like :meth:`lookup` but without LRU or hit/miss accounting;
        used by design-driven flushes that are not demand accesses."""
        return self._sets[(base >> self._line_shift) % self._num_sets].get(base)

    def insert(self, line: CacheLine) -> Optional[CacheLine]:
        """Make ``line`` resident; returns an evicted victim, if any."""
        bucket = self._sets[(line.base >> self._line_shift) % self._num_sets]
        victim: Optional[CacheLine] = None
        if line.base not in bucket and len(bucket) >= self._ways:
            _, victim = bucket.popitem(last=False)
            counters = self._counters
            counters[self._k_evictions] += 1
            if victim.dirty:
                counters[self._k_dirty_evictions] += 1
        existing = bucket.get(line.base)
        if existing is not None:
            # Merge: the incoming line's words are newer only when the
            # caller says so; in this simulator inserts of an existing
            # base only happen when folding an upper-level victim into
            # a lower level, where the victim's words are newest.
            existing.dirty_words.update(line.dirty_words)
            bucket.move_to_end(line.base)
            return victim
        bucket[line.base] = line
        return victim

    def remove(self, base: int) -> Optional[CacheLine]:
        """Remove and return the line at ``base`` without write-back."""
        return self._set_for(base).pop(base, None)

    # ------------------------------------------------------------------
    # Iteration / inspection
    # ------------------------------------------------------------------
    def iter_lines(self) -> Iterator[CacheLine]:
        for bucket in self._sets:
            yield from bucket.values()

    def dirty_lines(self) -> Iterator[CacheLine]:
        return (line for line in self.iter_lines() if line.dirty)

    def resident(self, base: int) -> bool:
        return base in self._set_for(base)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._sets)
