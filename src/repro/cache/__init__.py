"""Volatile cache hierarchy (L1D / L2 private, L3 shared; Table II)."""

from repro.cache.line import CacheLine
from repro.cache.set_assoc import SetAssocCache
from repro.cache.hierarchy import AccessResult, CacheHierarchy

__all__ = ["CacheLine", "SetAssocCache", "AccessResult", "CacheHierarchy"]
