"""A single cacheline holding its dirty word values.

Clean resident lines carry no data: the simulator only needs cached
*values* when a dirty line is written back, so a line tracks the words
modified while it was cached.  Everything in a cache is volatile and
vanishes on a crash.
"""

from __future__ import annotations

from typing import Dict


class CacheLine:
    """One resident line: base address plus modified-word values."""

    __slots__ = ("base", "dirty_words")

    def __init__(self, base: int) -> None:
        self.base = base
        #: ``{word_addr: value}`` for words stored while resident.
        self.dirty_words: Dict[int, int] = {}

    @property
    def dirty(self) -> bool:
        return bool(self.dirty_words)

    def write_word(self, addr: int, value: int) -> None:
        self.dirty_words[addr] = value

    def clean(self) -> Dict[int, int]:
        """Return and clear the dirty words (used after a write-back)."""
        words, self.dirty_words = self.dirty_words, {}
        return words

    def __repr__(self) -> str:
        state = "dirty" if self.dirty else "clean"
        return f"CacheLine({self.base:#x}, {state}, {len(self.dirty_words)} words)"
