"""Three-level cache hierarchy with per-core L1/L2 and a shared L3.

The hierarchy provides timing (hit level determines access latency),
write-back traffic (dirty L3 victims flow to the memory controller) and
crash semantics (everything here is volatile).  Values are only held
for dirty words — see :mod:`repro.cache.line`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.config import SystemConfig
from repro.common.stats import Stats
from repro.cache.line import CacheLine
from repro.cache.set_assoc import SetAssocCache


class AccessResult:
    """Outcome of one hierarchy access.

    A ``__slots__`` class rather than a dataclass: one result object is
    allocated per simulated memory access.
    """

    __slots__ = ("latency", "hit_level", "writebacks")

    def __init__(
        self,
        latency: int,
        hit_level: str,
        writebacks: Optional[List[Tuple[int, Dict[int, int]]]] = None,
    ) -> None:
        self.latency = latency
        self.hit_level = hit_level
        #: Dirty lines pushed out of the hierarchy, destined for the
        #: MC: ``[(line_base, {word_addr: value}), ...]``.
        self.writebacks = writebacks if writebacks is not None else []

    def __repr__(self) -> str:  # parity with the dataclass it replaced
        return (
            f"AccessResult(latency={self.latency}, "
            f"hit_level={self.hit_level!r}, writebacks={self.writebacks})"
        )


class CacheHierarchy:
    """L1D + L2 per core, shared L3; write-allocate, write-back."""

    def __init__(
        self,
        config: SystemConfig,
        stats: Optional[Stats] = None,
        obs=None,
    ) -> None:
        self.config = config
        self.stats = stats if stats is not None else Stats()
        self._obs = obs
        self._l1 = [
            SetAssocCache(config.l1, f"l1.core{c}", self.stats)
            for c in range(config.cores)
        ]
        self._l2 = [
            SetAssocCache(config.l2, f"l2.core{c}", self.stats)
            for c in range(config.cores)
        ]
        self._l3 = SetAssocCache(config.l3, "l3", self.stats)
        self._line_mask = ~(config.l1.line_size - 1)
        self._lat_l1 = config.l1.latency_cycles
        self._lat_l2 = config.l2.latency_cycles
        self._lat_l3 = config.l3.latency_cycles
        self._lat_pm = config.pm_read_cycles
        #: Shared result for the L1-hit case.  An L1 hit can never
        #: produce writebacks and callers treat results as read-only,
        #: so the overwhelmingly common outcome needs no allocation.
        self._l1_hit = AccessResult(self._lat_l1, "l1", ())

    # ------------------------------------------------------------------
    # Core-facing accesses
    # ------------------------------------------------------------------
    def store(self, core: int, addr: int, value: int) -> AccessResult:
        """A CPU store of one word; allocates the line in L1."""
        base = addr & self._line_mask
        line, result = self._fetch_into_l1(core, base)
        line.write_word(addr, value)
        return result

    def load(self, core: int, addr: int) -> AccessResult:
        """A CPU load; allocates the line in L1 (timing only)."""
        _, result = self._fetch_into_l1(core, addr & self._line_mask)
        return result

    def _fetch_into_l1(
        self, core: int, base: int
    ) -> Tuple[CacheLine, AccessResult]:
        # L1 lookup() inlined: this runs once per simulated access and
        # the overwhelming majority of accesses end right here.
        l1 = self._l1[core]
        bucket = l1._sets[(base >> l1._line_shift) % l1._num_sets]
        resident = bucket.get(base)
        if resident is not None:
            bucket.move_to_end(base)
            l1._counters[l1._k_hits] += 1
            return resident, self._l1_hit
        l1._counters[l1._k_misses] += 1
        result = AccessResult(latency=self._lat_l1, hit_level="l1")

        line = self._l2[core].remove(base)
        if line is not None:
            result.latency += self._lat_l2
            result.hit_level = "l2"
        else:
            result.latency += self._lat_l2
            line = self._l3.remove(base)
            if line is not None:
                result.latency += self._lat_l3
                result.hit_level = "l3"
            else:
                result.latency += self._lat_l3 + self._lat_pm
                result.hit_level = "pm"
                line = CacheLine(base)

        victim = self._l1[core].insert(line)
        if victim is not None:
            self._demote_to_l2(core, victim, result)
        return line, result

    def _demote_to_l2(self, core: int, line: CacheLine, result: AccessResult) -> None:
        victim = self._l2[core].insert(line)
        if victim is not None:
            self._demote_to_l3(victim, result)

    def _demote_to_l3(self, line: CacheLine, result: AccessResult) -> None:
        victim = self._l3.insert(line)
        if victim is not None and victim.dirty:
            words = victim.clean()
            obs = self._obs
            if obs is not None:
                obs.cache_writeback(len(words))
            result.writebacks.append((victim.base, words))

    # ------------------------------------------------------------------
    # Design-driven flushes
    # ------------------------------------------------------------------
    def writeback_line(self, core: int, base: int) -> Optional[Dict[int, int]]:
        """Write back (but keep resident) the dirty words of one line.

        Merges dirty words across levels with L1 taking priority, clears
        all dirty state for the line and returns the merged words, or
        ``None`` if the line is clean/absent everywhere.
        """
        # probe() inlined and the three levels unrolled: this runs once
        # per transactional store in the per-store flush designs, and
        # in the common case only one level holds dirty words — its
        # clean() dict is returned without an extra merge copy.
        merged: Optional[Dict[int, int]] = None
        cache = self._l3
        line = cache._sets[(base >> cache._line_shift) % cache._num_sets].get(base)
        if line is not None and line.dirty_words:
            merged = line.clean()
        cache = self._l2[core]
        line = cache._sets[(base >> cache._line_shift) % cache._num_sets].get(base)
        if line is not None and line.dirty_words:
            if merged is None:
                merged = line.clean()
            else:
                merged.update(line.clean())
        cache = self._l1[core]
        line = cache._sets[(base >> cache._line_shift) % cache._num_sets].get(base)
        if line is not None and line.dirty_words:
            if merged is None:
                merged = line.clean()
            else:
                merged.update(line.clean())
        return merged

    def is_dirty_in_l1(self, core: int, base: int) -> bool:
        line = self._l1[core].probe(base)
        return line is not None and line.dirty

    def drop_all(self) -> None:
        """Discard every cached line (a crash: caches are volatile)."""
        self.__init__(self.config, self.stats, obs=self._obs)
