"""Three-level cache hierarchy with per-core L1/L2 and a shared L3.

The hierarchy provides timing (hit level determines access latency),
write-back traffic (dirty L3 victims flow to the memory controller) and
crash semantics (everything here is volatile).  Values are only held
for dirty words — see :mod:`repro.cache.line`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.config import SystemConfig
from repro.common.stats import Stats
from repro.cache.line import CacheLine
from repro.cache.set_assoc import SetAssocCache


@dataclass
class AccessResult:
    """Outcome of one hierarchy access."""

    latency: int
    hit_level: str
    #: Dirty lines pushed out of the hierarchy, destined for the MC:
    #: ``[(line_base, {word_addr: value}), ...]``.
    writebacks: List[Tuple[int, Dict[int, int]]] = field(default_factory=list)


class CacheHierarchy:
    """L1D + L2 per core, shared L3; write-allocate, write-back."""

    def __init__(self, config: SystemConfig, stats: Optional[Stats] = None) -> None:
        self.config = config
        self.stats = stats if stats is not None else Stats()
        self._l1 = [
            SetAssocCache(config.l1, f"l1.core{c}", self.stats)
            for c in range(config.cores)
        ]
        self._l2 = [
            SetAssocCache(config.l2, f"l2.core{c}", self.stats)
            for c in range(config.cores)
        ]
        self._l3 = SetAssocCache(config.l3, "l3", self.stats)
        self._line_mask = ~(config.l1.line_size - 1)
        self._lat_l1 = config.l1.latency_cycles
        self._lat_l2 = config.l2.latency_cycles
        self._lat_l3 = config.l3.latency_cycles
        self._lat_pm = config.pm_read_cycles

    # ------------------------------------------------------------------
    # Core-facing accesses
    # ------------------------------------------------------------------
    def store(self, core: int, addr: int, value: int) -> AccessResult:
        """A CPU store of one word; allocates the line in L1."""
        base = addr & self._line_mask
        line, result = self._fetch_into_l1(core, base)
        line.write_word(addr, value)
        return result

    def load(self, core: int, addr: int) -> AccessResult:
        """A CPU load; allocates the line in L1 (timing only)."""
        _, result = self._fetch_into_l1(core, addr & self._line_mask)
        return result

    def _fetch_into_l1(
        self, core: int, base: int
    ) -> Tuple[CacheLine, AccessResult]:
        result = AccessResult(latency=self._lat_l1, hit_level="l1")
        resident = self._l1[core].lookup(base)
        if resident is not None:
            return resident, result

        line = self._l2[core].remove(base)
        if line is not None:
            result.latency += self._lat_l2
            result.hit_level = "l2"
        else:
            result.latency += self._lat_l2
            line = self._l3.remove(base)
            if line is not None:
                result.latency += self._lat_l3
                result.hit_level = "l3"
            else:
                result.latency += self._lat_l3 + self._lat_pm
                result.hit_level = "pm"
                line = CacheLine(base)

        victim = self._l1[core].insert(line)
        if victim is not None:
            self._demote_to_l2(core, victim, result)
        return line, result

    def _demote_to_l2(self, core: int, line: CacheLine, result: AccessResult) -> None:
        victim = self._l2[core].insert(line)
        if victim is not None:
            self._demote_to_l3(victim, result)

    def _demote_to_l3(self, line: CacheLine, result: AccessResult) -> None:
        victim = self._l3.insert(line)
        if victim is not None and victim.dirty:
            result.writebacks.append((victim.base, victim.clean()))

    # ------------------------------------------------------------------
    # Design-driven flushes
    # ------------------------------------------------------------------
    def writeback_line(self, core: int, base: int) -> Optional[Dict[int, int]]:
        """Write back (but keep resident) the dirty words of one line.

        Merges dirty words across levels with L1 taking priority, clears
        all dirty state for the line and returns the merged words, or
        ``None`` if the line is clean/absent everywhere.
        """
        merged: Dict[int, int] = {}
        l3_line = self._l3.probe(base)
        if l3_line is not None and l3_line.dirty:
            merged.update(l3_line.clean())
        l2_line = self._l2[core].probe(base)
        if l2_line is not None and l2_line.dirty:
            merged.update(l2_line.clean())
        l1_line = self._l1[core].probe(base)
        if l1_line is not None and l1_line.dirty:
            merged.update(l1_line.clean())
        return merged or None

    def is_dirty_in_l1(self, core: int, base: int) -> bool:
        line = self._l1[core].probe(base)
        return line is not None and line.dirty

    def drop_all(self) -> None:
        """Discard every cached line (a crash: caches are volatile)."""
        self.__init__(self.config, self.stats)
