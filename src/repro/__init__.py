"""Reproduction of *Silo: Speculative Hardware Logging for Atomic
Durability in Persistent Memory* (Zhang & Hua, HPCA 2023).

Public API quick tour::

    from repro import SystemConfig, run_trace, synthetic_trace, SyntheticTraceConfig

    trace = synthetic_trace(SyntheticTraceConfig(transactions_per_thread=100))
    result = run_trace(trace, scheme="silo", config=SystemConfig.table2(cores=1))
    print(result.throughput_tx_per_sec, result.media_writes)

Workloads live in :mod:`repro.workloads`, the per-figure experiment
drivers in :mod:`repro.harness`, and the Silo design itself in
:mod:`repro.core`.
"""

from repro.common.config import (
    CacheConfig,
    LogBufferConfig,
    MemoryControllerConfig,
    PMConfig,
    SystemConfig,
)
from repro.common.stats import Stats
from repro.core.silo import SiloScheme
from repro.designs import (
    BaseScheme,
    FWBScheme,
    LADScheme,
    LoggingScheme,
    MorLogScheme,
    ProteusScheme,
    ReDUScheme,
    SchemeRegistry,
    SoftwareLogScheme,
    WrAPScheme,
)
from repro.sim import (
    CrashPlan,
    RunResult,
    System,
    TransactionEngine,
    check_atomic_durability,
    expected_image,
    run_trace,
)
from repro.trace import (
    Load,
    Store,
    SyntheticTraceConfig,
    ThreadTrace,
    Trace,
    Transaction,
    synthetic_trace,
)

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "LogBufferConfig",
    "MemoryControllerConfig",
    "PMConfig",
    "SystemConfig",
    "Stats",
    "SiloScheme",
    "BaseScheme",
    "FWBScheme",
    "LADScheme",
    "LoggingScheme",
    "MorLogScheme",
    "ProteusScheme",
    "ReDUScheme",
    "SoftwareLogScheme",
    "WrAPScheme",
    "SchemeRegistry",
    "CrashPlan",
    "RunResult",
    "System",
    "TransactionEngine",
    "check_atomic_durability",
    "expected_image",
    "run_trace",
    "Load",
    "Store",
    "SyntheticTraceConfig",
    "ThreadTrace",
    "Trace",
    "Transaction",
    "synthetic_trace",
    "__version__",
]
