"""Physical-address helpers.

All addresses in the simulator are plain byte addresses.  Words are
8-byte aligned, cachelines 64-byte aligned and on-PM buffer lines
256-byte aligned (see :mod:`repro.common.constants`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping

from repro.common.constants import LINE_SIZE, ONPM_LINE_SIZE, WORD_SIZE
from repro.common.errors import AddressError


def word_addr(addr: int) -> int:
    """Round ``addr`` down to its containing word."""
    return addr & ~(WORD_SIZE - 1)


def check_word_aligned(addr: int) -> int:
    """Validate that ``addr`` is a non-negative word-aligned address."""
    if addr < 0:
        raise AddressError(f"negative address {addr:#x}")
    if addr % WORD_SIZE:
        raise AddressError(f"address {addr:#x} is not {WORD_SIZE}-byte aligned")
    return addr


def line_addr(addr: int, line_size: int = LINE_SIZE) -> int:
    """Round ``addr`` down to its containing cacheline."""
    return addr & ~(line_size - 1)


def line_offset(addr: int, line_size: int = LINE_SIZE) -> int:
    """Byte offset of ``addr`` inside its cacheline."""
    return addr & (line_size - 1)


def onpm_line_addr(addr: int) -> int:
    """Round ``addr`` down to its containing on-PM buffer line."""
    return addr & ~(ONPM_LINE_SIZE - 1)


def words_of_line(base: int, line_size: int = LINE_SIZE) -> Iterator[int]:
    """Yield the word addresses covered by the line at ``base``."""
    return iter(range(base, base + line_size, WORD_SIZE))


def split_words_by_line(
    words: Mapping[int, int], line_size: int = LINE_SIZE
) -> Dict[int, Dict[int, int]]:
    """Group a ``{word_addr: value}`` mapping by containing line."""
    grouped: Dict[int, Dict[int, int]] = {}
    mask = ~(line_size - 1)
    for addr, value in words.items():
        grouped.setdefault(addr & mask, {})[addr] = value
    return grouped


def distinct_lines(addrs: Iterable[int], line_size: int = LINE_SIZE) -> int:
    """Count the distinct lines covering the given byte addresses."""
    mask = ~(line_size - 1)
    return len({a & mask for a in addrs})
