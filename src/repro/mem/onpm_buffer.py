"""The internal write-coalescing buffer of the PM DIMM (Section III-E).

Every write request that the memory controller sends to the DIMM lands
here first.  The buffer holds 256-byte lines; words destined for the
same buffer line coalesce (cases 1-3 of Fig. 9) and are written to the
physical media as a single read-modify-write when the line is evicted
or drained.  The buffer sits inside the ADR persistent domain, so its
contents survive a crash (they are drained, not lost).

Coalescing correctness relies on arrival order: later words overwrite
earlier words at the same address, matching the in-order flush of new
data from the log buffer (Fig. 9, case 1).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Mapping, Optional

from repro.common.constants import ONPM_LINE_SIZE
from repro.common.stats import Stats
from repro.mem.media import PMMedia


class OnPMBuffer:
    """LRU write-combining buffer in front of :class:`PMMedia`."""

    def __init__(
        self,
        media: PMMedia,
        lines: int = 64,
        line_size: int = ONPM_LINE_SIZE,
        stats: Optional[Stats] = None,
        obs=None,
    ) -> None:
        self._media = media
        self._capacity = lines
        self._line_size = line_size
        self._line_mask = ~(line_size - 1)
        self._lines: "OrderedDict[int, Dict[int, int]]" = OrderedDict()
        self.stats = stats if stats is not None else media.stats
        self._obs = obs

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def write_words(self, words: Mapping[int, int], write_through: bool = False) -> int:
        """Accept one write request (a set of word updates).

        The request may span several buffer lines (e.g. a 64-byte
        cacheline never does, but a batch of overflowed log entries
        might straddle a boundary).  Returns the number of 64-byte
        media sectors actually written by the evictions this request
        forced, which the memory controller uses to charge media
        bandwidth (post-coalescing, post-DCW traffic only).

        ``write_through`` models an explicit persist (``clwb``-style
        forced flush, as the log and per-store data flushes of the
        conventional designs are): the touched buffer lines are pushed
        to the media immediately instead of lingering for coalescing.
        """
        counters = self.stats.counters
        counters["onpm.requests"] += 1
        lines = self._lines
        mask = self._line_mask
        if write_through and not lines:
            # Fast path: a forced flush against an empty buffer (the
            # steady state of the write-through designs, which push
            # every touched line out immediately).  The request's words
            # group by line and go straight to the media — no resident
            # line can coalesce with them and no eviction can trigger,
            # so the LRU structure needn't be touched at all.  Counter
            # semantics match the general path exactly: words beyond
            # the first on a line count as coalesced, and each line
            # written counts as an eviction.
            groups: Dict[int, Dict[int, int]] = {}
            for addr, value in words.items():
                base = addr & mask
                pending = groups.get(base)
                if pending is None:
                    groups[base] = {addr: value}
                else:
                    pending[addr] = value
            coalesced = len(words) - len(groups)
            if coalesced:
                counters["onpm.coalesced_words"] += coalesced
            sectors = 0
            media_write = self._media.write_line
            obs = self._obs
            for pending in groups.values():
                counters["onpm.line_evictions"] += 1
                if obs is not None:
                    obs.onpm_evict(len(pending))
                sectors += media_write(pending)
            return sectors
        capacity = self._capacity
        sectors = 0
        coalesced = 0
        lines_get = lines.get
        move_to_end = lines.move_to_end
        if write_through:
            touched = set()
            touch = touched.add
            for addr, value in words.items():
                base = addr & mask
                pending = lines_get(base)
                if pending is None:
                    if len(lines) >= capacity:
                        sectors += self._evict_lru()
                    lines[base] = {addr: value}
                else:
                    move_to_end(base)
                    coalesced += 1
                    pending[addr] = value
                touch(base)
        else:
            for addr, value in words.items():
                base = addr & mask
                pending = lines_get(base)
                if pending is None:
                    if len(lines) >= capacity:
                        sectors += self._evict_lru()
                    lines[base] = {addr: value}
                else:
                    move_to_end(base)
                    coalesced += 1
                    pending[addr] = value
        if coalesced:
            counters["onpm.coalesced_words"] += coalesced
        if write_through:
            for base in touched:
                pending = lines.pop(base, None)
                if pending is not None:
                    sectors += self._write_to_media(base, pending)
        return sectors

    def _evict_lru(self) -> int:
        base, pending = self._lines.popitem(last=False)
        return self._write_to_media(base, pending)

    def _write_to_media(self, base: int, pending: Dict[int, int]) -> int:
        self.stats.counters["onpm.line_evictions"] += 1
        obs = self._obs
        if obs is not None:
            obs.onpm_evict(len(pending))
        return self._media.write_line(pending)

    # ------------------------------------------------------------------
    # Drain / crash behaviour
    # ------------------------------------------------------------------
    def drain(self) -> int:
        """Flush every resident line to the media (ADR drain on crash,
        or end-of-run accounting).  Returns the number of lines drained.
        """
        drained = 0
        while self._lines:
            base, pending = self._lines.popitem(last=False)
            self._write_to_media(base, pending)
            drained += 1
        return drained

    # ------------------------------------------------------------------
    # Reads must observe pending data for functional correctness.
    # ------------------------------------------------------------------
    def read_word(self, addr: int) -> int:
        base = addr & self._line_mask
        pending = self._lines.get(base)
        if pending is not None and addr in pending:
            return pending[addr]
        return self._media.read_word(addr)

    @property
    def resident_lines(self) -> int:
        return len(self._lines)

    @property
    def capacity(self) -> int:
        return self._capacity
