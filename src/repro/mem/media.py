"""The PM physical media (phase-change memory) with data-comparison-write.

The media is a word-granular image.  Writes arrive as groups of words
belonging to one media line; a group only counts as a *media write* if
at least one word actually changes value.  This models the bit-level
write-reduction schemes (data-comparison-write, Zhou et al. ISCA'09)
that the paper relies on in Sections III-D and III-E: redundant
overwrites of unchanged words never reach the physical cells.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.common.constants import ONPM_LINE_SIZE, WORD_SIZE
from repro.common.stats import Stats


class PMMedia:
    """Word-addressable persistent media image with write accounting."""

    def __init__(self, stats: Optional[Stats] = None) -> None:
        self._words: Dict[int, int] = {}
        self.stats = stats if stats is not None else Stats()
        #: Writes per 64-byte sector (sector index = addr >> 6): the
        #: wear profile that determines PM lifetime (PCM endurance is
        #: per-cell; Section I motivates Silo with exactly this).
        self._sector_wear: Dict[int, int] = {}
        #: The live counter mapping, hoisted once (stable for life).
        self._counters = self.stats.counters
        #: Word addresses carrying an uncorrectable media bit error
        #: (the device's ECC *detects* the error on read — modelled as
        #: a poison set — but cannot correct it).  Empty on the clean
        #: path; every consumer guards on truthiness so the hot write
        #: path pays one falsy check at most.
        self._poisoned: Set[int] = set()
        self._poison_healed: int = 0

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read_word(self, addr: int) -> int:
        """Return the persisted 64-bit value at word address ``addr``."""
        return self._words.get(addr, 0)

    def read_words(self, addrs: Iterable[int]) -> Dict[int, int]:
        return {a: self._words.get(a, 0) for a in addrs}

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def write_line(self, words: Mapping[int, int]) -> int:
        """Apply one line-grouped batch of word writes.

        Media writes are counted at 64-byte sector granularity: each
        distinct 64-byte sector containing at least one *changed* word
        costs one media write.  A fully redundant batch costs nothing
        (data-comparison-write).  Returns the number of sectors written.
        """
        if self._poisoned:
            poisoned = self._poisoned
            for addr in words:
                if addr in poisoned:
                    # Overwriting a poisoned cell re-programs it: the
                    # error is healed and the new data is authoritative.
                    # Dropping the corrupt value first keeps the
                    # data-comparison-write below from comparing against
                    # garbage and skipping the re-program.
                    poisoned.discard(addr)
                    self._words.pop(addr, None)
                    self._poison_healed += 1
        image = self._words
        image_get = image.get
        changed_sectors = set()
        changed = changed_sectors.add
        changed_words = 0
        for addr, value in words.items():
            if image_get(addr, 0) != value:
                image[addr] = value
                changed_words += 1
                changed(addr >> 6)
        counters = self._counters
        if changed_words:
            sectors = len(changed_sectors)
            counters["media.line_writes"] += 1
            counters["media.sector_writes"] += sectors
            counters["media.word_writes"] += changed_words
            wear = self._sector_wear
            for sector in changed_sectors:
                wear[sector] = wear.get(sector, 0) + 1
            return sectors
        counters["media.redundant_line_writes"] += 1
        return 0

    def load_image(self, image: Mapping[int, int]) -> None:
        """Install initial data without write accounting (setup phase)."""
        self._words.update(image)

    def wear_profile(self) -> Dict[int, int]:
        """Writes per 64-byte sector: ``{sector_addr: writes}``."""
        return {sector << 6: count for sector, count in self._sector_wear.items()}

    # ------------------------------------------------------------------
    # Fault injection (repro.faults)
    # ------------------------------------------------------------------
    def inject_bitflip(self, addr: int, bit: int) -> int:
        """Flip one bit of the persisted word at ``addr`` and mark the
        cell poisoned (the device ECC will flag the word as an
        uncorrectable error on the next read).  Returns the corrupted
        value now on media."""
        if not 0 <= bit < 64:
            raise ValueError(f"bit index {bit} outside a 64-bit word")
        value = self._words.get(addr, 0) ^ (1 << bit)
        self._words[addr] = value
        self._poisoned.add(addr)
        self._counters["media.bitflips_injected"] += 1
        return value

    def poisoned_addrs(self) -> List[int]:
        """Word addresses whose cells still hold an unhealed media
        error (deterministic order for reporting)."""
        return sorted(self._poisoned)

    @property
    def poison_healed(self) -> int:
        """Poisoned cells re-programmed (and thereby healed) by later
        writes."""
        return self._poison_healed

    def word_addresses(self) -> List[int]:
        """Every word address holding a non-zero value, sorted — the
        population the fault injector draws media bit-flips from."""
        return sorted(a for a, v in self._words.items() if v != 0)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[int, int]:
        """A copy of the current image (non-zero words only)."""
        return {a: v for a, v in self._words.items() if v != 0}

    def nonzero_words(self) -> int:
        return sum(1 for v in self._words.values() if v != 0)

    def lines_touched(self) -> int:
        """Distinct on-PM lines holding any non-zero word."""
        mask = ~(ONPM_LINE_SIZE - 1)
        return len({a & mask for a, v in self._words.items() if v != 0})

    def diff(self, other: "PMMedia") -> Dict[int, Tuple[int, int]]:
        """Word-level differences ``{addr: (self_value, other_value)}``."""
        addrs = set(self._words) | set(other._words)
        out: Dict[int, Tuple[int, int]] = {}
        for a in addrs:
            mine, theirs = self._words.get(a, 0), other._words.get(a, 0)
            if mine != theirs:
                out[a] = (mine, theirs)
        return out

    def __contains__(self, addr: int) -> bool:
        return (addr & ~(WORD_SIZE - 1)) in self._words
