"""The complete PM device: region layout, on-PM buffer and media.

The physical address space is split into a *data region* (application
heap) and a *log region* with one private log area per hardware thread
(the distributed log scheme of Section III-B, avoiding cross-thread
contention on log writes).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.common.config import PMConfig
from repro.common.errors import AddressError, ConfigError
from repro.common.stats import Stats
from repro.mem.media import PMMedia
from repro.mem.onpm_buffer import OnPMBuffer


class RegionLayout:
    """Static partition of the PM physical address space."""

    def __init__(
        self,
        data_base: int = 0x0,
        data_size: int = 8 << 30,
        log_base: Optional[int] = None,
        per_thread_log_size: int = 64 << 20,
        threads: int = 8,
    ) -> None:
        if threads <= 0:
            raise ConfigError("need at least one thread log area")
        self.data_base = data_base
        self.data_size = data_size
        self.log_base = log_base if log_base is not None else data_base + data_size
        if self.log_base < data_base + data_size:
            raise ConfigError("log region overlaps the data region")
        self.per_thread_log_size = per_thread_log_size
        self.threads = threads

    def thread_log_area(self, tid: int) -> Tuple[int, int]:
        """``(base, size)`` of thread ``tid``'s private log area."""
        if not 0 <= tid < self.threads:
            raise AddressError(f"thread id {tid} outside layout ({self.threads})")
        return self.log_base + tid * self.per_thread_log_size, self.per_thread_log_size

    def in_data_region(self, addr: int) -> bool:
        return self.data_base <= addr < self.data_base + self.data_size

    def in_log_region(self, addr: int) -> bool:
        end = self.log_base + self.threads * self.per_thread_log_size
        return self.log_base <= addr < end


class PMDevice:
    """PM DIMM: write requests pass through the on-PM buffer to media.

    Requests are tagged with a traffic ``kind`` (``data``, ``log`` or
    ``meta``) so experiments can break down write traffic by source.
    """

    def __init__(
        self,
        config: Optional[PMConfig] = None,
        layout: Optional[RegionLayout] = None,
        stats: Optional[Stats] = None,
        obs=None,
    ) -> None:
        self.config = config if config is not None else PMConfig()
        self.stats = stats if stats is not None else Stats()
        self.layout = layout if layout is not None else RegionLayout()
        self._obs = obs
        self.media = PMMedia(self.stats)
        self.buffer = OnPMBuffer(
            self.media,
            lines=self.config.onpm_buffer_lines,
            line_size=self.config.onpm_line_size,
            stats=self.stats,
            obs=obs,
        )
        #: Precomputed per-kind counter names (hot path: no f-strings).
        #: Kind names are normalized here exactly as at the MC boundary
        #: (dots become underscores) so the two families stay parallel.
        self._kind_keys: Dict[str, Tuple[str, str]] = {}
        #: The live counter mapping, hoisted once (stable for life).
        self._counters = self.stats.counters

    def rebind_stats(self, stats: Stats) -> None:
        """Move this device (media and on-PM buffer included) onto
        ``stats``, folding any counters already accumulated into it.

        The memory controller calls this when it is constructed with a
        registry distinct from the device's, so one run can never split
        ``mc.*`` and ``media.*`` counters across two registries.
        """
        if stats is self.stats:
            return
        stats.merge(self.stats)
        self.stats = stats
        self._counters = stats.counters
        self.media.stats = stats
        self.media._counters = stats.counters
        self.buffer.stats = stats

    # ------------------------------------------------------------------
    # MC-facing interface
    # ------------------------------------------------------------------
    def write_request(
        self,
        words: Mapping[int, int],
        kind: str = "data",
        write_through: bool = False,
    ) -> int:
        """Accept one write request from the memory controller.

        Returns the number of 64-byte media sectors the request's
        buffer evictions actually wrote (the memory controller charges
        media bandwidth for them).  ``write_through`` marks an explicit
        forced flush that may not linger in the on-PM buffer.
        """
        if not words:
            return 0
        keys = self._kind_keys.get(kind)
        if keys is None:
            safe = kind.replace(".", "_")
            keys = self._kind_keys.setdefault(
                kind, (f"pm.requests.{safe}", f"pm.request_bytes.{safe}")
            )
        counters = self._counters
        counters[keys[0]] += 1
        counters[keys[1]] += 8 * len(words)
        buffer = self.buffer
        if write_through and not buffer._lines:
            # Fused fast path for the dominant request shape of the
            # write-through designs: a forced flush against an empty
            # buffer whose words all land on one buffer line (any
            # aligned <=64 B request does).  It can neither coalesce
            # with resident data nor trigger an eviction, so it goes
            # straight to the media; counter semantics are identical to
            # OnPMBuffer.write_words (words beyond the first on the
            # line count as coalesced, the line write as an eviction).
            mask = buffer._line_mask
            base = -1
            for addr in words:
                line = addr & mask
                if base < 0:
                    base = line
                elif line != base:
                    break
            else:
                counters["onpm.requests"] += 1
                extra = len(words) - 1
                if extra:
                    counters["onpm.coalesced_words"] += extra
                counters["onpm.line_evictions"] += 1
                obs = self._obs
                if obs is not None:
                    obs.onpm_evict(len(words))
                # PMMedia.write_line (the reference implementation of
                # this loop), inlined: data-comparison-write against
                # the image, 64 B-sector write accounting and wear.
                media = self.media
                if media._poisoned:
                    poisoned = media._poisoned
                    for addr in words:
                        if addr in poisoned:
                            poisoned.discard(addr)
                            media._words.pop(addr, None)
                            media._poison_healed += 1
                image = media._words
                image_get = image.get
                changed_sectors = None
                changed_words = 0
                for addr, value in words.items():
                    if image_get(addr, 0) != value:
                        image[addr] = value
                        changed_words += 1
                        sector = addr >> 6
                        if changed_sectors is None:
                            changed_sectors = {sector}
                        else:
                            changed_sectors.add(sector)
                if changed_words:
                    sectors = len(changed_sectors)
                    counters["media.line_writes"] += 1
                    counters["media.sector_writes"] += sectors
                    counters["media.word_writes"] += changed_words
                    wear = media._sector_wear
                    for sector in changed_sectors:
                        wear[sector] = wear.get(sector, 0) + 1
                    return sectors
                counters["media.redundant_line_writes"] += 1
                return 0
        return buffer.write_words(words, write_through=write_through)

    def read_word(self, addr: int) -> int:
        """Read one word, observing data pending in the on-PM buffer."""
        self.stats.add("pm.reads")
        return self.buffer.read_word(addr)

    def read_words(self, addrs: Iterable[int]) -> Dict[int, int]:
        return {a: self.buffer.read_word(a) for a in addrs}

    # ------------------------------------------------------------------
    # Crash / accounting
    # ------------------------------------------------------------------
    def drain(self) -> int:
        """Drain the on-PM buffer to media (ADR guarantees this on a
        crash; experiments also call it before reading final traffic).
        """
        return self.buffer.drain()

    @property
    def media_line_writes(self) -> int:
        return int(self.stats.get("media.line_writes"))

    @property
    def media_writes(self) -> int:
        """Media writes at 64-byte sector granularity (the Fig. 11
        metric: write requests reaching the PM physical media)."""
        return int(self.stats.get("media.sector_writes"))
