"""Persistent-memory device model: media, on-PM buffer, address utils."""

from repro.mem.address import (
    line_addr,
    line_offset,
    onpm_line_addr,
    split_words_by_line,
    word_addr,
    words_of_line,
)
from repro.mem.media import PMMedia
from repro.mem.onpm_buffer import OnPMBuffer
from repro.mem.pm import PMDevice, RegionLayout

__all__ = [
    "line_addr",
    "line_offset",
    "onpm_line_addr",
    "split_words_by_line",
    "word_addr",
    "words_of_line",
    "PMMedia",
    "OnPMBuffer",
    "PMDevice",
    "RegionLayout",
]
