"""The per-core battery-backed log buffer (Sections III-B to III-D).

A small FIFO of log entries, one transaction at a time, with a 64-bit
hardware comparator beside every entry.  The comparators provide two
parallel (sub-nanosecond) search operations:

* *merge search* — match an incoming entry's word address against every
  resident entry (log merging, Fig. 7);
* *eviction search* — match an evicted cacheline's line address against
  the line address of every resident entry to set flush-bits
  (Section III-D).

The buffer is persistent: a small battery guarantees its contents can
be flushed to the PM log region on a crash (Section III-G, Table I).
"""

from __future__ import annotations

from collections import OrderedDict
from enum import Enum
from typing import Iterable, List, Optional

from repro.common.config import LogBufferConfig
from repro.common.errors import SimulationError
from repro.common.stats import Stats
from repro.hwlog.entry import LogEntry


class AppendResult(Enum):
    """Outcome of offering a new entry to the buffer."""

    APPENDED = "appended"
    MERGED = "merged"
    #: The buffer was full: the caller must evict before re-offering.
    FULL = "full"


class LogBuffer:
    """Bounded FIFO of :class:`LogEntry` with parallel comparators."""

    def __init__(
        self,
        config: Optional[LogBufferConfig] = None,
        stats: Optional[Stats] = None,
        name: str = "logbuf",
        merging: bool = True,
        obs=None,
        core: int = -1,
    ) -> None:
        self.config = config if config is not None else LogBufferConfig()
        self.stats = stats if stats is not None else Stats()
        self.name = name
        self._obs = obs
        self._core = core
        #: Log merging (Fig. 7); disable only for ablations.
        self.merging = merging
        #: FIFO order preserved; keyed by word address because merging
        #: guarantees at most one resident entry per word.  With
        #: merging disabled (ablation), every store appends a distinct
        #: entry under a synthetic sequence key.
        self._entries: "OrderedDict[object, LogEntry]" = OrderedDict()
        self._seq = 0
        # Precomputed counter names: offer() runs once per store.
        self._k_merged = f"{name}.merged"
        self._k_appended = f"{name}.appended"
        self._k_peak = f"{name}.peak_occupancy"
        self._k_flush_bits = f"{name}.flush_bits_set"

    # ------------------------------------------------------------------
    # Append / merge (Fig. 7)
    # ------------------------------------------------------------------
    def offer(self, entry: LogEntry) -> AppendResult:
        """Offer a new entry; merge if a comparator matches its word."""
        counters = self.stats.counters
        if self.merging:
            existing = self._entries.get(entry.addr)
            if existing is not None:
                if existing.id_tuple() != entry.id_tuple():
                    raise SimulationError(
                        "log merging must not cross transactions "
                        f"({existing.id_tuple()} vs {entry.id_tuple()})"
                    )
                existing.merge_new(entry.new)
                counters[self._k_merged] += 1
                obs = self._obs
                if obs is not None:
                    obs.logbuf_offer(self._core, "merged", len(self._entries))
                return AppendResult.MERGED
            key: object = entry.addr
        else:
            key = ("seq", self._seq)
            self._seq += 1
        occupancy = len(self._entries)
        if occupancy >= self.config.entries:
            return AppendResult.FULL
        self._entries[key] = entry
        counters[self._k_appended] += 1
        # Stats.max(), inlined (occupancy is always >= 1 here).
        if occupancy + 1 > counters.get(self._k_peak, 0):
            counters[self._k_peak] = occupancy + 1
        obs = self._obs
        if obs is not None:
            obs.logbuf_offer(self._core, "appended", occupancy + 1)
        return AppendResult.APPENDED

    # ------------------------------------------------------------------
    # Flush-bit maintenance (Section III-D)
    # ------------------------------------------------------------------
    def mark_line_flushed(self, line_addr: int) -> int:
        """Set the flush-bit of every entry recording a word of the
        line at ``line_addr``, regardless of which words the writeback
        carried.  All comparators fire in parallel; returns the number
        marked.

        This is the coarse line-granular search; the eviction path must
        use :meth:`mark_words_flushed` instead, because a falsely
        shared line can leave words of *other* cores' entries dirty in
        their private caches — those words never reached PM, so their
        flush-bits must stay clear."""
        marked = 0
        for entry in self._entries.values():
            if entry.line_addr == line_addr and not entry.flush_bit:
                entry.flush_bit = True
                marked += 1
        if marked:
            self.stats.counters[self._k_flush_bits] += marked
        return marked

    def mark_words_flushed(self, words: Iterable[int]) -> int:
        """Set the flush-bit of every entry whose word is among the
        written-back ``words`` (an iterable/mapping of word addresses).

        Word-granular variant of the eviction search (Section III-D):
        only the words a writeback actually carried are durable, so
        only their entries may skip the in-place flush at commit.
        Returns the number of entries marked."""
        marked = 0
        if self.merging:
            # Merging keys the buffer by word address: each comparator
            # match is a direct lookup.
            entries = self._entries
            for addr in words:
                entry = entries.get(addr)
                if entry is not None and not entry.flush_bit:
                    entry.flush_bit = True
                    marked += 1
        else:
            lookup = set(words)
            for entry in self._entries.values():
                if entry.addr in lookup and not entry.flush_bit:
                    entry.flush_bit = True
                    marked += 1
        if marked:
            self.stats.counters[self._k_flush_bits] += marked
        return marked

    # ------------------------------------------------------------------
    # Eviction (overflow, Section III-F) and commit
    # ------------------------------------------------------------------
    def pop_oldest(self, count: int) -> List[LogEntry]:
        """Remove and return up to ``count`` oldest entries (FIFO)."""
        out: List[LogEntry] = []
        for _ in range(min(count, len(self._entries))):
            _, entry = self._entries.popitem(last=False)
            out.append(entry)
        return out

    def remove(self, addr: int) -> Optional[LogEntry]:
        """Remove and return the entry recording word ``addr``, if any
        (used by designs that flush a line's logs at eviction time)."""
        if self.merging:
            return self._entries.pop(addr, None)
        for key, entry in self._entries.items():
            if entry.addr == addr:
                del self._entries[key]
                return entry
        return None

    def drain(self) -> List[LogEntry]:
        """Remove and return every entry in FIFO order (commit path)."""
        entries = list(self._entries.values())
        self._entries.clear()
        return entries

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def entries(self) -> Iterable[LogEntry]:
        return self._entries.values()

    def find(self, addr: int) -> Optional[LogEntry]:
        if self.merging:
            return self._entries.get(addr)
        for entry in self._entries.values():
            if entry.addr == addr:
                return entry
        return None

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.config.entries

    def __len__(self) -> int:
        return len(self._entries)
