"""The PM log region: one private, circular log area per thread.

The distributed log scheme of Section III-B avoids cross-thread
contention: each thread appends to its own area, tracked by head/tail
registers in the core (Table I).

Functional split.  For *media traffic* the region serializes entries
into word writes at their assigned physical addresses (the packing
policy — one entry per 64 B line for naive designs, two for MorLog,
fourteen undo entries per 256 B on-PM line for Silo overflow batches —
is what differentiates the designs' log write volume).  For *recovery*
the region keeps an authoritative structured record of every persisted
entry; an entry is recoverable if and only if it was actually flushed
before the crash, which preserves crash semantics exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.common.constants import WORD_MASK, WORD_SIZE
from repro.common.stats import Stats
from repro.hwlog.entry import LogEntry
from repro.mem.pm import RegionLayout


@dataclass(frozen=True)
class PersistedLog:
    """A log entry as it exists in the PM log region after a flush."""

    tid: int
    txid: int
    addr: int
    old: int
    new: int
    flush_bit: bool
    #: ``"undo"``, ``"redo"`` or ``"undo_redo"`` — which data words were
    #: actually written to the region.
    kind: str

    def id_tuple(self) -> Tuple[int, int]:
        return (self.tid, self.txid)


@dataclass(frozen=True)
class CommitTuple:
    """The (tid, txid) tuple identifying a committed transaction
    (Section III-G, Fig. 10f)."""

    tid: int
    txid: int


_KIND_SIZES = {
    "undo": LogEntry.UNDO_SIZE,
    "redo": LogEntry.UNDO_SIZE,  # metadata + one data word
    "undo_redo": LogEntry.UNDO_REDO_SIZE,
}


class LogRegion:
    """Per-thread log areas with append cursors and recovery records."""

    def __init__(
        self, layout: RegionLayout, stats: Optional[Stats] = None
    ) -> None:
        self.layout = layout
        self.stats = stats if stats is not None else Stats()
        self._cursor: Dict[int, int] = {}
        self._records: Dict[int, List[PersistedLog]] = {}
        self._commit_tuples: Set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------
    def persist_entries(
        self,
        tid: int,
        entries: Iterable[LogEntry],
        kind: str,
        per_request: int = 1,
        request_span: int = 64,
    ) -> List[Dict[int, int]]:
        """Serialize ``entries`` into the thread's log area.

        ``per_request`` entries are packed into each write request of at
        most ``request_span`` bytes.  Returns the word-write batches to
        submit to the memory controller; the structured records become
        recoverable immediately (callers submit the requests in the
        same step, and crash injection happens at step boundaries).
        """
        size = _KIND_SIZES[kind]
        requests: List[Dict[int, int]] = []
        batch: List[LogEntry] = []
        count = 0
        for entry in entries:
            batch.append(entry)
            count += 1
            if len(batch) == per_request:
                requests.append(
                    self._serialize(tid, batch, size, request_span, kind)
                )
                batch = []
        if batch:
            requests.append(self._serialize(tid, batch, size, request_span, kind))
        self.stats.add("region.requests", len(requests))
        self.stats.add(f"region.entries.{kind}", count)
        return requests

    def _serialize(
        self, tid: int, batch: List[LogEntry], size: int, span: int, kind: str
    ) -> Dict[int, int]:
        """Assign addresses to one request's entries, record them as
        recoverable and pack their words."""
        base, area = self.layout.thread_log_area(tid)
        records = self._records.setdefault(tid, [])
        cursor = self._cursor.get(tid, 0)
        # Every request is a dedicated line write: it starts on a fresh
        # span boundary (hardware flushes whole aligned bursts rather
        # than read-modify-writing a previously flushed log line).
        if cursor % span:
            cursor += span - cursor % span
        words: Dict[int, int] = {}
        for entry in batch:
            addr = base + (cursor % area)
            entry.log_addr = addr
            payload = self._pack(entry)
            start = addr & ~(WORD_SIZE - 1)
            end = addr + size
            for i, word in enumerate(range(start, end, WORD_SIZE)):
                words[word] = (payload + i) & WORD_MASK
            cursor += size
            records.append(
                PersistedLog(
                    tid=entry.tid,
                    txid=entry.txid,
                    addr=entry.addr,
                    old=entry.old,
                    new=entry.new,
                    flush_bit=entry.flush_bit,
                    kind=kind,
                )
            )
        self._cursor[tid] = cursor
        return words

    @staticmethod
    def _pack(entry: LogEntry) -> int:
        """Deterministic word payload standing in for the serialized
        entry bytes (recovery uses the structured records)."""
        mixed = (
            (entry.tid << 56)
            ^ (entry.txid << 40)
            ^ entry.addr
            ^ (entry.old * 0x9E3779B97F4A7C15)
            ^ (entry.new * 0xC2B2AE3D27D4EB4F)
        )
        return (mixed | 1) & WORD_MASK

    # ------------------------------------------------------------------
    # Commit tuples
    # ------------------------------------------------------------------
    def persist_commit_tuple(self, tid: int, txid: int) -> Dict[int, int]:
        """Record a committed-transaction ID tuple; returns the word
        write for the memory controller."""
        self._commit_tuples.add((tid, txid))
        base, area = self.layout.thread_log_area(tid)
        cursor = self._cursor.get(tid, 0)
        if cursor % 64:  # the tuple is flushed as its own line write
            cursor += 64 - cursor % 64
        addr = base + (cursor % area)
        self._cursor[tid] = cursor + 2 * WORD_SIZE
        word = addr & ~(WORD_SIZE - 1)
        payload = ((tid << 16) | txid | (1 << 63)) & WORD_MASK
        return {word: payload, word + WORD_SIZE: payload ^ WORD_MASK}

    # ------------------------------------------------------------------
    # Recovery-side accessors
    # ------------------------------------------------------------------
    def logs_for_thread(self, tid: int) -> List[PersistedLog]:
        """Persisted entries of one thread in append (oldest-first) order."""
        return list(self._records.get(tid, ()))

    def all_threads(self) -> List[int]:
        return sorted(self._records)

    def is_committed(self, tid: int, txid: int) -> bool:
        return (tid, txid) in self._commit_tuples

    @property
    def commit_tuples(self) -> Set[Tuple[int, int]]:
        return set(self._commit_tuples)

    # ------------------------------------------------------------------
    # Truncation
    # ------------------------------------------------------------------
    def discard_tx(self, tid: int, txid: int) -> int:
        """Delete the persisted logs of one transaction (log truncation
        after commit / after an overflow-heavy transaction commits)."""
        records = self._records.get(tid)
        if not records:
            return 0
        kept = [r for r in records if r.txid != txid]
        removed = len(records) - len(kept)
        self._records[tid] = kept
        return removed

    def truncate_thread(self, tid: int) -> None:
        self._records.pop(tid, None)

    def truncate_all(self) -> None:
        self._records.clear()
        self._commit_tuples.clear()

    def total_persisted(self) -> int:
        return sum(len(v) for v in self._records.values())
