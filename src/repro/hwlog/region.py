"""The PM log region: one private, circular log area per thread.

The distributed log scheme of Section III-B avoids cross-thread
contention: each thread appends to its own area, tracked by head/tail
registers in the core (Table I).

Functional split.  For *media traffic* the region serializes entries
into word writes at their assigned physical addresses (the packing
policy — one entry per 64 B line for naive designs, two for MorLog,
fourteen undo entries per 256 B on-PM line for Silo overflow batches —
is what differentiates the designs' log write volume).  For *recovery*
the region keeps an authoritative structured record of every persisted
entry; an entry is recoverable if and only if it was actually flushed
before the crash, which preserves crash semantics exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.common.constants import WORD_MASK, WORD_SIZE
from repro.common.stats import Stats
from repro.hwlog.entry import LogEntry, entry_checksum
from repro.mem.pm import RegionLayout


class PersistedLog(NamedTuple):
    """A log entry as it exists in the PM log region after a flush.

    A :class:`~typing.NamedTuple` rather than a frozen dataclass: one
    record is created per persisted entry on the simulator's hottest
    path, and tuple construction avoids the ``object.__setattr__``
    per-field cost of frozen-dataclass ``__init__``.

    The trailing fields carry the device-level integrity state the
    fault injector manipulates and recovery validates; they default to
    the pristine values so pre-existing construction sites (and the
    clean-crash path) are unchanged.
    """

    tid: int
    txid: int
    addr: int
    old: int
    new: int
    flush_bit: bool
    #: ``"undo"``, ``"redo"`` or ``"undo_redo"`` — which data words were
    #: actually written to the region.
    kind: str
    #: Integrity checksum stamped by the log generator at serialization
    #: time (:func:`~repro.hwlog.entry.entry_checksum` over the ID tuple
    #: + payload words).  ``None`` marks a hand-built/legacy record that
    #: recovery treats as unchecked.
    checksum: Optional[int] = None
    #: Region-global append sequence number; orders records against the
    #: crash point so the injector can identify the in-flight window.
    seq: int = 0
    #: ``"ok"`` | ``"torn"`` | ``"dropped"`` — device-level slot state
    #: after fault injection.  Recovery must never replay a non-"ok"
    #: record.
    integrity: str = "ok"
    #: For torn entries: how many of the slot's words made it to media
    #: before power failed (the checksum word is last, so a torn entry
    #: is always detectable).
    present_words: Optional[int] = None

    def id_tuple(self) -> Tuple[int, int]:
        return (self.tid, self.txid)


@dataclass(frozen=True)
class CommitTuple:
    """The (tid, txid) tuple identifying a committed transaction
    (Section III-G, Fig. 10f)."""

    tid: int
    txid: int


_KIND_SIZES = {
    "undo": LogEntry.UNDO_SIZE,
    "redo": LogEntry.UNDO_SIZE,  # metadata + one data word
    "undo_redo": LogEntry.UNDO_REDO_SIZE,
}


class LogRegion:
    """Per-thread log areas with append cursors and recovery records."""

    def __init__(
        self, layout: RegionLayout, stats: Optional[Stats] = None
    ) -> None:
        self.layout = layout
        self.stats = stats if stats is not None else Stats()
        self._cursor: Dict[int, int] = {}
        #: ``tid -> txid -> [records]``.  Grouping by transaction makes
        #: log truncation (``discard_tx``) a dict pop instead of a scan
        #: of every record the thread ever persisted — the designs that
        #: truncate hundreds of transactions at finalize were spending
        #: O(records²) there.  Iteration order (txid first-append order,
        #: then append order within the transaction) matches the flat
        #: append order because a thread's transactions are serial.
        self._records: Dict[int, Dict[int, List[PersistedLog]]] = {}
        self._commit_tuples: Set[Tuple[int, int]] = set()
        #: Commit tuples whose media slot was torn or dropped by fault
        #: injection: ``(tid, txid) -> reason``.  The complement-word
        #: encoding of :meth:`persist_commit_tuple` makes a damaged
        #: tuple always detectable, so recovery demotes the transaction
        #: to uncommitted and reports it here instead of replaying.
        self._corrupt_tuples: Dict[Tuple[int, int], str] = {}
        #: Region-global append sequence.  Stamped on every persisted
        #: record and commit tuple; pure bookkeeping (no timing effect).
        self._seq: int = 0
        self._tuple_seq: Dict[Tuple[int, int], int] = {}
        #: Sequence number at the moment the crash drain began; records
        #: stamped at or after it were in the volatile WPQ/log-buffer
        #: pipeline when power failed.  ``None`` until a crash happens.
        self._crash_seq: Optional[int] = None
        #: Precomputed per-kind counter names (persist_entries runs
        #: once per store for the log-writing designs).
        self._kind_keys: Dict[str, str] = {
            kind: f"region.entries.{kind}" for kind in _KIND_SIZES
        }
        #: ``tid -> (base, size)`` memo of ``layout.thread_log_area``
        #: (bounds-checked address arithmetic, invariant per thread).
        self._area_cache: Dict[int, Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------
    def persist_entries(
        self,
        tid: int,
        entries: Iterable[LogEntry],
        kind: str,
        per_request: int = 1,
        request_span: int = 64,
    ) -> List[Dict[int, int]]:
        """Serialize ``entries`` into the thread's log area.

        ``per_request`` entries are packed into each write request of at
        most ``request_span`` bytes.  Returns the word-write batches to
        submit to the memory controller; the structured records become
        recoverable immediately (callers submit the requests in the
        same step, and crash injection happens at step boundaries).
        """
        size = _KIND_SIZES[kind]
        requests: List[Dict[int, int]] = []
        if per_request == 1:
            # Dominant shape: the per-store designs persist one entry
            # per request, so skip the batching machinery.
            serialize = self._serialize_one
            for entry in entries:
                requests.append(serialize(tid, entry, size, request_span, kind))
            count = len(requests)
        else:
            batch: List[LogEntry] = []
            count = 0
            for entry in entries:
                batch.append(entry)
                count += 1
                if len(batch) == per_request:
                    requests.append(
                        self._serialize(tid, batch, size, request_span, kind)
                    )
                    batch = []
            if batch:
                requests.append(
                    self._serialize(tid, batch, size, request_span, kind)
                )
        counters = self.stats.counters
        counters["region.requests"] += len(requests)
        counters[self._kind_keys[kind]] += count
        return requests

    def persist_word_log(
        self, tid: int, txid: int, addr: int, old: int, new: int
    ) -> Dict[int, int]:
        """Persist one undo+redo entry for a single word, without an
        intermediate :class:`LogEntry`.

        The per-store flush designs (Base, FWB) build a log entry only
        to serialize it in the same step and drop it, so this fast path
        takes the raw fields directly: same cursor advance, same packed
        words and same recovery record as ``persist_entries`` with one
        ``undo_redo`` entry per 64-byte request.
        """
        old &= WORD_MASK
        new &= WORD_MASK
        cached = self._area_cache.get(tid)
        if cached is None:
            cached = self.layout.thread_log_area(tid)
            self._area_cache[tid] = cached
        base, area = cached
        cursor = self._cursor.get(tid, 0)
        rem = cursor % 64
        if rem:
            cursor += 64 - rem
        log_addr = base + (cursor % area)
        payload = (
            (tid << 56)
            ^ (txid << 40)
            ^ addr
            ^ (old * 0x9E3779B97F4A7C15)
            ^ (new * 0xC2B2AE3D27D4EB4F)
        ) | 1
        m = WORD_MASK
        # The cursor is 64-byte aligned here, so the 26-byte undo+redo
        # entry always covers exactly the first four words of its line.
        words = {
            log_addr: payload & m,
            log_addr + 8: (payload + 1) & m,
            log_addr + 16: (payload + 2) & m,
            log_addr + 24: (payload + 3) & m,
        }
        self._cursor[tid] = cursor + LogEntry.UNDO_REDO_SIZE
        by_tx = self._records.get(tid)
        if by_tx is None:
            by_tx = self._records[tid] = {}
        bucket = by_tx.get(txid)
        if bucket is None:
            bucket = by_tx[txid] = []
        seq = self._seq
        self._seq = seq + 1
        bucket.append(
            PersistedLog(
                tid, txid, addr, old, new, False, "undo_redo", payload & m, seq
            )
        )
        counters = self.stats.counters
        counters["region.requests"] += 1
        counters["region.entries.undo_redo"] += 1
        return words

    def persist_run(
        self, tid: int, entries: Sequence[LogEntry], kind: str = "redo"
    ) -> Dict[int, int]:
        """Serialize one coarse *run record*: a single request holding
        an 8-byte run header plus one 8-byte payload word per entry.

        This is the page/adaptive granularity policies' dense format —
        8+8·n bytes for an n-word cacheline run versus 16·n bytes as
        individual redo entries, so runs of two or more words write
        fewer log bytes.  Each payload word is the entry's checksum
        mix, so the structured records validate through the same
        checksum-aware recovery walk as word entries.
        """
        if not entries:
            return {}
        cached = self._area_cache.get(tid)
        if cached is None:
            cached = self.layout.thread_log_area(tid)
            self._area_cache[tid] = cached
        base, area = cached
        cursor = self._cursor.get(tid, 0)
        # Run records start on a fresh line like every other request.
        rem = cursor % 64
        if rem:
            cursor += 64 - rem
        by_tx = self._records.get(tid)
        if by_tx is None:
            by_tx = self._records[tid] = {}
        m = WORD_MASK
        first = entries[0]
        header_addr = base + (cursor % area)
        header = (
            (first.tid << 56)
            ^ (first.txid << 40)
            ^ (first.addr & -64)
            ^ (len(entries) * 0x9E3779B97F4A7C15)
        ) | 1
        words: Dict[int, int] = {header_addr: header & m}
        offset = WORD_SIZE
        last_txid: Optional[int] = None
        append = None
        for entry in entries:
            addr = base + ((cursor + offset) % area)
            entry.log_addr = addr
            if entry.txid != last_txid:
                last_txid = entry.txid
                bucket = by_tx.get(entry.txid)
                if bucket is None:
                    bucket = by_tx[entry.txid] = []
                append = bucket.append
            payload = (
                (entry.tid << 56)
                ^ (entry.txid << 40)
                ^ entry.addr
                ^ (entry.old * 0x9E3779B97F4A7C15)
                ^ (entry.new * 0xC2B2AE3D27D4EB4F)
            ) | 1
            checksum = payload & m
            words[addr] = checksum
            seq = self._seq
            self._seq = seq + 1
            append(
                PersistedLog(
                    entry.tid,
                    entry.txid,
                    entry.addr,
                    entry.old,
                    entry.new,
                    entry.flush_bit,
                    kind,
                    checksum,
                    seq,
                )
            )
            offset += WORD_SIZE
        self._cursor[tid] = cursor + offset
        counters = self.stats.counters
        counters["region.requests"] += 1
        counters[self._kind_keys[kind]] += len(entries)
        counters["region.run_records"] += 1
        counters["region.run_words"] += len(entries)
        return words

    def _serialize_one(
        self, tid: int, entry: LogEntry, size: int, span: int, kind: str
    ) -> Dict[int, int]:
        """Single-entry specialization of :meth:`_serialize` — the
        per-store logging designs run this once per transactional
        store, so the batch loop and generic word loop are flattened
        (the four-word undo+redo layout gets a literal dict)."""
        cached = self._area_cache.get(tid)
        if cached is None:
            cached = self.layout.thread_log_area(tid)
            self._area_cache[tid] = cached
        base, area = cached
        cursor = self._cursor.get(tid, 0)
        rem = cursor % span
        if rem:
            cursor += span - rem
        addr = base + (cursor % area)
        entry.log_addr = addr
        payload = (
            (entry.tid << 56)
            ^ (entry.txid << 40)
            ^ entry.addr
            ^ (entry.old * 0x9E3779B97F4A7C15)
            ^ (entry.new * 0xC2B2AE3D27D4EB4F)
        ) | 1
        checksum = payload & WORD_MASK
        start = addr & ~(WORD_SIZE - 1)
        if size == 32 and start == addr:
            m = WORD_MASK
            words = {
                addr: payload & m,
                addr + 8: (payload + 1) & m,
                addr + 16: (payload + 2) & m,
                addr + 24: (payload + 3) & m,
            }
        else:
            words = {}
            end = addr + size
            while start < end:
                words[start] = payload & WORD_MASK
                payload += 1
                start += WORD_SIZE
        self._cursor[tid] = cursor + size
        by_tx = self._records.get(tid)
        if by_tx is None:
            by_tx = self._records[tid] = {}
        bucket = by_tx.get(entry.txid)
        if bucket is None:
            bucket = by_tx[entry.txid] = []
        seq = self._seq
        self._seq = seq + 1
        bucket.append(
            PersistedLog(
                entry.tid,
                entry.txid,
                entry.addr,
                entry.old,
                entry.new,
                entry.flush_bit,
                kind,
                checksum,
                seq,
            )
        )
        return words

    def _serialize(
        self, tid: int, batch: Sequence[LogEntry], size: int, span: int, kind: str
    ) -> Dict[int, int]:
        """Assign addresses to one request's entries, record them as
        recoverable and pack their words."""
        cached = self._area_cache.get(tid)
        if cached is None:
            cached = self.layout.thread_log_area(tid)
            self._area_cache[tid] = cached
        base, area = cached
        by_tx = self._records.get(tid)
        if by_tx is None:
            by_tx = self._records[tid] = {}
        cursor = self._cursor.get(tid, 0)
        # Every request is a dedicated line write: it starts on a fresh
        # span boundary (hardware flushes whole aligned bursts rather
        # than read-modify-writing a previously flushed log line).
        if cursor % span:
            cursor += span - cursor % span
        words: Dict[int, int] = {}
        last_txid: Optional[int] = None
        append = None
        m = WORD_MASK
        for entry in batch:
            e_tid = entry.tid
            e_txid = entry.txid
            e_addr = entry.addr
            e_old = entry.old
            e_new = entry.new
            if e_txid != last_txid:
                last_txid = e_txid
                bucket = by_tx.get(e_txid)
                if bucket is None:
                    bucket = by_tx[e_txid] = []
                append = bucket.append
            addr = base + (cursor % area)
            entry.log_addr = addr
            # _pack(), inlined: one call per persisted entry adds up.
            payload = (
                (e_tid << 56)
                ^ (e_txid << 40)
                ^ e_addr
                ^ (e_old * 0x9E3779B97F4A7C15)
                ^ (e_new * 0xC2B2AE3D27D4EB4F)
            ) | 1
            checksum = payload & m
            word = addr & -8  # word-align (WORD_SIZE == 8)
            end = addr + size
            while word < end:
                words[word] = payload & m
                payload += 1
                word += 8
            cursor += size
            seq = self._seq
            self._seq = seq + 1
            append(
                PersistedLog(
                    e_tid,
                    e_txid,
                    e_addr,
                    e_old,
                    e_new,
                    entry.flush_bit,
                    kind,
                    checksum,
                    seq,
                )
            )
        self._cursor[tid] = cursor
        return words

    @staticmethod
    def _pack(entry: LogEntry) -> int:
        """Deterministic word payload standing in for the serialized
        entry bytes (recovery uses the structured records)."""
        mixed = (
            (entry.tid << 56)
            ^ (entry.txid << 40)
            ^ entry.addr
            ^ (entry.old * 0x9E3779B97F4A7C15)
            ^ (entry.new * 0xC2B2AE3D27D4EB4F)
        )
        return (mixed | 1) & WORD_MASK

    # ------------------------------------------------------------------
    # Commit tuples
    # ------------------------------------------------------------------
    def persist_commit_tuple(self, tid: int, txid: int) -> Dict[int, int]:
        """Record a committed-transaction ID tuple; returns the word
        write for the memory controller."""
        self._commit_tuples.add((tid, txid))
        self._tuple_seq[(tid, txid)] = self._seq
        self._seq += 1
        base, area = self.layout.thread_log_area(tid)
        cursor = self._cursor.get(tid, 0)
        if cursor % 64:  # the tuple is flushed as its own line write
            cursor += 64 - cursor % 64
        addr = base + (cursor % area)
        self._cursor[tid] = cursor + 2 * WORD_SIZE
        word = addr & ~(WORD_SIZE - 1)
        payload = ((tid << 16) | txid | (1 << 63)) & WORD_MASK
        return {word: payload, word + WORD_SIZE: payload ^ WORD_MASK}

    # ------------------------------------------------------------------
    # Fault-injection hooks (repro.faults)
    # ------------------------------------------------------------------
    def begin_crash_drain(self) -> None:
        """Mark the crash point: everything the crash handlers persist
        from here on rides the volatile WPQ/log-buffer drain and is
        therefore exposed to tear/drop faults."""
        self._crash_seq = self._seq

    def all_record_locators(self) -> List[Tuple[int, int, int]]:
        """``(tid, txid, index)`` for every live record, append order —
        the bit-flip fault population (any word resident on media can
        take a media error, however long ago it was written)."""
        return [
            (tid, txid, idx)
            for tid in sorted(self._records)
            for txid, bucket in self._records[tid].items()
            for idx in range(len(bucket))
        ]

    def inflight_record_locators(self, window: int) -> List[Tuple[int, int, int]]:
        """Locators of records exposed to tear/drop faults at the crash.

        Two populations: records persisted at or after
        :meth:`begin_crash_drain` (they were still in the WPQ/log-buffer
        pipeline when power failed), and the trailing ``window`` pre-crash
        records — ``window`` is the WPQ capacity — of transactions with
        no persisted commit tuple (a committed transaction's log writes
        were fenced before its commit tuple, so they are on media).
        """
        if self._crash_seq is None:
            return []
        crash_seq = self._crash_seq
        drained: List[Tuple[int, int, int, int]] = []
        tail: List[Tuple[int, int, int, int]] = []
        committed = self._commit_tuples
        for tid in sorted(self._records):
            for txid, bucket in self._records[tid].items():
                for idx, rec in enumerate(bucket):
                    if rec.seq >= crash_seq:
                        drained.append((rec.seq, tid, txid, idx))
                    elif (tid, txid) not in committed:
                        tail.append((rec.seq, tid, txid, idx))
        tail.sort()
        exposed = drained + (tail[-window:] if window > 0 else [])
        exposed.sort()
        return [(tid, txid, idx) for _, tid, txid, idx in exposed]

    def inflight_commit_tuples(self) -> List[Tuple[int, int]]:
        """Commit tuples still in the WPQ/log-buffer pipeline at the
        crash (persisted during the crash drain)."""
        if self._crash_seq is None:
            return []
        crash_seq = self._crash_seq
        return sorted(
            key for key, seq in self._tuple_seq.items() if seq >= crash_seq
        )

    def get_record(self, tid: int, txid: int, idx: int) -> PersistedLog:
        return self._records[tid][txid][idx]

    def replace_record(
        self, tid: int, txid: int, idx: int, record: PersistedLog
    ) -> None:
        """Swap in a mutated record (the injector's write primitive)."""
        self._records[tid][txid][idx] = record

    def corrupt_commit_tuple(self, tid: int, txid: int, reason: str) -> None:
        """Damage a commit tuple's media slot: the complement-word check
        fails, so the transaction is no longer recognised as committed
        and the corruption is reported via :meth:`corrupt_tuples`."""
        self._commit_tuples.discard((tid, txid))
        self._corrupt_tuples[(tid, txid)] = reason

    def corrupt_tuples(self) -> Dict[Tuple[int, int], str]:
        return dict(self._corrupt_tuples)

    # ------------------------------------------------------------------
    # Recovery-side accessors
    # ------------------------------------------------------------------
    def logs_for_thread(self, tid: int) -> List[PersistedLog]:
        """Persisted entries of one thread in append (oldest-first) order."""
        by_tx = self._records.get(tid)
        if not by_tx:
            return []
        return [record for bucket in by_tx.values() for record in bucket]

    def all_threads(self) -> List[int]:
        return sorted(self._records)

    def is_committed(self, tid: int, txid: int) -> bool:
        return (tid, txid) in self._commit_tuples

    @property
    def commit_tuples(self) -> Set[Tuple[int, int]]:
        return set(self._commit_tuples)

    # ------------------------------------------------------------------
    # Truncation
    # ------------------------------------------------------------------
    def discard_tx(self, tid: int, txid: int) -> int:
        """Delete the persisted logs of one transaction (log truncation
        after commit / after an overflow-heavy transaction commits)."""
        by_tx = self._records.get(tid)
        if not by_tx:
            return 0
        bucket = by_tx.pop(txid, None)
        return len(bucket) if bucket else 0

    def truncate_thread(self, tid: int) -> None:
        self._records.pop(tid, None)

    def truncate_all(self) -> None:
        self._records.clear()
        self._commit_tuples.clear()
        self._corrupt_tuples.clear()
        self._tuple_seq.clear()

    def total_persisted(self) -> int:
        return sum(
            len(bucket)
            for by_tx in self._records.values()
            for bucket in by_tx.values()
        )
