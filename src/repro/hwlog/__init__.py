"""Hardware-logging substrate: entries, buffers, generators, log region."""

from repro.hwlog.entry import LogEntry
from repro.hwlog.logbuffer import AppendResult, LogBuffer
from repro.hwlog.generator import LogGenerator
from repro.hwlog.region import CommitTuple, LogRegion, PersistedLog

__all__ = [
    "LogEntry",
    "AppendResult",
    "LogBuffer",
    "LogGenerator",
    "CommitTuple",
    "LogRegion",
    "PersistedLog",
]
