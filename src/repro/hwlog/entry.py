"""The undo+redo log entry of Fig. 6.

One entry records the change a single CPU store made to one word:

    | flush-bit | tid | txid | addr | old data | new data |
    |   1 bit   | 8 b | 16 b | 48 b |  1 word  |  1 word  |

Entries are generated and manipulated entirely by hardware; software
never sees them.  ``log_addr`` is the physical address assigned to the
entry inside the owning thread's PM log area (Section III-B).
"""

from __future__ import annotations

from repro.common.constants import (
    UNDO_LOG_ENTRY_SIZE,
    UNDO_REDO_LOG_ENTRY_SIZE,
    WORD_MASK,
)


def entry_checksum(tid: int, txid: int, addr: int, old: int, new: int) -> int:
    """Per-entry integrity checksum over the Fig. 6 fields.

    Computed by the log generator when the entry is created and stored
    in the entry's serialized slot; recovery recomputes it from the
    scanned ID tuple + payload words and rejects any entry whose stored
    checksum disagrees (media bit error) or whose slot is incomplete
    (torn write at the 8-byte persist-atomicity boundary).

    The mix is exactly the word payload the log region serializes for
    the entry, so stamping it costs nothing on the append path.
    """
    return (
        (
            (tid << 56)
            ^ (txid << 40)
            ^ addr
            ^ ((old & WORD_MASK) * 0x9E3779B97F4A7C15)
            ^ ((new & WORD_MASK) * 0xC2B2AE3D27D4EB4F)
        )
        | 1
    ) & WORD_MASK


class LogEntry:
    """A mutable undo+redo log entry living in a core's log buffer."""

    __slots__ = ("tid", "txid", "addr", "old", "new", "flush_bit", "log_addr")

    #: Byte footprint when flushed with both data words (Section VI-D).
    UNDO_REDO_SIZE = UNDO_REDO_LOG_ENTRY_SIZE
    #: Byte footprint when flushed as an undo-only entry (Section III-F).
    UNDO_SIZE = UNDO_LOG_ENTRY_SIZE

    def __init__(
        self,
        tid: int,
        txid: int,
        addr: int,
        old: int,
        new: int,
        flush_bit: bool = False,
        log_addr: int = 0,
    ) -> None:
        if not 0 <= tid < (1 << 8):
            raise ValueError(f"tid {tid} does not fit the 8-bit field")
        if not 0 <= txid < (1 << 16):
            raise ValueError(f"txid {txid} does not fit the 16-bit field")
        if not 0 <= addr < (1 << 48):
            raise ValueError(f"addr {addr:#x} does not fit the 48-bit field")
        self.tid = tid
        self.txid = txid
        self.addr = addr
        self.old = old & WORD_MASK
        self.new = new & WORD_MASK
        self.flush_bit = flush_bit
        self.log_addr = log_addr

    def merge_new(self, new: int) -> None:
        """Log merging (Fig. 7): keep the oldest old data, adopt the
        newest new data; intermediate values disappear."""
        self.new = new & WORD_MASK

    @property
    def line_addr(self) -> int:
        """Cacheline address of the logged word (used by the flush-bit
        comparators, Section III-D)."""
        return self.addr & ~63

    def id_tuple(self) -> tuple:
        return (self.tid, self.txid)

    def __repr__(self) -> str:
        fb = 1 if self.flush_bit else 0
        return (
            f"LogEntry(fb={fb}, tid={self.tid}, txid={self.txid}, "
            f"addr={self.addr:#x}, old={self.old:#x}, new={self.new:#x})"
        )
