"""The per-L1D log generator (Section III-B).

When a cacheline is modified inside a transaction, the generator
captures the in-flight store's new data and physical address, reads the
old data from L1D (overlapped with tag matching, so free), and emits a
log entry.  Two behaviours matter for the evaluation:

* **Log ignorance** (Section III-C): a store whose new value equals the
  old value (data copies, re-assignments) produces no entry at all.
* **Transaction IDs**: ``Tx_begin`` latches the thread id and bumps the
  per-core txid register; stores outside a transaction produce no logs.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import TransactionError
from repro.common.stats import Stats
from repro.hwlog.entry import LogEntry

_TXID_WRAP = 1 << 16


class LogGenerator:
    """One log generator, attached to one core's L1D controller."""

    def __init__(
        self,
        core_id: int,
        stats: Optional[Stats] = None,
        ignore_silent: bool = True,
    ) -> None:
        self.core_id = core_id
        self.stats = stats if stats is not None else Stats()
        #: Log ignorance (Section III-C); disable only for ablations.
        self.ignore_silent = ignore_silent
        self._txid_register = 0
        self._tid: Optional[int] = None
        self._txid: Optional[int] = None

    # ------------------------------------------------------------------
    # Transaction boundaries
    # ------------------------------------------------------------------
    def tx_begin(self, tid: int, txid: Optional[int] = None) -> int:
        """Record the thread id, advance the txid register and start
        producing logs.  Returns the new transaction id.

        The engine may impose its own ``txid`` so that all designs and
        the crash checker agree on transaction identities; otherwise
        the register simply increments (Section III-B).
        """
        if self._txid is not None:
            raise TransactionError(
                f"core {self.core_id}: Tx_begin inside an open transaction "
                "(nested transactions are not supported, Section III-A)"
            )
        if txid is None:
            self._txid_register = (self._txid_register + 1) % _TXID_WRAP
        else:
            self._txid_register = txid % _TXID_WRAP
        self._tid = tid
        self._txid = self._txid_register
        return self._txid

    def tx_end(self) -> None:
        """Stop producing logs for this transaction."""
        if self._txid is None:
            raise TransactionError(
                f"core {self.core_id}: Tx_end without a matching Tx_begin"
            )
        self._tid = None
        self._txid = None

    @property
    def in_transaction(self) -> bool:
        return self._txid is not None

    @property
    def current_txid(self) -> Optional[int]:
        return self._txid

    @property
    def current_tid(self) -> Optional[int]:
        return self._tid

    # ------------------------------------------------------------------
    # Store capture
    # ------------------------------------------------------------------
    def on_store(self, addr: int, old: int, new: int) -> Optional[LogEntry]:
        """Produce a log entry for one transactional store, or ``None``
        for non-transactional stores and ignored (no-change) writes."""
        if self._txid is None:
            return None
        counters = self.stats.counters
        counters["loggen.stores_seen"] += 1
        if old == new and self.ignore_silent:
            counters["loggen.ignored"] += 1
            return None
        counters["loggen.entries"] += 1
        return LogEntry(self._tid, self._txid, addr, old, new)
