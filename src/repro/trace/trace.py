"""Trace containers: transactions, per-thread streams, whole workloads."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.common.constants import LINE_SIZE, WORD_SIZE
from repro.common.errors import TransactionError
from repro.trace.ops import Load, Op, Store


class Transaction:
    """One transaction: the memory operations between the markers.

    The ``Tx_begin`` / ``Tx_end`` markers themselves are implicit —
    every transaction in a trace is committed by the workload; crash
    injection decides which ones actually commit in a given run.
    """

    __slots__ = ("ops",)

    def __init__(self, ops: Optional[Sequence[Op]] = None) -> None:
        self.ops: List[Op] = list(ops) if ops is not None else []

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def store(self, addr: int, value: int) -> "Transaction":
        self.ops.append(Store(addr, value))
        return self

    def load(self, addr: int) -> "Transaction":
        self.ops.append(Load(addr))
        return self

    # ------------------------------------------------------------------
    # Metrics (Fig. 4 and Fig. 13 inputs)
    # ------------------------------------------------------------------
    @property
    def stores(self) -> List[Store]:
        return [op for op in self.ops if type(op) is Store]

    @property
    def write_size_bytes(self) -> int:
        """Bytes the transaction writes: one word per store (Fig. 4)."""
        return WORD_SIZE * sum(1 for op in self.ops if type(op) is Store)

    def distinct_words(self) -> int:
        return len({op.addr for op in self.ops if type(op) is Store})

    def distinct_lines(self) -> int:
        mask = ~(LINE_SIZE - 1)
        return len({op.addr & mask for op in self.ops if type(op) is Store})

    def final_values(self) -> Dict[int, int]:
        """The last value written to each word (what commit makes
        durable)."""
        out: Dict[int, int] = {}
        for op in self.ops:
            if type(op) is Store:
                out[op.addr] = op.value
        return out

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:
        return f"Transaction({len(self.ops)} ops, {self.write_size_bytes}B written)"


class ThreadTrace:
    """All transactions executed by one thread, in program order."""

    __slots__ = ("tid", "transactions")

    def __init__(
        self, tid: int, transactions: Optional[Sequence[Transaction]] = None
    ) -> None:
        if not 0 <= tid < 256:
            raise TransactionError(f"tid {tid} does not fit the 8-bit log field")
        self.tid = tid
        self.transactions: List[Transaction] = (
            list(transactions) if transactions is not None else []
        )

    def append(self, tx: Transaction) -> None:
        self.transactions.append(tx)

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self.transactions)


class Trace:
    """A whole workload: per-thread streams plus the initial PM image."""

    def __init__(
        self,
        threads: Sequence[ThreadTrace],
        initial_image: Optional[Dict[int, int]] = None,
        name: str = "trace",
    ) -> None:
        self.threads: List[ThreadTrace] = list(threads)
        self.initial_image: Dict[int, int] = dict(initial_image or {})
        self.name = name

    # ------------------------------------------------------------------
    # Aggregate metrics
    # ------------------------------------------------------------------
    @property
    def total_transactions(self) -> int:
        return sum(len(t) for t in self.threads)

    def all_transactions(self) -> Iterator[Transaction]:
        for thread in self.threads:
            yield from thread

    def mean_write_size_bytes(self) -> float:
        """Average bytes written per transaction (the Fig. 4 metric)."""
        sizes = [tx.write_size_bytes for tx in self.all_transactions()]
        return sum(sizes) / len(sizes) if sizes else 0.0

    def touched_words(self) -> Iterable[int]:
        """Every word address any transaction stores to (used by the
        atomic-durability checker to scope the comparison)."""
        words = set(self.initial_image)
        for tx in self.all_transactions():
            for op in tx.ops:
                if type(op) is Store:
                    words.add(op.addr)
        return words

    def __repr__(self) -> str:
        return (
            f"Trace({self.name!r}, {len(self.threads)} threads, "
            f"{self.total_transactions} transactions)"
        )
