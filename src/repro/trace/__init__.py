"""Transaction traces: the interface between workloads and the engine."""

from repro.trace.ops import Load, Op, Store, TxBegin, TxEnd
from repro.trace.trace import ThreadTrace, Trace, Transaction
from repro.trace.synthetic import SyntheticTraceConfig, synthetic_trace
from repro.trace.serialize import load_trace, save_trace

__all__ = [
    "Load",
    "Op",
    "Store",
    "TxBegin",
    "TxEnd",
    "ThreadTrace",
    "Trace",
    "Transaction",
    "SyntheticTraceConfig",
    "synthetic_trace",
    "load_trace",
    "save_trace",
]
