"""Trace serialization: save and reload workload traces as JSON.

Workload generation (especially TPCC) costs more time than small
simulation runs; serializing traces lets experiment sweeps reuse one
trace across designs, machines and sessions, and pins the exact
operation stream a result was measured on.

Format (version 1)::

    {
      "version": 1,
      "name": "tpcc",
      "initial_image": [[addr, value], ...],
      "threads": [
        {"tid": 0, "transactions": [
            [["s", addr, value], ["l", addr], ...], ...
        ]}, ...
      ]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, TextIO, Union

from repro.common.errors import ReproError
from repro.trace.ops import Load, Store
from repro.trace.trace import ThreadTrace, Trace, Transaction

FORMAT_VERSION = 1


class TraceFormatError(ReproError):
    """The serialized trace is malformed or from an unknown version."""


def trace_to_dict(trace: Trace) -> Dict[str, Any]:
    """Convert a trace to a JSON-compatible dictionary."""
    threads: List[Dict[str, Any]] = []
    for thread in trace.threads:
        transactions = []
        for tx in thread.transactions:
            ops: List[List[Union[str, int]]] = []
            for op in tx.ops:
                if type(op) is Store:
                    ops.append(["s", op.addr, op.value])
                elif type(op) is Load:
                    ops.append(["l", op.addr])
                else:  # pragma: no cover - trace ops are only s/l
                    raise TraceFormatError(f"unserializable op {op!r}")
            transactions.append(ops)
        threads.append({"tid": thread.tid, "transactions": transactions})
    return {
        "version": FORMAT_VERSION,
        "name": trace.name,
        "initial_image": sorted(trace.initial_image.items()),
        "threads": threads,
    }


def trace_from_dict(payload: Dict[str, Any]) -> Trace:
    """Rebuild a trace from :func:`trace_to_dict` output."""
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise TraceFormatError(f"unsupported trace format version {version!r}")
    try:
        threads = []
        for thread_payload in payload["threads"]:
            transactions = []
            for ops_payload in thread_payload["transactions"]:
                tx = Transaction()
                for op in ops_payload:
                    if op[0] == "s":
                        tx.store(int(op[1]), int(op[2]))
                    elif op[0] == "l":
                        tx.load(int(op[1]))
                    else:
                        raise TraceFormatError(f"unknown op tag {op[0]!r}")
                transactions.append(tx)
            threads.append(ThreadTrace(int(thread_payload["tid"]), transactions))
        initial = {int(a): int(v) for a, v in payload["initial_image"]}
        return Trace(threads, initial_image=initial, name=payload.get("name", "trace"))
    except (KeyError, IndexError, TypeError) as exc:
        raise TraceFormatError(f"malformed trace payload: {exc}") from exc


def save_trace(trace: Trace, target: Union[str, TextIO]) -> None:
    """Write a trace to a path or file-like object as JSON."""
    payload = trace_to_dict(trace)
    if isinstance(target, (str, bytes)):
        with open(target, "w") as handle:
            json.dump(payload, handle)
    else:
        json.dump(payload, target)


def load_trace(source: Union[str, TextIO]) -> Trace:
    """Read a trace from a path or file-like object."""
    if isinstance(source, (str, bytes)):
        with open(source) as handle:
            payload = json.load(handle)
    else:
        payload = json.load(source)
    return trace_from_dict(payload)


def dumps(trace: Trace) -> str:
    """Serialize a trace to a JSON string."""
    return json.dumps(trace_to_dict(trace))


def loads(text: str) -> Trace:
    """Deserialize a trace from a JSON string."""
    return trace_from_dict(json.loads(text))
