"""Operations appearing inside a transaction trace.

A trace is a sequence of word-granular memory operations between
``Tx_begin`` / ``Tx_end`` markers, exactly the information the paper's
hardware sees: the log generator captures in-flight stores, and the
old value is read from L1D at store time (so traces carry only the
*new* value; the engine derives the old one from the architectural
state, which also makes log ignorance emerge naturally when a store
rewrites an unchanged value).
"""

from __future__ import annotations

from typing import Union

from repro.common.constants import WORD_SIZE
from repro.common.errors import AddressError


class TxBegin:
    """Transaction start marker (the ``Tx_begin`` interface)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "TxBegin()"

    def __eq__(self, other: object) -> bool:
        return type(other) is TxBegin

    def __hash__(self) -> int:
        return hash(TxBegin)


class TxEnd:
    """Transaction commit marker (the ``Tx_end`` interface)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "TxEnd()"

    def __eq__(self, other: object) -> bool:
        return type(other) is TxEnd

    def __hash__(self) -> int:
        return hash(TxEnd)


class Store:
    """One CPU store of a 64-bit word."""

    __slots__ = ("addr", "value")

    def __init__(self, addr: int, value: int) -> None:
        if addr % WORD_SIZE:
            raise AddressError(f"store address {addr:#x} is not word aligned")
        self.addr = addr
        self.value = value

    def __repr__(self) -> str:
        return f"Store({self.addr:#x}, {self.value:#x})"

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is Store
            and other.addr == self.addr
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((Store, self.addr, self.value))


class Load:
    """One CPU load of a 64-bit word (timing only)."""

    __slots__ = ("addr",)

    def __init__(self, addr: int) -> None:
        if addr % WORD_SIZE:
            raise AddressError(f"load address {addr:#x} is not word aligned")
        self.addr = addr

    def __repr__(self) -> str:
        return f"Load({self.addr:#x})"

    def __eq__(self, other: object) -> bool:
        return type(other) is Load and other.addr == self.addr

    def __hash__(self) -> int:
        return hash((Load, self.addr))


Op = Union[TxBegin, TxEnd, Store, Load]
