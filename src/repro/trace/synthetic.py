"""Synthetic trace generation.

Used by the property-based crash tests (random but reproducible
transaction mixes) and by the Fig. 14 experiment (write sets scaled to
1-16x the log buffer capacity).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.constants import WORD_SIZE
from repro.common.errors import ConfigError
from repro.trace.trace import ThreadTrace, Trace, Transaction


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Knobs for the synthetic workload generator."""

    threads: int = 1
    transactions_per_thread: int = 100
    #: Distinct words each transaction writes.
    write_set_words: int = 10
    #: Additional stores re-writing already-written words (exercises
    #: log merging).
    rewrite_fraction: float = 0.25
    #: Fraction of stores that write the value already present
    #: (exercises log ignorance).
    silent_fraction: float = 0.0
    #: Loads interleaved per store (timing/locality only).
    loads_per_store: float = 0.5
    #: Words available per thread arena (controls locality).
    arena_words: int = 4096
    seed: int = 42

    def __post_init__(self) -> None:
        if self.threads <= 0 or self.transactions_per_thread < 0:
            raise ConfigError("threads and transactions must be non-negative")
        if self.write_set_words <= 0:
            raise ConfigError("write_set_words must be positive")
        if self.arena_words < self.write_set_words:
            raise ConfigError("arena must be at least as large as a write set")


#: Per-thread arenas start here (inside the PM data region) and are
#: spaced far apart so threads never share cachelines.
_ARENA_BASE = 0x1000_0000
_ARENA_STRIDE = 0x100_0000


def arena_word_addr(tid: int, index: int) -> int:
    """Word address of slot ``index`` in thread ``tid``'s arena."""
    return _ARENA_BASE + tid * _ARENA_STRIDE + index * WORD_SIZE


def synthetic_trace(config: SyntheticTraceConfig) -> Trace:
    """Generate a reproducible random workload.

    Every word starts at a known non-zero value (``index + 1``) so
    silent stores and undo data are well-defined.
    """
    rng = random.Random(config.seed)
    initial = {}
    for tid in range(config.threads):
        for index in range(config.arena_words):
            initial[arena_word_addr(tid, index)] = index + 1

    current = dict(initial)
    threads = []
    for tid in range(config.threads):
        thread = ThreadTrace(tid)
        for _ in range(config.transactions_per_thread):
            thread.append(_make_tx(config, rng, tid, current))
        threads.append(thread)
    return Trace(threads, initial_image=initial, name="synthetic")


def _make_tx(
    config: SyntheticTraceConfig,
    rng: random.Random,
    tid: int,
    current: dict,
) -> Transaction:
    tx = Transaction()
    indices = rng.sample(range(config.arena_words), config.write_set_words)
    stores = []
    for index in indices:
        stores.append(index)
        if rng.random() < config.rewrite_fraction:
            stores.append(index)  # a second store to the same word
    rng.shuffle(stores)
    for index in stores:
        addr = arena_word_addr(tid, index)
        if rng.random() < config.silent_fraction:
            value = current.get(addr, 0)  # silent: rewrite same value
        else:
            value = rng.getrandbits(64) or 1
        tx.store(addr, value)
        current[addr] = value
        n_loads = int(config.loads_per_store) + (
            1 if rng.random() < config.loads_per_store % 1 else 0
        )
        for _ in range(n_loads):
            tx.load(arena_word_addr(tid, rng.randrange(config.arena_words)))
    return tx
