"""WrAP: write-aside persistence (Doshi et al., HPCA 2016) — Fig. 2b.

WrAP writes *redo* logs to the PM log region and later **reads those
logs back** to update the data region, "thus causing extra reads"
(Section II-E).  Modelled per the paper's characterization:

* every transactional store appends a redo log entry (posted write);
* commit waits for the transaction's log entries to persist (redo
  commit rule, Fig. 3);
* after commit, a background copier *reads* each log entry from PM and
  writes its new data word to the data region — the design's extra
  read traffic;
* in-place data is never updated before commit (cacheline evictions of
  uncommitted lines are dropped: the foreground copy lives in the
  volatile cache, the durable copy is the redo log).
"""

from __future__ import annotations

from typing import List, Set

from repro.designs.policy import (
    DesignSpec,
    RecoveryWalk,
    TWO_FENCE_HW,
    WordGranularity,
    seal_commit_fence,
)
from repro.designs.scheme import LoggingScheme, SchemeRegistry, Writebacks
from repro.hwlog.entry import LogEntry


@SchemeRegistry.register
class WrAPScheme(LoggingScheme):
    """Redo logging with log-read-based data updates."""

    name = "wrap"
    spec = DesignSpec(
        name="wrap",
        summary="write-aside redo logs read back by a copier",
        granularity=WordGranularity(),
        fences=TWO_FENCE_HW,
        recovery=RecoveryWalk.wal(),
        columnar_profile="wrap",
    )

    def __init__(self, system) -> None:
        super().__init__(system)
        cores = self.config.cores
        self._line_mask = ~(self.config.l1.line_size - 1)
        #: Persist time of the open transaction's last log, per core.
        self._tx_log_done = [0] * cores
        #: The open transaction's entries, to copy after commit.
        self._tx_entries: List[List[LogEntry]] = [[] for _ in range(cores)]
        #: Lines belonging to open transactions (evictions dropped).
        self._uncommitted_lines: List[Set[int]] = [set() for _ in range(cores)]
        self._in_tx = [False] * cores

    def on_tx_begin(self, core: int, tid: int, txid: int, now: int) -> int:
        self._in_tx[core] = True
        return 0

    def on_store(
        self,
        core: int,
        tid: int,
        txid: int,
        addr: int,
        old: int,
        new: int,
        now: int,
        access,
    ) -> int:
        entry = LogEntry(tid, txid, addr, old, new)
        requests = self.region.persist_entries(
            tid, [entry], kind="redo", per_request=2, request_span=64
        )
        stall = 0
        for words in requests:
            ticket = self.mc.submit_write(
                now, words, kind="log", write_through=True, channel=core
            )
            stall += ticket.admission_stall
            self._tx_log_done[core] = max(
                self._tx_log_done[core], ticket.persisted
            )
        self._tx_entries[core].append(entry)
        self._uncommitted_lines[core].add(addr & self._line_mask)
        return stall

    def on_evictions(self, core: int, now: int, writebacks: Writebacks) -> int:
        """In-place data may not be updated before commit: evictions of
        uncommitted lines are dropped (the redo log is the durable
        copy); other lines write back normally."""
        stall = 0
        uncommitted = set()
        for c in range(self.config.cores):
            if self._in_tx[c]:
                uncommitted |= self._uncommitted_lines[c]
        for line_base, words in writebacks:
            if line_base in uncommitted:
                continue
            ticket = self.mc.submit_write(now, words, kind="data", channel=core)
            stall += ticket.admission_stall
        return stall

    def on_tx_end(self, core: int, tid: int, txid: int, now: int) -> int:
        # Redo commit rule: all logs persisted first.
        stall = max(0, self._tx_log_done[core] - now)
        stall += seal_commit_fence(self, core, tid, txid, now + stall)

        # Background copier: READ each log entry back from PM, then
        # write its word to the data region (WrAP's extra reads).
        t = now + stall
        for entry in self._tx_entries[core]:
            self.mc.submit_read(t, entry.log_addr, channel=core)
            self.stats.add("wrap.log_reads")
            self.mc.submit_write(
                t, {entry.addr: entry.new}, kind="data", channel=core
            )
        # Data now durable: the logs can be truncated.
        self.region.discard_tx(tid, txid)
        self._tx_entries[core].clear()
        self._uncommitted_lines[core].clear()
        self._in_tx[core] = False
        return stall

    def interrupted_commit(self, core: int, tid: int, txid: int, now: int) -> bool:
        # Logs are persisted by commit time; seal the tuple and let
        # recovery replay the redo data (the copier never ran).
        self._tx_entries[core].clear()
        self._uncommitted_lines[core].clear()
        self._in_tx[core] = False
        words = self.region.persist_commit_tuple(tid, txid)
        self.mc.submit_write(
            now, words, kind="log", write_through=True, channel=core
        )
        return True
