"""New catalog entries: designs assembled purely from policy specs.

Each class here is a :class:`~repro.designs.policy.PolicyScheme` whose
entire behaviour — staging, spill, eviction handling, commit fencing,
in-place update, recovery — comes from its :class:`DesignSpec`.  The
catalog grows by declaring a spec, not by writing a scheme body; the
crash-point property suite exercises every (granularity × fence
schedule) combination, so a new spec is durable by construction or it
does not merge.

The fence ladder (1f / 2f / 4f) spans the durabletx design space the
paper positions itself against; the adaptive-granularity entry trades
log write amplification against fence-drain latency per operation.
"""

from __future__ import annotations

from repro.designs.policy import (
    AdaptiveGranularity,
    DesignSpec,
    FOUR_FENCE,
    ONE_FENCE,
    PageGranularity,
    PolicyScheme,
    RecoveryWalk,
    TWO_FENCE,
    WordGranularity,
)
from repro.designs.scheme import SchemeRegistry


@SchemeRegistry.register
class AGLogScheme(PolicyScheme):
    """Adaptive-granularity redo WAL.

    Each flushed cacheline run is logged in whichever format writes
    fewer bytes: a run of three or more words becomes one coarse run
    record (8 B header + 8 B/word), shorter runs stay individual
    16-byte redo entries.  Two fences (logs, then tuple); recovery is
    a data-comparison-write replay, so an interrupted commit whose
    in-place data partially survived is not rewritten word-for-word.
    """

    name = "aglog"
    spec = DesignSpec(
        name="aglog",
        summary="adaptive word/page redo WAL with DCW replay",
        granularity=AdaptiveGranularity(threshold=3),
        fences=TWO_FENCE,
        recovery=RecoveryWalk.dcw(),
    )


@SchemeRegistry.register
class Quadra1FScheme(PolicyScheme):
    """Single-fence word-granular redo WAL.

    The commit tuple is the only fence: the memory controller's
    per-channel FIFO write path already orders the transaction's log
    writes ahead of the tuple on the same channel, so the explicit
    log fence of the classic protocol is redundant — the fence-ladder
    catalog's lowest rung.
    """

    name = "quadra1f"
    spec = DesignSpec(
        name="quadra1f",
        summary="word redo WAL; single fence on the commit tuple",
        granularity=WordGranularity(),
        fences=ONE_FENCE,
        recovery=RecoveryWalk.redo_only(),
    )


@SchemeRegistry.register
class Trinity2FScheme(PolicyScheme):
    """Two-fence page-granular redo WAL.

    Every flushed cacheline run becomes one coarse run record; commit
    fences the logs and then the tuple (the classic redo commit
    rule).  Against ``quadra1f`` it isolates the cost of the log
    fence; against ``aglog`` the cost of never falling back to word
    entries for short runs.
    """

    name = "trinity2f"
    spec = DesignSpec(
        name="trinity2f",
        summary="page-run redo WAL; log fence then tuple fence",
        granularity=PageGranularity(),
        fences=TWO_FENCE,
        recovery=RecoveryWalk.redo_only(),
    )


@SchemeRegistry.register
class RedoLog4FScheme(PolicyScheme):
    """Four-fence word-granular redo WAL — the fence-ladder's top.

    Logs, commit tuple, in-place data and the truncation marker are
    each synchronously fenced, the fully conservative software-style
    protocol.  The catalog's upper bound on commit-path ordering
    cost, with the same log traffic as ``quadra1f``.
    """

    name = "redolog4f"
    spec = DesignSpec(
        name="redolog4f",
        summary="word redo WAL; logs/tuple/data/truncate all fenced",
        granularity=WordGranularity(),
        fences=FOUR_FENCE,
        recovery=RecoveryWalk.redo_only(),
    )
