"""The composable design-policy framework.

Every logging design answers three orthogonal questions, and the nine
hand-rolled schemes answered them in fused class bodies:

* **What is logged per store?** — the granularity axis
  (:class:`GranularityPolicy`): fine word/delta entries, coarse
  line-run ("page") records amortizing one header over a whole run,
  or an adaptive per-op decision between the two with a size
  threshold and write-amplification accounting.
* **When does commit fence?** — the fence-schedule axis
  (:class:`FenceSchedule`): a declarative 1/2/4-fence commit protocol
  lowered onto the existing stall-cycle hooks (each fence is a
  store-buffer drain plus a wait for the fenced persists).
* **How is a crash repaired?** — the recovery axis
  (:class:`RecoveryWalk`): undo / redo / DCW replay assembled from the
  shared, checksum-aware walk in :mod:`repro.core.recovery`.

A :class:`DesignSpec` binds one choice per axis (plus catalog
metadata: summary, columnar fusion profile).  The nine legacy designs
carry specs describing their hard-wired behaviour — their hot paths
are untouched, pinned bit-identical by the design-fingerprint golden
fixture — while new catalog entries subclass :class:`PolicyScheme`,
whose generic transaction lifecycle is driven entirely by the spec.
Adding a design is now a ~40-line spec declaration, not a subsystem.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.common.constants import WORD_MASK
from repro.designs.scheme import LoggingScheme, Writebacks
from repro.hwlog.entry import LogEntry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.recovery import RecoveryReport
    from repro.hwlog.region import LogRegion, PersistedLog
    from repro.mem.pm import PMDevice

#: Cycles for one fence (store-buffer drain), matching the software
#: logging baseline's ``sfence`` cost.
FENCE_CYCLES = 10

#: Capacity of a :class:`PolicyScheme`'s per-core staging buffer.
STAGING_ENTRIES = 64

#: Entries spilled per staging-overflow flush.
SPILL_BATCH = 4


# ----------------------------------------------------------------------
# Axis 1: granularity
# ----------------------------------------------------------------------
class GranularityPolicy:
    """What one transaction's staged stores become in the log region.

    ``pack`` partitions a flush batch into ``("word", entries)`` and
    ``("run", entries)`` chunks.  Word chunks serialize as standard
    16-byte redo entries (two per 64-byte request); run chunks become
    one coarse record per cacheline run — an 8-byte header plus one
    8-byte payload word per store — via
    :meth:`~repro.hwlog.region.LogRegion.persist_run`.  Policies are
    stateless and shared class-wide; accounting goes to the run's own
    ``counters``.
    """

    #: Catalog label ("word", "page", "adaptive:N").
    name: str = "abstract"

    def pack(
        self, entries: List[LogEntry], counters: Counter
    ) -> List[Tuple[str, List[LogEntry]]]:
        raise NotImplementedError


def _line_runs(entries: List[LogEntry]) -> List[List[LogEntry]]:
    """Group a flush batch into per-cacheline runs, preserving the
    batch's append order between runs."""
    runs: Dict[int, List[LogEntry]] = {}
    for entry in entries:
        runs.setdefault(entry.addr & -64, []).append(entry)
    return list(runs.values())


class WordGranularity(GranularityPolicy):
    """Fine-grained logging: one redo entry per word written."""

    name = "word"

    def pack(
        self, entries: List[LogEntry], counters: Counter
    ) -> List[Tuple[str, List[LogEntry]]]:
        if entries:
            counters["granularity.word_entries"] += len(entries)
        return [("word", entries)] if entries else []


class PageGranularity(GranularityPolicy):
    """Coarse-grained logging: every cacheline run becomes one packed
    record (header + payload words), however short the run."""

    name = "page"

    def pack(
        self, entries: List[LogEntry], counters: Counter
    ) -> List[Tuple[str, List[LogEntry]]]:
        chunks: List[Tuple[str, List[LogEntry]]] = []
        for run in _line_runs(entries):
            counters["granularity.page_runs"] += 1
            counters["granularity.page_words"] += len(run)
            chunks.append(("run", run))
        return chunks


class DeltaGranularity(WordGranularity):
    """Catalog label for word-granular designs whose entries merge in
    on-chip buffers before flushing (MorLog-style delta logs): same
    packing as :class:`WordGranularity`, coarser effective footprint."""

    name = "delta"


class LineGranularity(PageGranularity):
    """Catalog label for designs that capture whole cachelines (LAD's
    victim slots): line-granular runs."""

    name = "line"


class AdaptiveGranularity(GranularityPolicy):
    """AG-Log-style per-op decision engine: a cacheline run of at
    least ``threshold`` words is cheaper as one coarse record (8 B
    header amortized), a shorter run is cheaper as word entries — so
    each run is logged in whichever mode writes fewer log bytes.

    The decision is the granularity axis's write-amplification lever:
    a low threshold approaches page logging (lowest WAF, single large
    fenced request), a high threshold approaches word logging (highest
    WAF, more requests to drain at each fence).
    """

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 1:
            raise ValueError("adaptive granularity threshold must be >= 1")
        self.threshold = threshold
        self.name = f"adaptive:{threshold}"

    def pack(
        self, entries: List[LogEntry], counters: Counter
    ) -> List[Tuple[str, List[LogEntry]]]:
        chunks: List[Tuple[str, List[LogEntry]]] = []
        word_chunk: List[LogEntry] = []
        for run in _line_runs(entries):
            if len(run) >= self.threshold:
                counters["granularity.page_runs"] += 1
                counters["granularity.page_words"] += len(run)
                chunks.append(("run", run))
            else:
                counters["granularity.word_entries"] += len(run)
                word_chunk.extend(run)
        if word_chunk:
            chunks.append(("word", word_chunk))
        return chunks


# ----------------------------------------------------------------------
# Axis 2: fence schedule
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FenceSchedule:
    """A declarative commit protocol: which persists commit waits on.

    Lowered by :meth:`PolicyScheme.on_tx_end` onto the existing
    stall-cycle hooks.  The commit-tuple seal is always fenced (a
    design that did not wait for its commit marker could lose a
    transaction it reported committed); the other three fences are the
    ladder the durabletx family climbs:

    * ``wait_log_persist`` — fence after the transaction's log writes
      (the classic redo commit rule).  Without it, the tuple relies on
      the memory controller's per-channel FIFO to order the log
      writes ahead of it (Quadra's single-fence trick).
    * ``inplace_fence`` — the post-commit in-place data update is
      written through and fenced instead of riding the background
      write path.
    * ``truncate_fence`` — log truncation persists a marker and fences
      (RedoLog's fourth fence).
    """

    name: str
    fences: int
    wait_log_persist: bool
    inplace_fence: bool
    truncate_fence: bool
    fence_cycles: int = FENCE_CYCLES

    def __post_init__(self) -> None:
        declared = 1 + int(self.wait_log_persist) + int(self.inplace_fence) + int(
            self.truncate_fence
        )
        if declared != self.fences:
            raise ValueError(
                f"fence schedule {self.name!r} declares {self.fences} fences "
                f"but lowers to {declared}"
            )


#: Quadra-style: a single fence on the commit tuple; the per-channel
#: FIFO write path orders the transaction's log writes ahead of it.
ONE_FENCE = FenceSchedule(
    "1f", fences=1, wait_log_persist=False, inplace_fence=False, truncate_fence=False
)
#: Trinity-style: fence the transaction's logs, then fence the tuple.
TWO_FENCE = FenceSchedule(
    "2f", fences=2, wait_log_persist=True, inplace_fence=False, truncate_fence=False
)
#: Classic four-fence redo WAL: logs, tuple, in-place data, truncation
#: marker — every step synchronously fenced.
FOUR_FENCE = FenceSchedule(
    "4f", fences=4, wait_log_persist=True, inplace_fence=True, truncate_fence=True
)
#: Hardware variants: same ordering points, but enforced by the memory
#: controller (no store-buffer-drain cycles).  These label the legacy
#: hardware designs' commit protocols.
ONE_FENCE_HW = FenceSchedule(
    "1f-hw",
    fences=1,
    wait_log_persist=False,
    inplace_fence=False,
    truncate_fence=False,
    fence_cycles=0,
)
TWO_FENCE_HW = FenceSchedule(
    "2f-hw",
    fences=2,
    wait_log_persist=True,
    inplace_fence=False,
    truncate_fence=False,
    fence_cycles=0,
)


# ----------------------------------------------------------------------
# Axis 3: recovery walk
# ----------------------------------------------------------------------
#: Entry predicates, re-exported shape of repro.core.recovery's.
_EntryFilter = Callable[["PersistedLog"], bool]


@dataclass(frozen=True)
class RecoveryWalk:
    """How a crash is repaired, as a parameterization of the shared
    checksum-aware walk (:func:`repro.core.recovery.wal_recover`).

    ``mode``:

    * ``"wal"`` — the standard walk with default predicates (replay
      redo/undo_redo data of committed transactions, revoke
      undo/undo_redo data of uncommitted ones).  All legacy
      write-ahead designs use this.
    * ``"selective"`` — the standard walk with design-supplied
      predicates (Silo's flush-bit selective replay).
    * ``"redo"`` — replay-only: committed redo data is replayed,
      uncommitted entries are discarded (designs that never let
      uncommitted data reach PM need no undo).
    * ``"dcw"`` — redo replay with data-comparison writes: a word the
      media already holds is not rewritten (poisoned cells and words
      already touched by this walk are always written).
    """

    mode: str = "wal"
    redo_filter: Optional[_EntryFilter] = None
    undo_filter: Optional[_EntryFilter] = None

    @classmethod
    def wal(cls) -> "RecoveryWalk":
        return cls(mode="wal")

    @classmethod
    def selective(
        cls, redo_filter: _EntryFilter, undo_filter: _EntryFilter
    ) -> "RecoveryWalk":
        return cls(
            mode="selective", redo_filter=redo_filter, undo_filter=undo_filter
        )

    @classmethod
    def redo_only(cls) -> "RecoveryWalk":
        return cls(mode="redo")

    @classmethod
    def dcw(cls) -> "RecoveryWalk":
        return cls(mode="dcw")

    def run(
        self, region: "LogRegion", pm: "PMDevice", scheme: str = ""
    ) -> "RecoveryReport":
        # Imported lazily: repro.core imports the design modules, so a
        # top-level import here would be circular.
        from repro.core.recovery import wal_recover

        if self.mode in ("wal", "selective"):
            return wal_recover(
                region,
                pm,
                redo_filter=self.redo_filter,
                undo_filter=self.undo_filter,
                scheme=scheme,
            )
        if self.mode == "redo":
            return wal_recover(
                region,
                pm,
                redo_filter=_replay_redo,
                undo_filter=_never,
                scheme=scheme,
            )
        if self.mode == "dcw":
            return wal_recover(
                region,
                pm,
                redo_filter=_dcw_filter(pm),
                undo_filter=_never,
                scheme=scheme,
            )
        raise ValueError(f"unknown recovery mode {self.mode!r}")


def _replay_redo(entry: "PersistedLog") -> bool:
    return entry.kind == "redo"


def _never(entry: "PersistedLog") -> bool:
    return False


def _dcw_filter(pm: "PMDevice") -> _EntryFilter:
    """Redo predicate with data-comparison writes.

    Skipping is only safe against the *settled* media image: once this
    walk has queued a write for a word, a later entry for the same
    word must be replayed unconditionally (its comparison would read
    the stale pre-walk value and could skip the final store of an
    A->B->A rewrite).  Poisoned cells are likewise always rewritten so
    the scrub's healing behaviour matches the plain walk.
    """
    poisoned = set(pm.media.poisoned_addrs())
    read_word = pm.media.read_word
    written: Set[int] = set()

    def redo_dcw(entry: "PersistedLog") -> bool:
        if entry.kind != "redo":
            return False
        addr = entry.addr
        if (
            addr in written
            or addr in poisoned
            or read_word(addr) != entry.new
        ):
            written.add(addr)
            return True
        return False

    return redo_dcw


# ----------------------------------------------------------------------
# The assembled design
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DesignSpec:
    """One catalog entry: a design assembled from the three axes.

    For the nine legacy designs the spec *describes* the hand-rolled
    behaviour (and routes recovery); for :class:`PolicyScheme`
    subclasses it *drives* the behaviour.  ``columnar_profile`` names
    the fused columnar kernel family (``None`` = the scheme runs on
    the exact engine, with an attributed fallback reason).
    """

    name: str
    summary: str
    granularity: GranularityPolicy
    fences: FenceSchedule
    recovery: RecoveryWalk
    columnar_profile: Optional[str] = None

    def catalog_row(self) -> Dict[str, object]:
        """Machine-readable axes, for docs/reports/tests."""
        return {
            "design": self.name,
            "granularity": self.granularity.name,
            "fences": self.fences.fences,
            "fence_schedule": self.fences.name,
            "recovery": self.recovery.mode,
            "columnar": self.columnar_profile or "fallback",
            "summary": self.summary,
        }


def seal_commit_fence(
    scheme: LoggingScheme, core: int, tid: int, txid: int, t: int
) -> int:
    """The shared commit-seal primitive: persist the ``(tid, txid)``
    tuple write-through at cycle ``t`` and return the fence stall (WPQ
    admission plus the wait for the tuple to persist).

    Extracted from the identical closing block of the six legacy
    write-ahead commit paths; callers add design-specific costs (e.g.
    the software baseline's explicit ``sfence`` cycles) on top.
    """
    words = scheme.region.persist_commit_tuple(tid, txid)
    ticket = scheme.mc.submit_write(
        t, words, kind="log", write_through=True, channel=core
    )
    return ticket.admission_stall + (ticket.persisted - t)


class PolicyScheme(LoggingScheme):
    """Generic redo-WAL transaction lifecycle driven by a
    :class:`DesignSpec`.

    The family's invariants (each delegated to one axis):

    * stores stage merged redo entries in a small on-chip buffer;
      overflow spills the oldest entries to the log region through the
      granularity policy;
    * uncommitted data never reaches the PM data region (evictions of
      open transactions' lines are dropped — the volatile cache holds
      the foreground copy, the log the durable one), so atomicity
      holds by construction and recovery never needs undo;
    * commit flushes the staged entries (granularity policy), walks
      the fence schedule, applies the new data in place, and truncates
      the transaction's logs;
    * a crash discards staged entries of uncommitted transactions; a
      crash exactly at commit flushes them with the commit tuple and
      lets the recovery walk replay the redo data.
    """

    #: Subclasses must bind a spec; the registry key mirrors it.
    spec: DesignSpec

    def __init__(self, system) -> None:
        super().__init__(system)
        cores = self.config.cores
        self._line_mask = ~(self.config.l1.line_size - 1)
        #: Per-core staging buffer: ``{addr: LogEntry}``, latest value
        #: per word (same-word updates merge, MorLog-style).
        self._staged: List[Dict[int, LogEntry]] = [{} for _ in range(cores)]
        #: Lines written by each core's open transaction.
        self._tx_lines: List[Set[int]] = [set() for _ in range(cores)]
        #: Latest value per word of the open transaction (the in-place
        #: update set at commit; staged entries alone would miss words
        #: whose only entries were spilled).
        self._tx_new: List[Dict[int, int]] = [{} for _ in range(cores)]
        #: Persist time of the open transaction's spilled log writes.
        self._tx_log_done: List[int] = [0] * cores
        self._in_tx = [False] * cores
        self._submit_write = self.mc.submit_write

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_tx_begin(self, core: int, tid: int, txid: int, now: int) -> int:
        self._in_tx[core] = True
        return 0

    def on_store(
        self,
        core: int,
        tid: int,
        txid: int,
        addr: int,
        old: int,
        new: int,
        now: int,
        access,
    ) -> int:
        staged = self._staged[core]
        stall = 0
        existing = staged.get(addr)
        if existing is not None:
            existing.merge_new(new)
        else:
            if len(staged) >= STAGING_ENTRIES:
                stall += self._spill(core, tid, now)
            staged[addr] = LogEntry(tid, txid, addr, old, new)
            self.stats.counters["policy.staged_entries"] += 1
        self._tx_new[core][addr] = new & WORD_MASK
        self._tx_lines[core].add(addr & self._line_mask)
        return stall

    def _spill(self, core: int, tid: int, now: int) -> int:
        """Staging overflow: flush the oldest entries to the log
        region (posted write-through; commit's log fence waits on it
        via ``_tx_log_done``)."""
        staged = self._staged[core]
        batch = [staged.pop(addr) for addr in list(staged)[:SPILL_BATCH]]
        self.stats.counters["policy.spills"] += 1
        stall, done = self._flush_entries(core, tid, batch, now)
        if done > self._tx_log_done[core]:
            self._tx_log_done[core] = done
        return stall

    def _flush_entries(
        self, core: int, tid: int, entries: List[LogEntry], now: int
    ) -> Tuple[int, int]:
        """Persist a batch through the granularity policy; returns
        ``(admission_stall, persist_completion)``."""
        if not entries:
            return 0, now
        counters = self.stats.counters
        submit_write = self._submit_write
        stall = 0
        done = now
        for mode, chunk in self.spec.granularity.pack(entries, counters):
            if mode == "run":
                requests = [self.region.persist_run(tid, chunk, kind="redo")]
            else:
                requests = self.region.persist_entries(
                    tid, chunk, kind="redo", per_request=2, request_span=64
                )
            for words in requests:
                ticket = submit_write(
                    now, words, kind="log", write_through=True, channel=core
                )
                stall += ticket.admission_stall
                if ticket.persisted > done:
                    done = ticket.persisted
        return stall, done

    def on_evictions(self, core: int, now: int, writebacks: Writebacks) -> int:
        """In-place data may not change before commit: evictions of
        open transactions' lines are dropped (the log region holds the
        durable copy); other lines write back normally."""
        stall = 0
        uncommitted: Set[int] = set()
        for c in range(self.config.cores):
            if self._in_tx[c]:
                uncommitted |= self._tx_lines[c]
        for line_base, words in writebacks:
            if line_base in uncommitted:
                continue
            ticket = self._submit_write(now, words, kind="data", channel=core)
            stall += ticket.admission_stall
        return stall

    def on_tx_end(self, core: int, tid: int, txid: int, now: int) -> int:
        sched = self.spec.fences
        staged = self._staged[core]
        entries = list(staged.values())
        staged.clear()
        stall, done = self._flush_entries(core, tid, entries, now)

        if sched.wait_log_persist:
            # Fence 1: drain until every log write of the transaction
            # (staged flush and earlier spills) has persisted.
            if self._tx_log_done[core] > done:
                done = self._tx_log_done[core]
            wait = done - now
            if wait > stall:
                stall = wait
            stall += sched.fence_cycles

        # The tuple fence (every schedule's last mandatory fence).
        stall += seal_commit_fence(self, core, tid, txid, now + stall)
        stall += sched.fence_cycles

        # In-place update: the committed new data goes straight to the
        # data region (the logs are never read back).
        new_data = self._tx_new[core]
        if new_data:
            mask = self._line_mask
            grouped: Dict[int, Dict[int, int]] = {}
            for addr, value in new_data.items():
                base = addr & mask
                group = grouped.get(base)
                if group is None:
                    grouped[base] = {addr: value}
                else:
                    group[addr] = value
            t = now + stall
            if sched.inplace_fence:
                # Fence 3: write through and wait for the data.
                data_done = t
                for words in grouped.values():
                    ticket = self._submit_write(
                        t, words, kind="data", write_through=True, channel=core
                    )
                    stall += ticket.admission_stall
                    if ticket.persisted > data_done:
                        data_done = ticket.persisted
                stall += (data_done - t) + sched.fence_cycles
            else:
                # Background drain: committed data rides the posted
                # write path (the ADR domain completes it on failure).
                for words in grouped.values():
                    ticket = self._submit_write(
                        t, words, kind="data", channel=core
                    )
                    stall += ticket.admission_stall
            self.stats.counters["policy.inplace_words"] += len(new_data)

        if sched.truncate_fence:
            # Fence 4: persist a truncation marker before dropping the
            # transaction's log records.
            stall += seal_commit_fence(self, core, tid, txid, now + stall)
            stall += sched.fence_cycles
        self.region.discard_tx(tid, txid)

        self._tx_new[core] = {}
        self._tx_lines[core].clear()
        self._tx_log_done[core] = 0
        self._in_tx[core] = False
        return stall

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------
    def on_crash(self, core_in_tx: Dict[int, Tuple[int, int]], now: int) -> None:
        """Uncommitted transactions' staged entries die with the
        power: their data never reached the PM region (evictions were
        dropped), so atomicity holds with no flush at all."""
        for staged in self._staged:
            staged.clear()

    def interrupted_commit(self, core: int, tid: int, txid: int, now: int) -> bool:
        """Crash exactly at commit: flush the staged redo entries and
        the commit tuple (the ADR domain completes the in-flight
        writes); recovery replays the redo data because the in-place
        update never ran (the cache died)."""
        staged = self._staged[core]
        entries = list(staged.values())
        staged.clear()
        self._flush_entries(core, tid, entries, now)
        words = self.region.persist_commit_tuple(tid, txid)
        self._submit_write(
            now, words, kind="log", write_through=True, channel=core
        )
        self._tx_new[core] = {}
        self._tx_lines[core].clear()
        self._tx_log_done[core] = 0
        self._in_tx[core] = False
        return True
