"""The evaluated logging designs (Section VI-A) and the policy catalog.

``Base``, ``FWB``, ``MorLog`` and ``LAD`` are the paper's comparison
points; Silo itself lives in :mod:`repro.core` because it is the
paper's contribution.  All designs implement the common
:class:`~repro.designs.scheme.LoggingScheme` interface and strictly
guarantee durability at transaction commit.

Every design carries a :class:`~repro.designs.policy.DesignSpec`
placing it on three orthogonal axes — granularity, fence schedule,
recovery walk.  The entries in :mod:`repro.designs.catalog` are built
*from* their specs via :class:`~repro.designs.policy.PolicyScheme`;
the legacy designs keep their hand-rolled hot paths (pinned
bit-identical by the design-fingerprint fixture) and use the spec for
recovery routing and catalog metadata.
"""

from repro.designs.scheme import LoggingScheme, SchemeRegistry
from repro.designs.policy import DesignSpec, PolicyScheme
from repro.designs.base import BaseScheme
from repro.designs.fwb import FWBScheme
from repro.designs.morlog import MorLogScheme
from repro.designs.lad import LADScheme
from repro.designs.swlog import SoftwareLogScheme
from repro.designs.wrap import WrAPScheme
from repro.designs.redu import ReDUScheme
from repro.designs.proteus import ProteusScheme
from repro.designs.catalog import (
    AGLogScheme,
    Quadra1FScheme,
    RedoLog4FScheme,
    Trinity2FScheme,
)

__all__ = [
    "LoggingScheme",
    "SchemeRegistry",
    "DesignSpec",
    "PolicyScheme",
    "BaseScheme",
    "FWBScheme",
    "MorLogScheme",
    "LADScheme",
    "SoftwareLogScheme",
    "WrAPScheme",
    "ReDUScheme",
    "ProteusScheme",
    "AGLogScheme",
    "Quadra1FScheme",
    "RedoLog4FScheme",
    "Trinity2FScheme",
]
