"""The evaluated logging designs (Section VI-A).

``Base``, ``FWB``, ``MorLog`` and ``LAD`` are the paper's comparison
points; Silo itself lives in :mod:`repro.core` because it is the
paper's contribution.  All designs implement the common
:class:`~repro.designs.scheme.LoggingScheme` interface and strictly
guarantee durability at transaction commit.
"""

from repro.designs.scheme import LoggingScheme, SchemeRegistry
from repro.designs.base import BaseScheme
from repro.designs.fwb import FWBScheme
from repro.designs.morlog import MorLogScheme
from repro.designs.lad import LADScheme
from repro.designs.swlog import SoftwareLogScheme
from repro.designs.wrap import WrAPScheme
from repro.designs.redu import ReDUScheme
from repro.designs.proteus import ProteusScheme

__all__ = [
    "LoggingScheme",
    "SchemeRegistry",
    "BaseScheme",
    "FWBScheme",
    "MorLogScheme",
    "LADScheme",
    "SoftwareLogScheme",
    "WrAPScheme",
    "ReDUScheme",
    "ProteusScheme",
]
