"""Common interface for every hardware atomic-durability design.

The simulation engine performs the cache access for each operation and
then hands control to the active scheme, which models the design's log
and persist behaviour.  Hooks return *extra stall cycles* charged to
the issuing core on top of the cache access latency, which is how
ordering constraints (Fig. 3) become visible in throughput (Fig. 12).

Every scheme must strictly guarantee atomic durability: after
``on_crash`` plus ``recover``, the PM data region must contain exactly
the writes of the committed transactions.  The property-based tests in
``tests/property`` enforce this for every design at every crash point.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Type

from repro.common.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.hierarchy import AccessResult
    from repro.core.recovery import RecoveryReport
    from repro.designs.policy import DesignSpec
    from repro.sim.system import System

#: ``[(line_base, {word_addr: value}), ...]`` leaving the cache hierarchy.
Writebacks = List[Tuple[int, Dict[int, int]]]


class LoggingScheme(ABC):
    """Base class for the five evaluated designs."""

    #: Registry key and display name (e.g. ``"silo"``).
    name: str = "abstract"

    #: The design's :class:`~repro.designs.policy.DesignSpec` — its
    #: position on the three policy axes (granularity, fence schedule,
    #: recovery walk) plus catalog metadata.  For the legacy designs
    #: the spec describes hard-wired behaviour and routes recovery;
    #: for :class:`~repro.designs.policy.PolicyScheme` subclasses it
    #: drives the whole lifecycle.  ``None`` only for ad-hoc test
    #: schemes.
    spec: Optional["DesignSpec"] = None

    def __init__(self, system: "System") -> None:
        self.system = system
        self.config = system.config
        self.stats = system.stats
        self.mc = system.mc
        self.pm = system.pm
        self.hierarchy = system.hierarchy
        self.region = system.region
        #: The run's observability holder, or ``None`` (the default);
        #: design hooks guard every use with one ``is not None`` check.
        self.obs = getattr(system, "obs", None)
        #: Memoized recovery report: :meth:`recover` must be
        #: idempotent, and the underlying log walk is not (it truncates
        #: the log region and re-applies words), so the first report is
        #: cached and returned on every later call.
        self._recovery_report: Optional["RecoveryReport"] = None

    # ------------------------------------------------------------------
    # Transaction lifecycle hooks (return extra stall cycles)
    # ------------------------------------------------------------------
    def on_tx_begin(self, core: int, tid: int, txid: int, now: int) -> int:
        return 0

    @abstractmethod
    def on_store(
        self,
        core: int,
        tid: int,
        txid: int,
        addr: int,
        old: int,
        new: int,
        now: int,
        access: "AccessResult",
    ) -> int:
        """One transactional CPU store (the cache was already updated)."""

    @abstractmethod
    def on_tx_end(self, core: int, tid: int, txid: int, now: int) -> int:
        """Commit: returns the design's commit stall (ordering cost)."""

    # ------------------------------------------------------------------
    # Cacheline evictions that reached the memory controller
    # ------------------------------------------------------------------
    def on_evictions(self, core: int, now: int, writebacks: Writebacks) -> int:
        """Dirty L3 victims heading to PM.  The default behaviour of an
        unmodified system: post them as data writes."""
        stall = 0
        for _, words in writebacks:
            ticket = self.mc.submit_write(now, words, kind="data", channel=core)
            stall += ticket.admission_stall
        return stall

    # ------------------------------------------------------------------
    # Rare cases
    # ------------------------------------------------------------------
    def on_crash(self, core_in_tx: Dict[int, Tuple[int, int]], now: int) -> None:
        """A power failure at cycle ``now``.  ``core_in_tx`` maps the
        cores currently inside a transaction to their ``(tid, txid)``.
        The scheme flushes whatever its battery covers; volatile caches
        are dropped by the engine afterwards."""

    def interrupted_commit(
        self, core: int, tid: int, txid: int, now: int
    ) -> bool:
        """A crash strikes exactly at commit, after ``Tx_end`` retired
        but before background persistence finished.  Returns ``True``
        if the transaction still counts as committed (a design that
        guarantees durability at commit must return ``True`` and make
        recovery reproduce the transaction)."""
        self.on_tx_end(core, tid, txid, now)
        return True

    def recover(self) -> "RecoveryReport":
        """Rebuild a consistent PM data region from the log region.

        Every design must return a :class:`RecoveryReport` — the crash
        harnesses and the fault-aware oracle read its corruption
        accounting.

        **Idempotent**: the recovery walk itself truncates the log
        region and issues redo/undo writes, so running it twice would
        double-apply words and report an empty second walk.  The first
        call therefore runs :meth:`_do_recover` and caches its report;
        every later call returns the *same* report object with no PM
        traffic.  Designs override :meth:`_do_recover`, never this.
        """
        if self._recovery_report is None:
            self._recovery_report = self._do_recover()
        return self._recovery_report

    def _do_recover(self) -> "RecoveryReport":
        """One actual recovery walk (called at most once per crash).

        The walk is the design's recovery axis: specs route through
        their :class:`~repro.designs.policy.RecoveryWalk`; spec-less
        ad-hoc schemes get the shared corruption-aware WAL walk with
        the standard redo/undo predicates.
        """
        if self.spec is not None:
            return self.spec.recovery.run(self.region, self.pm, scheme=self.name)
        # Imported lazily: repro.core imports the design modules, so a
        # top-level import here would be circular.
        from repro.core.recovery import wal_recover

        return wal_recover(self.region, self.pm, scheme=self.name)

    def finalize(self, now: int) -> int:
        """End of the workload: flush any remaining buffered state so
        the write-traffic accounting is complete.  Returns the cycle at
        which the flush is done."""
        return now


class SchemeRegistry:
    """Name -> scheme class registry used by the harness and CLI."""

    _schemes: Dict[str, Type[LoggingScheme]] = {}

    @classmethod
    def register(cls, scheme_cls: Type[LoggingScheme]) -> Type[LoggingScheme]:
        key = scheme_cls.name
        if key in cls._schemes and cls._schemes[key] is not scheme_cls:
            raise ConfigError(f"duplicate scheme name {key!r}")
        cls._schemes[key] = scheme_cls
        return scheme_cls

    @classmethod
    def create(cls, name: str, system: "System") -> LoggingScheme:
        try:
            scheme_cls = cls._schemes[name]
        except KeyError:
            raise cls.unknown_scheme_error(name) from None
        return scheme_cls(system)

    @classmethod
    def unknown_scheme_error(cls, name: str) -> ConfigError:
        """A :class:`ConfigError` for an unregistered design name,
        with a did-you-mean suggestion when a catalog entry is close
        (typos like ``aglogg`` or ``trinity-2f`` are far more common
        than genuinely novel names)."""
        import difflib

        known = sorted(cls._schemes)
        message = f"unknown scheme {name!r} (known: {', '.join(known)})"
        close = difflib.get_close_matches(name.lower(), known, n=1, cutoff=0.6)
        if close:
            message += f" — did you mean {close[0]!r}?"
        return ConfigError(message)

    @classmethod
    def names(cls) -> List[str]:
        return sorted(cls._schemes)

    @classmethod
    def factory(cls, name: str) -> Callable[["System"], LoggingScheme]:
        def make(system: "System") -> LoggingScheme:
            return cls.create(name, system)

        return make
