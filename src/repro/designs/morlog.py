"""MorLog: morphable hardware logging (Wei et al., ISCA 2020), as
configured in Section VI-A (delay-persistence commit disabled, so
durability holds at commit).

MorLog keeps a transaction's undo+redo logs in an on-chip buffer where
same-word updates merge — eliminating the *intermediate redo data*
that FWB writes out per store (its headline 30% write saving).  At
commit, the merged entries are flushed to the PM log region (two
packed entries per 64-byte request) and the transaction stalls until
they persist.  Data reaches PM through normal evictions; an eviction
is ordered after the flush of the entries covering the line.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.common.config import LogBufferConfig
from repro.designs.policy import (
    DeltaGranularity,
    DesignSpec,
    RecoveryWalk,
    TWO_FENCE_HW,
    seal_commit_fence,
)
from repro.designs.scheme import LoggingScheme, SchemeRegistry, Writebacks
from repro.hwlog.entry import LogEntry
from repro.hwlog.logbuffer import AppendResult, LogBuffer

#: MorLog's on-chip morph buffer: larger than Silo's log buffer because
#: it is the design's central structure (64 entries per core).
MORPH_BUFFER_ENTRIES = 64
#: Merged undo+redo entries packed per 64-byte log write.
ENTRIES_PER_REQUEST = 2

#: Enum member hoisted out of the per-store path.
_FULL = AppendResult.FULL


@SchemeRegistry.register
class MorLogScheme(LoggingScheme):
    """On-chip log morphing; commit flushes the merged logs."""

    name = "morlog"
    spec = DesignSpec(
        name="morlog",
        summary="on-chip log morphing; commit flushes merged deltas",
        granularity=DeltaGranularity(),
        fences=TWO_FENCE_HW,
        recovery=RecoveryWalk.wal(),
        columnar_profile="morlog",
    )

    def __init__(self, system) -> None:
        super().__init__(system)
        cores = self.config.cores
        self._line_mask = ~(self.config.l1.line_size - 1)
        buf_cfg = LogBufferConfig(
            entries=MORPH_BUFFER_ENTRIES,
            access_latency_cycles=self.config.log_buffer.access_latency_cycles,
        )
        self._bufs = [
            LogBuffer(
                buf_cfg,
                self.stats,
                name=f"morlog.core{c}",
                obs=self.obs,
                core=c,
            )
            for c in range(cores)
        ]
        #: Lines whose logs are still on chip (not yet persisted).
        self._unpersisted_lines: List[Set[int]] = [set() for _ in range(cores)]
        #: Persist time of flushed logs per line (eviction ordering).
        self._log_ready: Dict[int, int] = {}
        #: Lines written during the run, flushed at finalize.
        self._dirty_lines: List[Set[int]] = [set() for _ in range(cores)]
        #: Committed transactions whose logs await truncation.
        self._await_truncate: List[Tuple[int, int]] = []
        # Bound-method caches for the per-store path.
        self._buf_offer = [b.offer for b in self._bufs]
        self._submit_write = self.mc.submit_write
        self._region_persist = self.region.persist_entries

    def on_store(
        self,
        core: int,
        tid: int,
        txid: int,
        addr: int,
        old: int,
        new: int,
        now: int,
        access,
    ) -> int:
        entry = LogEntry(tid, txid, addr, old, new)
        offer = self._buf_offer[core]
        stall = 0
        if offer(entry) is _FULL:
            stall += self._flush_oldest(core, tid, now, count=ENTRIES_PER_REQUEST)
            if offer(entry) is _FULL:  # pragma: no cover
                raise AssertionError("morph buffer still full after flush")
        line = addr & self._line_mask
        self._unpersisted_lines[core].add(line)
        self._dirty_lines[core].add(line)
        return stall

    def _flush_oldest(self, core: int, tid: int, now: int, count: int) -> int:
        entries = self._bufs[core].pop_oldest(count)
        stall, _ = self._persist_entries(core, tid, entries, now)
        return stall

    def _persist_entries(
        self, core: int, tid: int, entries: List[LogEntry], now: int
    ) -> Tuple[int, int]:
        """Flush merged entries to the log region; returns
        ``(admission_stall, persist_completion)``."""
        if not entries:
            return 0, now
        requests = self._region_persist(
            tid,
            entries,
            kind="undo_redo",
            per_request=ENTRIES_PER_REQUEST,
            request_span=64,
        )
        stall = 0
        done = now
        submit_write = self._submit_write
        for words in requests:
            ticket = submit_write(
                now, words, kind="log", write_through=True, channel=core
            )
            stall += ticket.admission_stall
            persisted = ticket.persisted
            if persisted > done:
                done = persisted
        log_ready = self._log_ready
        ready_get = log_ready.get
        discard = self._unpersisted_lines[core].discard
        for entry in entries:
            line = entry.addr & -64
            if done > ready_get(line, 0):
                log_ready[line] = done
            discard(line)
        obs = self.obs
        if obs is not None and obs.trace is not None:
            obs.trace.emit(
                now,
                "morlog.log_flush",
                core,
                dur=done - now,
                args={"entries": len(entries)},
            )
        return stall, done

    def on_evictions(self, core: int, now: int, writebacks: Writebacks) -> int:
        """An eviction whose logs are still on chip forces them out
        first (log-before-data), then the data write follows."""
        stall = 0
        for line_base, words in writebacks:
            when = now
            for buf_core in range(self.config.cores):
                if line_base not in self._unpersisted_lines[buf_core]:
                    continue
                buf = self._bufs[buf_core]
                pending = [
                    e for e in list(buf.entries()) if e.line_addr == line_base
                ]
                for e in pending:
                    buf.remove(e.addr)
                if pending:
                    flush_stall, _ = self._persist_entries(
                        buf_core, pending[0].tid, pending, now
                    )
                    stall += flush_stall
            # The log flush was submitted first; the FIFO write path
            # persists it before the data write-back.
            ticket = self.mc.submit_write(when, words, kind="data", channel=core)
            stall += ticket.admission_stall
        return stall

    def on_tx_end(self, core: int, tid: int, txid: int, now: int) -> int:
        # Commit waits for flushing all on-chip logs of the transaction.
        entries = self._bufs[core].drain()
        flush_stall, done = self._persist_entries(core, tid, entries, now)
        stall = flush_stall + max(0, done - now)
        stall += seal_commit_fence(self, core, tid, txid, now + stall)
        self._await_truncate.append((tid, txid))
        return stall

    def on_crash(self, core_in_tx: Dict[int, Tuple[int, int]], now: int) -> None:
        """MorLog's buffer sits in the ADR domain: its contents are
        flushed to the log region on a power failure."""
        for core, buf in enumerate(self._bufs):
            entries = buf.drain()
            if entries:
                self._persist_entries(core, entries[0].tid, entries, now)

    def interrupted_commit(self, core: int, tid: int, txid: int, now: int) -> bool:
        # Tx_end flushes the logs; the ADR domain completes the
        # in-flight writes, so durability holds at commit.
        self.on_tx_end(core, tid, txid, now)
        return True

    def _truncate_awaiting(self) -> None:
        """All committed data is persistent: truncate covered logs.
        Shared by :meth:`finalize` and the columnar engine's fused
        finalize kernel (which flushes the dirty lines itself and
        leaves ``finalize`` a no-op over cleared state)."""
        for tid, txid in self._await_truncate:
            self.region.discard_tx(tid, txid)
        self._await_truncate.clear()

    def finalize(self, now: int) -> int:
        for core in range(self.config.cores):
            for line in sorted(self._dirty_lines[core]):
                words = self.hierarchy.writeback_line(core, line)
                if words:
                    self.mc.submit_write(now, words, kind="data", channel=core)
            self._dirty_lines[core].clear()
        self._truncate_awaiting()
        return now
