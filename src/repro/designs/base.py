"""The hardware-logging baseline of Section VI-A.

``Base`` conservatively flushes an undo+redo log entry *and* the
updated cacheline to PM for every transactional store, in order (log
first, then data).  Commit waits for nothing further (everything was
persisted per store) beyond the commit ID tuple.  This is the
worst-case reference: every write costs two synchronous PM requests,
which is why all Fig. 11/12 results are normalized to it.
"""

from __future__ import annotations

from repro.designs.policy import (
    DesignSpec,
    RecoveryWalk,
    TWO_FENCE_HW,
    WordGranularity,
    seal_commit_fence,
)
from repro.designs.scheme import LoggingScheme, SchemeRegistry


@SchemeRegistry.register
class BaseScheme(LoggingScheme):
    """Flush one undo+redo log and one cacheline per write."""

    name = "base"
    spec = DesignSpec(
        name="base",
        summary="per-store undo+redo log and cacheline flush",
        granularity=WordGranularity(),
        fences=TWO_FENCE_HW,
        recovery=RecoveryWalk.wal(),
        columnar_profile="wal_base",
    )

    def __init__(self, system) -> None:
        super().__init__(system)
        self._line_mask = ~(self.config.l1.line_size - 1)
        #: Persist time of every log of the open transaction, per core.
        self._tx_log_done = [0] * self.config.cores
        # Bound-method caches for the per-store path.
        self._persist_word_log = self.region.persist_word_log
        self._submit_write = self.mc.submit_write
        self._writeback_line = self.hierarchy.writeback_line

    def on_store(
        self,
        core: int,
        tid: int,
        txid: int,
        addr: int,
        old: int,
        new: int,
        now: int,
        access,
    ) -> int:
        # 1. Persist the undo+redo log entry (one 64B-aligned flush).
        words = self._persist_word_log(tid, txid, addr, old, new)
        ticket = self._submit_write(
            now, words, kind="log", write_through=True, channel=core
        )
        stall = ticket.admission_stall
        log_done = ticket.persisted  # always past ``now``

        # 2. Flush the updated cacheline, ordered after the log.  The
        # flush is posted right away: the MC's FIFO write path already
        # services the log request first, so the order costs no
        # bandwidth — only the commit-time wait below remains.
        line_words = self._writeback_line(core, addr & self._line_mask)
        if line_words:
            ticket = self._submit_write(
                now, line_words, kind="data", write_through=True, channel=core
            )
            stall += ticket.admission_stall
        if log_done > self._tx_log_done[core]:
            self._tx_log_done[core] = log_done
        return stall

    def on_tx_end(self, core: int, tid: int, txid: int, now: int) -> int:
        # The undo+redo commit rule: wait for all of the transaction's
        # logs to persist, then seal the ID tuple.
        stall = max(0, self._tx_log_done[core] - now)
        stall += seal_commit_fence(self, core, tid, txid, now + stall)
        self._tx_log_done[core] = 0
        # Log truncation after commit.
        self.region.discard_tx(tid, txid)
        return stall

    def interrupted_commit(self, core: int, tid: int, txid: int, now: int) -> bool:
        # Everything is already persisted; sealing the tuple is the
        # only commit work and the ADR domain completes it.
        self.on_tx_end(core, tid, txid, now)
        return True
