"""Software undo+redo logging (Fig. 1a) — the motivational baseline.

Not one of the paper's five evaluated hardware designs, but the
starting point of its argument (Section II-B): a software WAL built
from ``clwb`` + ``sfence``.  For every transactional store the *CPU
itself*:

1. constructs a log entry in the cache (extra stores to the log
   buffer's cachelines — the cache pollution of Section II-C),
2. flushes the entry (``clwb``) and fences — a synchronous persist on
   the critical path,
3. performs the data store, flushes it and fences again before commit.

All of this executes inline, which is why hardware logging exists: the
paper cites up to a 70% throughput loss versus hardware undo+redo
logging.  Including it lets the repository demonstrate the full
motivation chain: swlog << base < fwb < morlog < lad < silo.
"""

from __future__ import annotations

from repro.designs.policy import (
    DesignSpec,
    FENCE_CYCLES,
    RecoveryWalk,
    TWO_FENCE,
    WordGranularity,
    seal_commit_fence,
)
from repro.designs.scheme import LoggingScheme, SchemeRegistry
from repro.hwlog.entry import LogEntry

#: Cycles for the CPU to construct a log entry in its cache (several
#: stores plus address arithmetic, all inline).
LOG_BUILD_CYCLES = 12


@SchemeRegistry.register
class SoftwareLogScheme(LoggingScheme):
    """clwb/sfence write-ahead logging executed by the CPU."""

    name = "swlog"
    spec = DesignSpec(
        name="swlog",
        summary="clwb/sfence software WAL executed inline by the CPU",
        granularity=WordGranularity(),
        fences=TWO_FENCE,
        recovery=RecoveryWalk.wal(),
        columnar_profile="swlog",
    )

    def __init__(self, system) -> None:
        super().__init__(system)
        self._line_mask = ~(self.config.l1.line_size - 1)
        self._tx_data_done = [0] * self.config.cores

    def on_store(
        self,
        core: int,
        tid: int,
        txid: int,
        addr: int,
        old: int,
        new: int,
        now: int,
        access,
    ) -> int:
        # 1. Build the log entry in cache (inline CPU work + pollution).
        stall = LOG_BUILD_CYCLES
        entry = LogEntry(tid, txid, addr, old, new)
        requests = self.region.persist_entries(
            tid, [entry], kind="undo_redo", per_request=1, request_span=64
        )
        # 2. clwb the log entry + sfence: wait for the persist.
        t = now + stall
        done = t
        for words in requests:
            ticket = self.mc.submit_write(
                t, words, kind="log", write_through=True, channel=core
            )
            stall += ticket.admission_stall
            done = max(done, ticket.persisted)
        stall += (done - t) + FENCE_CYCLES

        # 3. clwb the updated data line + sfence (undo logging needs
        # all data persisted before commit; doing it per store keeps
        # the software simple — and slow, as in real PMDK-style code).
        line_words = self.hierarchy.writeback_line(core, addr & self._line_mask)
        if line_words:
            t = now + stall
            ticket = self.mc.submit_write(
                t, line_words, kind="data", write_through=True, channel=core
            )
            stall += ticket.admission_stall + (ticket.persisted - t)
        stall += FENCE_CYCLES
        self._tx_data_done[core] = max(self._tx_data_done[core], now + stall)
        return stall

    def on_tx_end(self, core: int, tid: int, txid: int, now: int) -> int:
        # Everything already persisted per store; seal the commit.
        stall = max(0, self._tx_data_done[core] - now)
        stall += seal_commit_fence(self, core, tid, txid, now + stall) + FENCE_CYCLES
        self._tx_data_done[core] = 0
        self.region.discard_tx(tid, txid)
        return stall

    def interrupted_commit(self, core: int, tid: int, txid: int, now: int) -> bool:
        self.on_tx_end(core, tid, txid, now)
        return True
