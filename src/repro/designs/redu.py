"""ReDU: redo logging with a DRAM cacheline buffer (Jeong et al.,
MICRO 2018) — Fig. 2c.

ReDU avoids WrAP's log-read-back by buffering the *modified
cachelines* in DRAM; after commit those cachelines directly update the
PM data region (Section II-E).  Redo logs are still written to the log
region per store, and the DRAM buffer also supports log coalescing —
modelled here by packing two merged entries per log write like MorLog.

Crash semantics: the DRAM buffer is volatile, so uncommitted data
never reaches PM (atomicity by construction); committed transactions
whose DRAM lines had not drained are replayed from their redo logs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.config import LogBufferConfig
from repro.designs.policy import (
    DeltaGranularity,
    DesignSpec,
    RecoveryWalk,
    TWO_FENCE_HW,
    seal_commit_fence,
)
from repro.designs.scheme import LoggingScheme, SchemeRegistry, Writebacks
from repro.hwlog.entry import LogEntry
from repro.hwlog.logbuffer import AppendResult, LogBuffer

#: DRAM-side log staging buffer (coalesces same-word updates before
#: the log write, ReDU's "log coalescing").
STAGING_ENTRIES = 64
#: Cycles for a DRAM buffer access on the commit path.
DRAM_ACCESS_CYCLES = 30


@SchemeRegistry.register
class ReDUScheme(LoggingScheme):
    """Redo logging + DRAM-buffered direct data updates."""

    name = "redu"
    spec = DesignSpec(
        name="redu",
        summary="coalesced redo logs + DRAM-buffered direct updates",
        granularity=DeltaGranularity(),
        fences=TWO_FENCE_HW,
        recovery=RecoveryWalk.wal(),
    )

    def __init__(self, system) -> None:
        super().__init__(system)
        cores = self.config.cores
        self._line_mask = ~(self.config.l1.line_size - 1)
        staging_cfg = LogBufferConfig(
            entries=STAGING_ENTRIES,
            access_latency_cycles=DRAM_ACCESS_CYCLES,
        )
        self._staging = [
            LogBuffer(
                staging_cfg,
                self.stats,
                name=f"redu.core{c}",
                obs=self.obs,
                core=c,
            )
            for c in range(cores)
        ]
        #: DRAM buffer of modified lines per open transaction:
        #: ``{line: {word: value}}`` per core.
        self._dram: List[Dict[int, Dict[int, int]]] = [
            {} for _ in range(cores)
        ]
        self._tx_log_done = [0] * cores
        self._in_tx = [False] * cores

    def on_tx_begin(self, core: int, tid: int, txid: int, now: int) -> int:
        self._in_tx[core] = True
        return 0

    def on_store(
        self,
        core: int,
        tid: int,
        txid: int,
        addr: int,
        old: int,
        new: int,
        now: int,
        access,
    ) -> int:
        entry = LogEntry(tid, txid, addr, old, new)
        staging = self._staging[core]
        stall = 0
        if staging.offer(entry) is AppendResult.FULL:
            stall += self._flush_staging(core, tid, now, count=2)
            staging.offer(entry)
        line = addr & self._line_mask
        self._dram[core].setdefault(line, {})[addr] = new
        return stall

    def _flush_staging(self, core: int, tid: int, now: int, count: int) -> int:
        entries = self._staging[core].pop_oldest(count)
        return self._persist_logs(core, tid, entries, now)

    def _persist_logs(
        self, core: int, tid: int, entries: List[LogEntry], now: int
    ) -> int:
        if not entries:
            return 0
        requests = self.region.persist_entries(
            tid, entries, kind="redo", per_request=2, request_span=64
        )
        stall = 0
        for words in requests:
            ticket = self.mc.submit_write(
                now, words, kind="log", write_through=True, channel=core
            )
            stall += ticket.admission_stall
            self._tx_log_done[core] = max(
                self._tx_log_done[core], ticket.persisted
            )
        return stall

    def on_evictions(self, core: int, now: int, writebacks: Writebacks) -> int:
        """Evictions of uncommitted lines land in the DRAM buffer, not
        PM (the data region may only change after commit)."""
        stall = 0
        captured = set()
        for c in range(self.config.cores):
            if self._in_tx[c]:
                captured |= set(self._dram[c])
        for line_base, words in writebacks:
            if line_base in captured:
                continue  # the DRAM buffer already holds these words
            ticket = self.mc.submit_write(now, words, kind="data", channel=core)
            stall += ticket.admission_stall
        return stall

    def on_tx_end(self, core: int, tid: int, txid: int, now: int) -> int:
        # Flush the staged (coalesced) logs and wait for them: redo
        # commit rule.
        stall = self._persist_logs(
            core, tid, self._staging[core].drain(), now
        )
        stall += max(0, self._tx_log_done[core] - now)
        stall += seal_commit_fence(self, core, tid, txid, now + stall)

        # The DRAM-buffered cachelines now update the data region
        # directly — no log read-back (ReDU's improvement over WrAP).
        t = now + stall + DRAM_ACCESS_CYCLES
        for line, line_words in self._dram[core].items():
            self.mc.submit_write(t, line_words, kind="data", channel=core)
        self._dram[core].clear()
        # Data durable: truncate this transaction's logs.
        self.region.discard_tx(tid, txid)
        self._tx_log_done[core] = 0
        self._in_tx[core] = False
        return stall

    def interrupted_commit(self, core: int, tid: int, txid: int, now: int) -> bool:
        # Persist any staged logs plus the tuple; recovery replays the
        # redo data (the DRAM buffer dies with the power).
        self._persist_logs(core, tid, self._staging[core].drain(), now)
        words = self.region.persist_commit_tuple(tid, txid)
        self.mc.submit_write(
            now, words, kind="log", write_through=True, channel=core
        )
        self._dram[core].clear()
        self._in_tx[core] = False
        return True
