"""LAD: logless atomic durability (Gupta et al., MICRO 2019), as
configured in Section VI-A (proactive flushing enabled).

LAD keeps no logs in the common case.  Every cacheline a transaction
updates claims a slot in a persistent capture buffer inside the memory
controller (proactive flushing streams the line into the MC while the
transaction runs); the line is withheld from the PM data region until
commit.  Commit is two-phase: **Prepare** flushes the transaction's
remaining dirty L1 lines down the on-chip hierarchy into the MC,
stalling the CPU per line — LAD's ordering constraint — and **Commit**
is a message after which the captured lines drain to PM in the
background.

When the capture buffer is full (concurrent write sets exceeding its
64 lines), LAD falls back to a slow mode for the overflowing lines: it
reads their old data from PM, persists undo logs per store, and lets
the data through normally (Section V, point 3).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.designs.policy import (
    DesignSpec,
    LineGranularity,
    ONE_FENCE_HW,
    RecoveryWalk,
)
from repro.designs.scheme import LoggingScheme, SchemeRegistry, Writebacks
from repro.hwlog.entry import LogEntry

#: Capacity (in cachelines) of LAD's MC capture buffer; matches the
#: 64-entry ADR queue of Table II.
CAPTURE_LINES = 64
#: Cost of flushing one dirty L1 line down the hierarchy to the MC at
#: Prepare: L1 access (4) + L2 (12) + L3 (28) + bus transfer into the
#: MC (20).  The Prepare phase stalls the CPU per line (Section V:
#: "the transaction commit in LAD needs to wait for flushing the
#: updated L1 cachelines to LLC and finally to MC").
PREPARE_CYCLES_PER_LINE = 64


@SchemeRegistry.register
class LADScheme(LoggingScheme):
    """Logless atomic durability through MC buffering."""

    name = "lad"
    spec = DesignSpec(
        name="lad",
        summary="logless MC line capture; two-phase Prepare/Commit",
        granularity=LineGranularity(),
        fences=ONE_FENCE_HW,
        recovery=RecoveryWalk.wal(),
        columnar_profile="lad",
    )

    def __init__(self, system) -> None:
        super().__init__(system)
        cores = self.config.cores
        self._line_mask = ~(self.config.l1.line_size - 1)
        #: Lines holding a capture-buffer slot (across all cores).
        self._slots: Set[int] = set()
        #: Captured (evicted-before-commit) line contents in the MC.
        self._captured: Dict[int, Dict[int, int]] = {}
        #: Lines written by each core's open transaction.
        self._tx_lines: List[Set[int]] = [set() for _ in range(cores)]
        #: Lines that overflowed into the undo-logging slow mode.
        self._fallback_lines: List[Set[int]] = [set() for _ in range(cores)]
        self._in_tx = [False] * cores
        self._fallback_txs: Set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------
    def on_tx_begin(self, core: int, tid: int, txid: int, now: int) -> int:
        self._in_tx[core] = True
        return 0

    def on_store(
        self,
        core: int,
        tid: int,
        txid: int,
        addr: int,
        old: int,
        new: int,
        now: int,
        access,
    ) -> int:
        line = addr & self._line_mask
        stall = 0
        tx_lines = self._tx_lines[core]
        if line not in tx_lines:
            tx_lines.add(line)
            if len(self._slots) < CAPTURE_LINES:
                self._slots.add(line)
                self.stats.counters["lad.captured_lines"] += 1
            else:
                # Slow mode: fetch the old line from PM for undo logging.
                self._fallback_lines[core].add(line)
                self._fallback_txs.add((tid, txid))
                self.stats.add("lad.fallbacks")
                read_done = self.mc.submit_read(now, line, channel=core)
                stall += read_done - now
        if line in self._fallback_lines[core]:
            # Persist an undo log entry before the data may reach PM.
            entry = LogEntry(tid, txid, addr, old, new)
            requests = self.region.persist_entries(
                tid, [entry], kind="undo", per_request=2, request_span=64
            )
            for words in requests:
                ticket = self.mc.submit_write(
                    now, words, kind="log", write_through=True, channel=core
                )
                stall += ticket.admission_stall + (ticket.persisted - now)
        return stall

    def on_tx_end(self, core: int, tid: int, txid: int, now: int) -> int:
        # Prepare: flush the transaction's dirty L1 lines into the MC,
        # stalling the CPU for each (LAD's commit-path ordering cost).
        stall = 0
        captured_words: List[Dict[int, int]] = []
        for line in sorted(self._tx_lines[core]):
            words = self.hierarchy.writeback_line(core, line)
            merged = self._captured.pop(line, None)
            if words or merged:
                stall += PREPARE_CYCLES_PER_LINE
                combined = dict(merged or {})
                combined.update(words or {})
                captured_words.append(combined)
        obs = self.obs
        if obs is not None and captured_words:
            if obs.trace is not None:
                obs.trace.emit(
                    now,
                    "lad.prepare",
                    core,
                    dur=stall,
                    args={"lines": len(captured_words)},
                )
            if obs.metrics is not None:
                obs.metrics.record("lad.prepare_lines", len(captured_words))
        # Commit: a message marks the lines committed; they drain to
        # the PM data region in the background.
        stall += self.config.commit_handshake_cycles
        t = now + stall
        for words in captured_words:
            ticket = self.mc.submit_write(t, words, kind="data", channel=core)
            stall += ticket.admission_stall
        for line in self._tx_lines[core]:
            self._slots.discard(line)
        if (tid, txid) in self._fallback_txs:
            self._fallback_txs.discard((tid, txid))
            self.region.discard_tx(tid, txid)
        self._tx_lines[core].clear()
        self._fallback_lines[core].clear()
        self._in_tx[core] = False
        return stall

    # ------------------------------------------------------------------
    # Evictions: uncommitted captured lines stay inside the MC
    # ------------------------------------------------------------------
    def on_evictions(self, core: int, now: int, writebacks: Writebacks) -> int:
        stall = 0
        for line_base, words in writebacks:
            if line_base in self._slots:
                self._captured.setdefault(line_base, {}).update(words)
            else:
                # Fallback lines (undo already persisted) and lines of
                # committed transactions go to PM normally.
                ticket = self.mc.submit_write(now, words, kind="data", channel=core)
                stall += ticket.admission_stall
        return stall

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------
    def on_crash(self, core_in_tx: Dict[int, Tuple[int, int]], now: int) -> None:
        """Uncommitted captured lines are simply discarded: they never
        reached the PM data region, so atomicity holds by construction
        for them; slow-mode lines are covered by their undo logs."""
        self._captured.clear()
        self._slots.clear()

    def interrupted_commit(self, core: int, tid: int, txid: int, now: int) -> bool:
        # Commit is a message; Prepare already moved everything into
        # the persistent MC, which drains on the failure.
        self.on_tx_end(core, tid, txid, now)
        return True
