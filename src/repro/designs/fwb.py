"""FWB: "steal but no force" undo+redo logging (Ogleari et al.,
HPCA 2018), as configured in Section VI-A.

Per write, an undo+redo log entry is produced and sent towards PM in
the background, but it is *forced* ahead of the corresponding data:
a cacheline may only be written back once every log entry covering it
has persisted.  Commit waits for all of the transaction's log entries
to persist (undo+redo commit rule, Fig. 3).  Data reaches PM through
normal evictions plus a periodic cache force-write-back (every
3,000,000 cycles in the paper's configuration).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.designs.policy import (
    DesignSpec,
    RecoveryWalk,
    TWO_FENCE_HW,
    WordGranularity,
    seal_commit_fence,
)
from repro.designs.scheme import LoggingScheme, SchemeRegistry, Writebacks

#: Cache force-write-back interval in cycles (Section VI-A).
FWB_INTERVAL_CYCLES = 3_000_000

#: Lines written back per force-write-back event.  Real FWB walks
#: cache frames gradually; flushing an unbounded backlog in one burst
#: would stall the triggering store behind thousands of writes.
FWB_LINES_PER_EPOCH = 128


@SchemeRegistry.register
class FWBScheme(LoggingScheme):
    """Per-write undo+redo logging with log-before-data forcing."""

    name = "fwb"
    spec = DesignSpec(
        name="fwb",
        summary="background undo+redo logs forced ahead of data",
        granularity=WordGranularity(),
        fences=TWO_FENCE_HW,
        recovery=RecoveryWalk.wal(),
        columnar_profile="wal_fwb",
    )

    def __init__(self, system) -> None:
        super().__init__(system)
        cores = self.config.cores
        self._line_mask = ~(self.config.l1.line_size - 1)
        #: Per-line time at which its most recent log entry persists.
        self._log_ready: Dict[int, int] = {}
        #: Persist time of every log of the open transaction, per core.
        self._tx_log_done: List[int] = [0] * cores
        #: Lines written since the last force-write-back, per core.
        self._dirty_lines: List[Set[int]] = [set() for _ in range(cores)]
        self._owner: Dict[int, int] = {}
        self._last_fwb = 0
        #: Committed transactions whose logs await truncation: they can
        #: be discarded once a force-write-back persists their data.
        self._await_truncate: List[Tuple[int, int]] = []
        # Bound-method caches for the per-store path.
        self._persist_word_log = self.region.persist_word_log
        self._submit_write = self.mc.submit_write

    def on_store(
        self,
        core: int,
        tid: int,
        txid: int,
        addr: int,
        old: int,
        new: int,
        now: int,
        access,
    ) -> int:
        words = self._persist_word_log(tid, txid, addr, old, new)
        ticket = self._submit_write(
            now, words, kind="log", write_through=True, channel=core
        )
        stall = ticket.admission_stall
        line = addr & self._line_mask
        persisted = ticket.persisted
        if persisted > self._log_ready.get(line, 0):
            self._log_ready[line] = persisted
        if persisted > self._tx_log_done[core]:
            self._tx_log_done[core] = persisted
        self._dirty_lines[core].add(line)
        self._owner[line] = core
        stall += self._maybe_force_writeback(core, now)
        return stall

    def _maybe_force_writeback(self, core: int, now: int) -> int:
        """Periodic cache force-write-back of this core's dirty lines."""
        if now - self._last_fwb < FWB_INTERVAL_CYCLES:
            return 0
        self._last_fwb = now
        stall = 0
        budget = FWB_LINES_PER_EPOCH
        for victim_core in range(self.config.cores):
            flushed, cost = self._flush_core_lines(victim_core, now, budget)
            stall += cost
            budget -= flushed
            if budget <= 0:
                break
        obs = self.obs
        if obs is not None and obs.trace is not None:
            obs.trace.emit(
                now,
                "fwb.force_writeback",
                core,
                dur=stall,
                args={"lines": FWB_LINES_PER_EPOCH - budget},
            )
        if all(not lines for lines in self._dirty_lines):
            # Everything written so far is persistent: the committed
            # transactions' logs are no longer needed (log truncation).
            self._truncate_awaiting()
        return stall

    def _flush_core_lines(
        self, core: int, now: int, limit: Optional[int] = None
    ) -> Tuple[int, int]:
        """Write back up to ``limit`` of the core's dirty lines; returns
        ``(lines_flushed, stall)``."""
        stall = 0
        flushed = 0
        for line in sorted(self._dirty_lines[core]):
            if limit is not None and flushed >= limit:
                break
            self._dirty_lines[core].discard(line)
            flushed += 1
            words = self.hierarchy.writeback_line(core, line)
            if not words:
                continue
            # Log-before-data: the covering logs were submitted
            # earlier, and the FIFO write path persists them first.
            ticket = self.mc.submit_write(now, words, kind="data", channel=core)
            stall += ticket.admission_stall
        return flushed, stall

    def on_evictions(self, core: int, now: int, writebacks: Writebacks) -> int:
        """A data write-back is ordered after its logs; the logs were
        submitted at store time, so the FIFO write path suffices."""
        stall = 0
        for line_base, words in writebacks:
            ticket = self.mc.submit_write(now, words, kind="data", channel=core)
            stall += ticket.admission_stall
        return stall

    def on_tx_end(self, core: int, tid: int, txid: int, now: int) -> int:
        # Commit waits for every log of the transaction to persist.
        stall = max(0, self._tx_log_done[core] - now)
        stall += seal_commit_fence(self, core, tid, txid, now + stall)
        self._tx_log_done[core] = 0
        self._await_truncate.append((tid, txid))
        return stall

    def interrupted_commit(self, core: int, tid: int, txid: int, now: int) -> bool:
        # The ADR domain finishes the already-submitted log writes and
        # the tuple; recovery replays the redo data for durability.
        self.on_tx_end(core, tid, txid, now)
        return True

    def _truncate_awaiting(self) -> None:
        """Truncate the committed transactions whose data is now
        persistent.  Shared by :meth:`finalize`, the forced-writeback
        epoch and the columnar engine's fused finalize kernel (which
        flushes the dirty lines itself and leaves ``finalize`` a no-op
        over cleared state)."""
        for tid, txid in self._await_truncate:
            self.region.discard_tx(tid, txid)
        self._await_truncate.clear()

    def finalize(self, now: int) -> int:
        """Flush remaining dirty data so write accounting is complete,
        and truncate the now-covered committed transactions' logs."""
        for core in range(self.config.cores):
            self._flush_core_lines(core, now)
        self._truncate_awaiting()
        return now
