"""Proteus: software-supported hardware undo logging (Shin et al.,
MICRO 2017) — Fig. 2d.

Proteus keeps undo logs in an on-chip *log pending queue* and discards
them after commit instead of writing them to PM — except that

* a dirty cacheline evicted before commit forces its covering undo
  logs out first (they are now needed for recovery), and
* the transaction commit **waits for flushing the updated cachelines**
  to the data region, with the last log entry flushed to mark the
  commit (Sections I and II-E: "the transaction commit needs to wait
  for flushing the updated cachelines, and the last log entry in each
  transaction is flushed to indicate the commit").

That data-flush wait is the ordering constraint Silo removes.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.common.config import LogBufferConfig
from repro.designs.policy import (
    DesignSpec,
    RecoveryWalk,
    TWO_FENCE_HW,
    WordGranularity,
    seal_commit_fence,
)
from repro.designs.scheme import LoggingScheme, SchemeRegistry, Writebacks
from repro.hwlog.entry import LogEntry
from repro.hwlog.logbuffer import AppendResult, LogBuffer

#: Capacity of the log pending queue per core.
PENDING_ENTRIES = 64


@SchemeRegistry.register
class ProteusScheme(LoggingScheme):
    """On-chip undo logs, discarded at commit; commit flushes data."""

    name = "proteus"
    spec = DesignSpec(
        name="proteus",
        summary="on-chip undo queue; commit flushes data synchronously",
        granularity=WordGranularity(),
        fences=TWO_FENCE_HW,
        recovery=RecoveryWalk.wal(),
    )

    def __init__(self, system) -> None:
        super().__init__(system)
        cores = self.config.cores
        self._line_mask = ~(self.config.l1.line_size - 1)
        queue_cfg = LogBufferConfig(entries=PENDING_ENTRIES)
        self._pending = [
            LogBuffer(
                queue_cfg,
                self.stats,
                name=f"proteus.core{c}",
                merging=False,
                obs=self.obs,
                core=c,
            )
            for c in range(cores)
        ]
        #: Lines written by the open transaction, per core.
        self._tx_lines: List[Set[int]] = [set() for _ in range(cores)]
        self._in_tx = [False] * cores

    def on_tx_begin(self, core: int, tid: int, txid: int, now: int) -> int:
        self._in_tx[core] = True
        return 0

    def on_store(
        self,
        core: int,
        tid: int,
        txid: int,
        addr: int,
        old: int,
        new: int,
        now: int,
        access,
    ) -> int:
        entry = LogEntry(tid, txid, addr, old, new)
        pending = self._pending[core]
        stall = 0
        if pending.offer(entry) is AppendResult.FULL:
            stall += self._spill_pending(core, tid, now, count=4)
            pending.offer(entry)
        self._tx_lines[core].add(addr & self._line_mask)
        return stall

    def _spill_pending(self, core: int, tid: int, now: int, count: int) -> int:
        entries = self._pending[core].pop_oldest(count)
        return self._flush_undo(core, tid, entries, now)

    def _flush_undo(
        self, core: int, tid: int, entries: List[LogEntry], now: int
    ) -> int:
        if not entries:
            return 0
        requests = self.region.persist_entries(
            tid, entries, kind="undo", per_request=2, request_span=64
        )
        stall = 0
        for words in requests:
            ticket = self.mc.submit_write(
                now, words, kind="log", write_through=True, channel=core
            )
            stall += ticket.admission_stall
        return stall

    def on_evictions(self, core: int, now: int, writebacks: Writebacks) -> int:
        """A pre-commit eviction forces the covering undo logs out
        first (they become recovery state), then the data follows."""
        stall = 0
        for line_base, words in writebacks:
            for c in range(self.config.cores):
                if not self._in_tx[c] or line_base not in self._tx_lines[c]:
                    continue
                pending = self._pending[c]
                covering = [
                    e for e in list(pending.entries()) if e.line_addr == line_base
                ]
                for e in covering:
                    pending.remove(e.addr)
                if covering:
                    stall += self._flush_undo(c, covering[0].tid, covering, now)
            ticket = self.mc.submit_write(now, words, kind="data", channel=core)
            stall += ticket.admission_stall
        return stall

    def on_tx_end(self, core: int, tid: int, txid: int, now: int) -> int:
        # The ordering constraint: commit waits for flushing every
        # updated cacheline of the transaction to the data region.
        stall = 0
        done = now
        for line in sorted(self._tx_lines[core]):
            words = self.hierarchy.writeback_line(core, line)
            if not words:
                continue
            ticket = self.mc.submit_write(
                now, words, kind="data", write_through=True, channel=core
            )
            stall += ticket.admission_stall
            done = max(done, ticket.persisted)
        stall = max(stall, done - now)
        # The last log entry is flushed to indicate the commit.
        stall += seal_commit_fence(self, core, tid, txid, now + stall)
        # Data durable: pending undo logs (and any spilled ones) die.
        self._pending[core].drain()
        self.region.discard_tx(tid, txid)
        self._tx_lines[core].clear()
        self._in_tx[core] = False
        return stall

    def on_crash(self, core_in_tx: Dict[int, Tuple[int, int]], now: int) -> None:
        """The pending queue sits in the ADR domain: flush the open
        transactions' undo logs so recovery can revoke."""
        for core, pending in enumerate(self._pending):
            entries = pending.drain()
            if entries and core in core_in_tx:
                tid, _ = core_in_tx[core]
                self._flush_undo(core, tid, entries, now)

    def interrupted_commit(self, core: int, tid: int, txid: int, now: int) -> bool:
        self.on_tx_end(core, tid, txid, now)
        return True
