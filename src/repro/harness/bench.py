"""Hot-path throughput benchmark: simulator ops/sec per scheme x cores.

Unlike the figure harnesses (which report *simulated* metrics), this
benchmark measures the *simulator itself*: how many trace operations
per wall-clock second the engine sustains on the write-heavy ycsb/tpcc
workloads.  It is the perf-regression guard for the engine's inner
loop — run it before and after touching `engine.py`, `memctrl.py`,
the cache hierarchy or the stats layer.

Results are emitted as ``BENCH_hotpath.json`` so CI can archive the
trajectory.  Each cell also records the run's ``end_cycle``: the
simulated timing must be bit-identical across perf-only changes, so a
changed ``end_cycle`` in this file flags an (intended or accidental)
model change, not just a speed change.

Modes::

    python -m repro.harness bench            # full grid
    python -m repro.harness bench --smoke    # CI budget (<60 s)
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.harness.report import format_table
from repro.harness.runner import run_single
from repro.trace.trace import Trace
from repro.workloads.registry import build_workload

#: The hot-path workloads: large write sets (tpcc) and skewed
#: read-modify-writes (ycsb) keep every simulator layer busy.
DEFAULT_WORKLOADS: Tuple[str, ...] = ("ycsb", "tpcc")
DEFAULT_SCHEMES: Tuple[str, ...] = ("base", "fwb", "morlog", "lad", "silo")
DEFAULT_CORES: Tuple[int, ...] = (1, 8)
DEFAULT_TRANSACTIONS = 120
DEFAULT_REPEATS = 3


def _total_ops(trace: Trace) -> int:
    """Engine-visible operations: every memory op plus the two
    transaction markers."""
    return sum(
        len(tx.ops) + 2 for thread in trace.threads for tx in thread.transactions
    )


@dataclass(frozen=True)
class HotpathCell:
    """One (workload, scheme, cores) measurement."""

    workload: str
    scheme: str
    cores: int
    ops: int
    seconds: float
    ops_per_sec: float
    end_cycle: int
    committed: int


@dataclass
class HotpathBenchResult:
    """All cells of one benchmark invocation."""

    transactions: int
    repeats: int
    smoke: bool
    cells: List[HotpathCell] = field(default_factory=list)

    def cell(self, workload: str, scheme: str, cores: int) -> HotpathCell:
        for c in self.cells:
            if (c.workload, c.scheme, c.cores) == (workload, scheme, cores):
                return c
        raise KeyError((workload, scheme, cores))

    def ops_per_sec(self, cores: int) -> float:
        """Aggregate simulator throughput at one core count (total ops
        over total time, across workloads and schemes)."""
        picked = [c for c in self.cells if c.cores == cores]
        total_seconds = sum(c.seconds for c in picked)
        if not total_seconds:
            return 0.0
        return sum(c.ops for c in picked) / total_seconds

    def format_report(self) -> str:
        rows = [
            [
                c.workload,
                c.scheme,
                c.cores,
                c.ops,
                f"{c.seconds * 1e3:.1f}ms",
                f"{c.ops_per_sec:,.0f}",
                c.end_cycle,
            ]
            for c in self.cells
        ]
        title = "Simulator hot-path throughput (trace ops per wall-clock second)"
        if self.smoke:
            title += " [smoke]"
        return format_table(
            ["workload", "scheme", "cores", "ops", "wall", "ops/sec", "end_cycle"],
            rows,
            title=title,
        )

    def to_json(self) -> dict:
        return {
            "benchmark": "hotpath",
            "transactions": self.transactions,
            "repeats": self.repeats,
            "smoke": self.smoke,
            "python": platform.python_version(),
            "cells": [asdict(c) for c in self.cells],
        }

    def write_json(self, path: str) -> str:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path


def run(
    core_counts: Sequence[int] = DEFAULT_CORES,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    transactions: int = DEFAULT_TRANSACTIONS,
    repeats: int = DEFAULT_REPEATS,
    smoke: bool = False,
    output: Optional[str] = "BENCH_hotpath.json",
) -> HotpathBenchResult:
    """Measure ops/sec for every (workload, scheme, cores) cell.

    Each cell reruns the identical trace on a fresh system ``repeats``
    times and keeps the fastest wall time (the standard way to strip
    scheduler noise from a deterministic benchmark).  ``smoke`` shrinks
    the grid to a <60 s CI budget.
    """
    if smoke:
        core_counts = (8,)
        schemes = ("base", "silo")
        transactions = min(transactions, 40)
        repeats = min(repeats, 2)

    result = HotpathBenchResult(
        transactions=transactions, repeats=repeats, smoke=smoke
    )
    for cores in core_counts:
        for workload in workloads:
            trace = build_workload(
                workload, threads=cores, transactions=transactions
            )
            ops = _total_ops(trace)
            for scheme in schemes:
                best = float("inf")
                run_result = None
                for _ in range(max(1, repeats)):
                    started = time.perf_counter()
                    run_result = run_single(trace, scheme, cores)
                    best = min(best, time.perf_counter() - started)
                result.cells.append(
                    HotpathCell(
                        workload=workload,
                        scheme=scheme,
                        cores=cores,
                        ops=ops,
                        seconds=best,
                        ops_per_sec=ops / best if best else 0.0,
                        end_cycle=run_result.end_cycle,
                        committed=run_result.committed_count,
                    )
                )
    if output:
        result.write_json(output)
    return result
