"""Hot-path throughput benchmark: simulator ops/sec per scheme x cores.

Unlike the figure harnesses (which report *simulated* metrics), this
benchmark measures the *simulator itself*: how many trace operations
per wall-clock second the engine sustains on the write-heavy ycsb/tpcc
workloads.  It is the perf-regression guard for the engine's inner
loop — run it before and after touching `engine.py`, `memctrl.py`,
the cache hierarchy or the stats layer.

Each cell reruns the identical trace ``repeats`` times (default 3,
``--repeats`` on the CLI) and reports the best wall time as
``ops_per_sec`` plus the sample spread, so the perf trajectory in
``BENCH_hotpath.json`` separates real regressions from scheduler
noise.  Each cell also records the run's ``end_cycle``: the simulated
timing must be bit-identical across perf-only changes, so a changed
``end_cycle`` in this file flags an (intended or accidental) model
change, not just a speed change.

Cells execute through the shared executor, so ``--jobs``/caching
apply; a cache-served cell replays the wall times recorded when it
actually ran.

Modes::

    python -m repro.harness bench            # full grid
    python -m repro.harness bench --smoke    # CI budget (<60 s)
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.executor import (
    CellSpec,
    Executor,
    WorkloadSpec,
    aggregate_outcome_metrics,
    raise_on_failures,
)
from repro.harness.experiments.presentation import format_phase_table
from repro.harness.report import format_table
from repro.obs import ObsConfig

#: The hot-path workloads: large write sets (tpcc) and skewed
#: read-modify-writes (ycsb) keep every simulator layer busy.
DEFAULT_WORKLOADS: Tuple[str, ...] = ("ycsb", "tpcc")
DEFAULT_SCHEMES: Tuple[str, ...] = ("base", "fwb", "morlog", "lad", "silo")
DEFAULT_CORES: Tuple[int, ...] = (1, 8)
DEFAULT_TRANSACTIONS = 120
DEFAULT_REPEATS = 3


def machine_fingerprint() -> str:
    """A coarse identity of the machine a benchmark ran on.

    Wall-clock throughput is only comparable between runs on the same
    hardware; the CI baseline checker gates the ops/sec tolerance on
    this fingerprint matching and falls back to exactness-only checks
    (end_cycle, committed) across machines.
    """
    return "|".join(
        (
            platform.system(),
            platform.machine(),
            platform.python_implementation(),
            str(os.cpu_count() or 0),
        )
    )


@dataclass(frozen=True)
class HotpathCell:
    """One (workload, scheme, cores) measurement.

    ``seconds``/``ops_per_sec`` are the best of ``samples``;
    ``ops_per_sec_spread`` is the best-to-worst throughput delta
    across the samples (the noise band of this measurement).
    """

    workload: str
    scheme: str
    cores: int
    ops: int
    seconds: float
    ops_per_sec: float
    end_cycle: int
    committed: int
    samples: Tuple[float, ...] = ()
    ops_per_sec_spread: float = 0.0
    #: Fraction of ops the columnar engine ran through fused kernels
    #: (``None`` for the exact engine, which has no fast path).
    fast_fraction: Optional[float] = None
    #: Why ops left the fast path: ``{reason: op count}`` from
    #: ``engine_stats()`` (``None`` for the exact engine).
    fallback_reasons: Optional[Dict[str, int]] = None


@dataclass
class HotpathBenchResult:
    """All cells of one benchmark invocation."""

    transactions: int
    repeats: int
    smoke: bool
    #: Execution engine the cells ran under (``exact`` or ``columnar``).
    engine: str = "exact"
    cells: List[HotpathCell] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    machine: str = field(default_factory=machine_fingerprint)
    #: Executor parallelism the cells ran under.  Parallel workers
    #: contend for cores, so wall-clock numbers are only comparable
    #: between runs at the same ``jobs`` setting.
    jobs: int = 1
    #: Aggregated per-phase cycle attribution (``--profile`` only):
    #: ``{phase: simulated cycles}`` summed across the profiled cells.
    phases: Optional[Dict[str, int]] = None

    def cell(self, workload: str, scheme: str, cores: int) -> HotpathCell:
        for c in self.cells:
            if (c.workload, c.scheme, c.cores) == (workload, scheme, cores):
                return c
        raise KeyError((workload, scheme, cores))

    def ops_per_sec(self, cores: int) -> float:
        """Aggregate simulator throughput at one core count (total ops
        over total time, across workloads and schemes)."""
        picked = [c for c in self.cells if c.cores == cores]
        total_seconds = sum(c.seconds for c in picked)
        if not total_seconds:
            return 0.0
        return sum(c.ops for c in picked) / total_seconds

    def format_report(self) -> str:
        rows = [
            [
                c.workload,
                c.scheme,
                c.cores,
                c.ops,
                f"{c.seconds * 1e3:.1f}ms",
                f"{c.ops_per_sec:,.0f}",
                f"±{c.ops_per_sec_spread:,.0f}",
                c.end_cycle,
            ]
            for c in self.cells
        ]
        title = "Simulator hot-path throughput (trace ops per wall-clock second)"
        if self.smoke:
            title += " [smoke]"
        text = format_table(
            [
                "workload",
                "scheme",
                "cores",
                "ops",
                "wall",
                "ops/sec",
                "spread",
                "end_cycle",
            ],
            rows,
            title=title,
        )
        if self.phases:
            profile = format_table(
                ["phase", "cycles", "share"],
                format_phase_table(self.phases),
                title="Per-phase simulated-cycle attribution "
                "(aggregated across profiled cells)",
            )
            text = f"{text}\n\n{profile}"
        return text

    def to_json(self) -> dict:
        record = {
            "benchmark": "hotpath",
            "engine": self.engine,
            "transactions": self.transactions,
            "repeats": self.repeats,
            "smoke": self.smoke,
            "python": platform.python_version(),
            "machine": self.machine,
            "jobs": self.jobs,
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "cells": [asdict(c) for c in self.cells],
        }
        if self.phases is not None:
            record["phases"] = dict(sorted(self.phases.items()))
        return record

    def write_json(self, path: str) -> str:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path


def run(
    core_counts: Sequence[int] = DEFAULT_CORES,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    transactions: int = DEFAULT_TRANSACTIONS,
    repeats: int = DEFAULT_REPEATS,
    smoke: bool = False,
    output: Optional[str] = "BENCH_hotpath.json",
    executor: Optional[Executor] = None,
    profile: bool = False,
    engine: str = "exact",
) -> HotpathBenchResult:
    """Measure ops/sec for every (workload, scheme, cores) cell.

    Each cell reruns the identical trace on a fresh system ``repeats``
    times and keeps the fastest wall time (the standard way to strip
    scheduler noise from a deterministic benchmark), reporting the
    best-to-worst spread alongside.  ``smoke`` shrinks the grid to a
    <60 s CI budget.

    ``profile`` enables the obs metrics registry on every cell and
    reports aggregated per-phase simulated-cycle attribution.  The
    instrumented path is slightly slower, so profiled ops/sec numbers
    are not comparable with the plain baseline — use ``--profile`` to
    see *where* cycles go, not to gate regressions.
    """
    if smoke:
        core_counts = (8,)
        if schemes is DEFAULT_SCHEMES:
            schemes = ("base", "silo")
        transactions = min(transactions, 40)
        repeats = min(repeats, 2)
    repeats = max(1, repeats)

    obs = ObsConfig(metrics=True) if profile else None
    cells: List[CellSpec] = []
    for cores in core_counts:
        for workload in workloads:
            wspec = WorkloadSpec.make(
                workload, threads=cores, transactions=transactions
            )
            for scheme in schemes:
                cells.append(
                    CellSpec(
                        workload=wspec,
                        scheme=scheme,
                        cores=cores,
                        repeats=repeats,
                        obs=obs,
                        engine=engine,
                    )
                )
    exe = executor if executor is not None else Executor(jobs=1)
    outcomes = exe.run(cells)
    raise_on_failures(outcomes)

    result = HotpathBenchResult(
        transactions=transactions,
        repeats=repeats,
        smoke=smoke,
        engine=engine,
        cache_hits=sum(1 for o in outcomes if o.cached),
        cache_misses=sum(1 for o in outcomes if not o.cached),
        jobs=exe.jobs,
    )
    if profile:
        aggregated = aggregate_outcome_metrics(outcomes)
        result.phases = (
            {k: int(v) for k, v in aggregated.phases.items()}
            if aggregated is not None
            else {}
        )
    at = iter(outcomes)
    for cores in core_counts:
        for workload in workloads:
            for scheme in schemes:
                outcome = next(at)
                run_result = outcome.result
                ops = sum(
                    len(tx.ops) + 2
                    for thread in outcome.spec.workload.build().threads
                    for tx in thread.transactions
                )
                best = min(outcome.seconds)
                worst = max(outcome.seconds)
                estats = outcome.engine_stats
                result.cells.append(
                    HotpathCell(
                        workload=workload,
                        scheme=scheme,
                        cores=cores,
                        ops=ops,
                        seconds=best,
                        ops_per_sec=ops / best if best else 0.0,
                        end_cycle=run_result.end_cycle,
                        committed=run_result.committed_count,
                        samples=tuple(outcome.seconds),
                        ops_per_sec_spread=(
                            ops / best - ops / worst if best and worst else 0.0
                        ),
                        fast_fraction=(
                            estats["fast_fraction"] if estats else None
                        ),
                        fallback_reasons=(
                            dict(estats.get("fallback_reasons", {}))
                            if estats
                            else None
                        ),
                    )
                )
    if output:
        result.write_json(output)
    return result


# ----------------------------------------------------------------------
# Dispatch overhead: batching + shared trace artifacts
# ----------------------------------------------------------------------
def measure_batching(
    jobs: int = 2, smoke: bool = True, repeats: int = 5
) -> Dict[str, float]:
    """Wall-clock of the experiment catalog under the two dispatch
    stacks: **per-cell dispatch** — one cell per pool task, no trace
    artifacts, worker pool torn down after every campaign (the
    pre-batching executor, reproducible today with ``--batch 1`` on a
    fresh executor per campaign) — versus **batched dispatch** —
    auto-sized cell batches over a shared trace-artifact store on one
    persistent worker pool spanning the whole catalog.

    Both passes run cacheless with ``jobs`` workers, so the delta
    isolates exactly what the dispatch layers removed: per-campaign
    worker spawn + imports, per-cell IPC round-trips, and redundant
    per-process trace synthesis.  The two stacks are timed as
    ``repeats`` back-to-back *pairs* and the reported speedup is the
    **median of the per-pair ratios**: machine noise on a shared host
    is mostly drift (throttling, noisy neighbours) that lands on both
    halves of a pair, so pair ratios damp it where independent
    best-of minima cannot.  The batched passes share one store
    directory — only the first pays the cold build, so the
    steady-state pairs reflect the warm store every real campaign
    after the first runs in.
    """
    import statistics
    import tempfile
    import time

    from repro.harness.experiments import load_all, run_campaign
    from repro.harness.traceartifacts import TraceArtifactStore

    specs = load_all().specs()

    def per_cell_seconds() -> float:
        """Pre-batching stack: fresh pool per campaign, task per cell."""
        started = time.perf_counter()
        for spec in specs:
            with Executor(jobs=jobs, batch=1) as executor:
                run_campaign(spec, executor=executor, smoke=smoke)
        return time.perf_counter() - started

    def batched_seconds(store_dir: str) -> float:
        """This executor's stack: one pool, batches, trace artifacts."""
        started = time.perf_counter()
        with Executor(
            jobs=jobs, trace_store=TraceArtifactStore(store_dir)
        ) as executor:
            for spec in specs:
                run_campaign(spec, executor=executor, smoke=smoke)
        return time.perf_counter() - started

    percell_samples = []
    batched_samples = []
    ratios = []
    with tempfile.TemporaryDirectory() as tmp:
        for _ in range(max(1, repeats)):
            b1 = per_cell_seconds()
            bd = batched_seconds(tmp)
            percell_samples.append(b1)
            batched_samples.append(bd)
            if bd:
                ratios.append(b1 / bd)
    return {
        "jobs": float(jobs),
        "batch1_seconds": min(percell_samples),
        "batched_seconds": min(batched_samples),
        "speedup": statistics.median(ratios) if ratios else 0.0,
    }


# ----------------------------------------------------------------------
# Engine comparison: exact vs columnar on the same grid
# ----------------------------------------------------------------------
@dataclass
class EngineCompareCell:
    """One (workload, scheme, cores) cell measured under both engines."""

    workload: str
    scheme: str
    cores: int
    ops: int
    exact_ops_per_sec: float
    columnar_ops_per_sec: float
    speedup: float
    fast_fraction: float
    end_cycle: int
    identical: bool
    #: Why ops left the columnar fast path (``{reason: op count}``).
    fallback_reasons: Dict[str, int] = field(default_factory=dict)


@dataclass
class EngineBenchResult:
    """Exact-vs-columnar comparison over the hot-path grid.

    ``identical`` summarizes the bit-identity tripwire: every cell's
    ``end_cycle``/``committed`` must match between engines (the
    executor cache keys engines separately, so both runs are real).
    ``full_fallback_cells`` counts cells the columnar engine ran
    entirely through the exact path (``fast_fraction == 0``) — the
    silent-fallback gate fails the benchmark when more than half the
    grid does.
    """

    transactions: int
    repeats: int
    smoke: bool
    cells: List[EngineCompareCell] = field(default_factory=list)
    machine: str = field(default_factory=machine_fingerprint)
    jobs: int = 1
    #: Wall-clock of the smoke experiment catalog dispatched one cell
    #: per task versus auto-batched over shared trace artifacts (see
    #: :func:`measure_batching`); ``None`` when the probe was skipped.
    batching: Optional[Dict[str, float]] = None

    @property
    def identical(self) -> bool:
        return all(c.identical for c in self.cells)

    @property
    def full_fallback_cells(self) -> int:
        return sum(1 for c in self.cells if c.fast_fraction == 0.0)

    @property
    def aggregate_speedup(self) -> float:
        """Total-ops-over-total-time ratio across the whole grid."""
        exact = sum(c.ops / c.exact_ops_per_sec for c in self.cells if c.exact_ops_per_sec)
        col = sum(c.ops / c.columnar_ops_per_sec for c in self.cells if c.columnar_ops_per_sec)
        return exact / col if col else 0.0

    @property
    def per_scheme(self) -> Dict[str, dict]:
        """Kernel-coverage roll-up: ops-weighted ``fast_fraction`` and
        summed fallback-reason counts per scheme, so a fused-stepper
        regression is visible in the trajectory even when the cell list
        changes shape."""
        acc: Dict[str, dict] = {}
        for c in self.cells:
            d = acc.setdefault(
                c.scheme, {"ops": 0, "fast": 0.0, "reasons": {}}
            )
            d["ops"] += c.ops
            d["fast"] += c.fast_fraction * c.ops
            for reason, count in c.fallback_reasons.items():
                d["reasons"][reason] = d["reasons"].get(reason, 0) + count
        return {
            scheme: {
                "fast_fraction": d["fast"] / d["ops"] if d["ops"] else 0.0,
                "fallback_reasons": dict(sorted(d["reasons"].items())),
            }
            for scheme, d in sorted(acc.items())
        }

    def format_report(self) -> str:
        rows = [
            [
                c.workload,
                c.scheme,
                c.cores,
                f"{c.exact_ops_per_sec:,.0f}",
                f"{c.columnar_ops_per_sec:,.0f}",
                f"{c.speedup:.2f}x",
                f"{c.fast_fraction:.3f}",
                "ok" if c.identical else "MISMATCH",
            ]
            for c in self.cells
        ]
        title = "Engine comparison (exact vs columnar, best-of-N ops/sec)"
        if self.smoke:
            title += " [smoke]"
        text = format_table(
            [
                "workload",
                "scheme",
                "cores",
                "exact ops/s",
                "columnar ops/s",
                "speedup",
                "fast_frac",
                "bit-identical",
            ],
            rows,
            title=title,
        )
        text = (
            f"{text}\n\naggregate speedup: {self.aggregate_speedup:.2f}x | "
            f"full fallbacks: {self.full_fallback_cells}/{len(self.cells)}"
        )
        for scheme, d in self.per_scheme.items():
            reasons = d["fallback_reasons"]
            detail = (
                " ".join(f"{k}={v}" for k, v in reasons.items())
                if reasons
                else "no fallbacks"
            )
            text += (
                f"\n  {scheme}: fast_fraction {d['fast_fraction']:.3f} "
                f"({detail})"
            )
        if self.batching:
            b = self.batching
            text += (
                f"\nbatching probe (smoke catalog, jobs={b['jobs']:.0f}): "
                f"per-cell dispatch {b['batch1_seconds']:.1f}s -> "
                f"batched+pooled+artifacts {b['batched_seconds']:.1f}s "
                f"({b['speedup']:.2f}x median pair ratio)"
            )
        return text

    def to_json(self) -> dict:
        return {
            "benchmark": "engine",
            "transactions": self.transactions,
            "repeats": self.repeats,
            "smoke": self.smoke,
            "python": platform.python_version(),
            "machine": self.machine,
            "jobs": self.jobs,
            "identical": self.identical,
            "aggregate_speedup": self.aggregate_speedup,
            "full_fallback_cells": self.full_fallback_cells,
            "per_scheme": self.per_scheme,
            "batching": self.batching,
            "cells": [asdict(c) for c in self.cells],
        }

    def write_json(self, path: str) -> str:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path


def run_engine_comparison(
    core_counts: Sequence[int] = DEFAULT_CORES,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    transactions: int = DEFAULT_TRANSACTIONS,
    repeats: int = DEFAULT_REPEATS,
    smoke: bool = False,
    output: Optional[str] = "BENCH_engine.json",
    executor: Optional[Executor] = None,
    batching_probe: bool = True,
) -> EngineBenchResult:
    """Run the hot-path grid under both engines and compare.

    ``batching_probe`` additionally times the smoke experiment catalog
    under per-cell dispatch versus batching + persistent pool + shared
    trace artifacts and records the ratio (see
    :func:`measure_batching`).

    Raises :class:`~repro.common.errors.ExecutionError` when any cell's
    simulated results diverge between engines, or when the columnar
    engine silently fell back to the exact path on more than half the
    grid — both are regressions the CI bench job must catch, not
    record.
    """
    from repro.common.errors import ExecutionError

    if smoke and schemes is DEFAULT_SCHEMES:
        # One policy-assembled design rides along in the smoke grid so
        # its (zero) fast_fraction and ``unfused_design`` fallback
        # attribution stay baseline-gated next to the fused kernels.
        schemes = ("base", "silo", "aglog")
    common = dict(
        core_counts=core_counts,
        workloads=workloads,
        schemes=schemes,
        transactions=transactions,
        repeats=repeats,
        smoke=smoke,
        output=None,
        executor=executor,
    )
    exact = run(engine="exact", **common)
    columnar = run(engine="columnar", **common)

    result = EngineBenchResult(
        transactions=exact.transactions,
        repeats=exact.repeats,
        smoke=exact.smoke,
        jobs=exact.jobs,
    )
    for e, c in zip(exact.cells, columnar.cells):
        identical = (
            e.end_cycle == c.end_cycle and e.committed == c.committed
        )
        result.cells.append(
            EngineCompareCell(
                workload=e.workload,
                scheme=e.scheme,
                cores=e.cores,
                ops=e.ops,
                exact_ops_per_sec=e.ops_per_sec,
                columnar_ops_per_sec=c.ops_per_sec,
                speedup=(
                    c.ops_per_sec / e.ops_per_sec if e.ops_per_sec else 0.0
                ),
                fast_fraction=c.fast_fraction or 0.0,
                end_cycle=e.end_cycle,
                identical=identical,
                fallback_reasons=dict(c.fallback_reasons or {}),
            )
        )
    if batching_probe:
        result.batching = measure_batching(jobs=2)
    if output:
        result.write_json(output)
    if not result.identical:
        bad = [
            f"{c.workload}/{c.scheme}/{c.cores}"
            for c in result.cells
            if not c.identical
        ]
        raise ExecutionError(
            "columnar engine diverged from exact on: " + ", ".join(bad)
        )
    if result.full_fallback_cells * 2 > len(result.cells):
        raise ExecutionError(
            f"columnar engine silently fell back to exact on "
            f"{result.full_fallback_cells}/{len(result.cells)} cells"
        )
    return result
