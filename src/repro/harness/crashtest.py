"""Randomized crash-recovery validation sweeps.

An operational tool (``silo-repro crashtest``) rather than a paper
figure: for each design it injects power failures at randomly chosen
points of a workload — including exactly-at-commit strikes — recovers,
and checks the atomic-durability invariant word by word.  This is the
same oracle the property-based tests use, packaged for large sweeps.

Crash points are drawn from a seeded RNG *before* any cell runs, so
the campaign is a fixed list of independent cells: the executor fans
them out across processes (each worker runs engine + recovery +
oracle and ships back only the verdict) and the sweep's verdicts are
identical at any ``--jobs`` count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.harness.executor import (
    CellSpec,
    Executor,
    WorkloadSpec,
    raise_on_failures,
    repro_command,
)
from repro.harness.report import format_table
from repro.sim.crash import CrashPlan
from repro.trace.trace import Trace

DEFAULT_SCHEMES: Tuple[str, ...] = (
    "base",
    "fwb",
    "morlog",
    "wrap",
    "redu",
    "proteus",
    "lad",
    "silo",
    "aglog",
    "quadra1f",
    "trinity2f",
    "redolog4f",
)


@dataclass
class CrashTestResult:
    """Outcome of one sweep."""

    runs: int = 0
    failures: int = 0
    #: ``(scheme, workload, crash_point, first mismatches)`` per failure.
    failure_details: List[Tuple[str, str, str, list]] = field(default_factory=list)
    #: One copy-pasteable replay command per failure, same order: a
    #: failing randomized cell is re-runnable in isolation (--jobs 1).
    failure_commands: List[str] = field(default_factory=list)
    per_scheme: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return self.failures == 0

    def format_report(self) -> str:
        rows = [
            [scheme, runs, fails, "PASS" if fails == 0 else "FAIL"]
            for scheme, (runs, fails) in sorted(self.per_scheme.items())
        ]
        table = format_table(
            ["scheme", "crash points", "violations", "verdict"],
            rows,
            title="Crash-recovery validation sweep (atomic durability)",
        )
        if self.failure_details:
            lines = [table, "", "first failures:"]
            commands = self.failure_commands + [None] * len(self.failure_details)
            for (scheme, workload, point, mism), command in list(
                zip(self.failure_details, commands)
            )[:5]:
                lines.append(f"  {scheme}/{workload} @ {point}: {mism[:2]}")
                if command:
                    lines.append(f"    replay: {command}")
            return "\n".join(lines)
        return table


def _total_ops(trace: Trace) -> int:
    return sum(
        len(tx.ops) + 2 for thread in trace.threads for tx in thread.transactions
    )


def run(
    workloads: Sequence[str] = ("hash", "btree"),
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    points_per_pair: int = 20,
    threads: int = 2,
    transactions: int = 8,
    seed: int = 0,
    config: Optional[SystemConfig] = None,
    executor: Optional[Executor] = None,
) -> CrashTestResult:
    """Sweep crash points over every (scheme, workload) pair."""
    rng = random.Random(seed)
    result = CrashTestResult()

    cells: List[CellSpec] = []
    labels: List[Tuple[str, str, str]] = []  # (workload, scheme, point label)
    for workload in workloads:
        # The plan draw needs the trace's op count; the build lands in
        # the executor's memo, so serial runs pay it exactly once.
        wspec = WorkloadSpec.make(workload, threads=threads, transactions=transactions)
        ops = _total_ops(wspec.build())
        plans: List[Tuple[str, CrashPlan]] = []
        for _ in range(points_per_pair):
            if rng.random() < 0.25:
                tid = rng.randrange(threads)
                index = rng.randrange(transactions)
                plans.append(
                    (f"commit({tid},{index})", CrashPlan(at_commit_of=(tid, index)))
                )
            else:
                at = rng.randrange(ops)
                plans.append((f"op {at}", CrashPlan(at_op=at)))

        for scheme in schemes:
            for label, plan in plans:
                cells.append(
                    CellSpec(
                        workload=wspec,
                        scheme=scheme,
                        cores=threads,
                        config=config,
                        crash_plan=plan,
                        verify=True,
                    )
                )
                labels.append((workload, scheme, label))

    outcomes = (executor if executor is not None else Executor(jobs=1)).run(cells)
    raise_on_failures(outcomes)

    for (workload, scheme, label), outcome in zip(labels, outcomes):
        runs, fails = result.per_scheme.get(scheme, (0, 0))
        result.runs += 1
        runs += 1
        if outcome.mismatches:
            result.failures += 1
            fails += 1
            result.failure_details.append(
                (scheme, workload, label, outcome.mismatches)
            )
            if outcome.spec.config is None:
                result.failure_commands.append(repro_command(outcome.spec))
        result.per_scheme[scheme] = (runs, fails)
    return result
