"""Table I: the hardware overhead of Silo."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.battery import hardware_overhead
from repro.harness.report import format_table


@dataclass
class Table1Result:
    rows: Dict[str, str]

    def format_report(self) -> str:
        return format_table(
            ["component", "type and size"],
            [[k, v] for k, v in self.rows.items()],
            title="Table I — hardware overhead of Silo",
        )


def run(cores: int = 8) -> Table1Result:
    return Table1Result(rows=hardware_overhead(cores=cores))
