"""Table I: the hardware overhead of Silo."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.battery import hardware_overhead
from repro.harness.experiments import (
    REGISTRY,
    ExperimentSpec,
    TableData,
    TabularResult,
    run_experiment,
)


@dataclass
class Table1Result(TabularResult):
    rows: Dict[str, str]

    def tables(self) -> List[TableData]:
        return [
            TableData.make(
                ["component", "type and size"],
                [[k, v] for k, v in self.rows.items()],
                title="Table I — hardware overhead of Silo",
            )
        ]


SPEC = REGISTRY.register(
    ExperimentSpec(
        name="table1",
        figure="Table I",
        description="Hardware overhead of Silo (analytic)",
        params=dict(cores=8),
        # Analytic: no axes, no cells — assemble computes directly.
        axes=lambda p: (),
        cell=lambda p, pt: None,
        assemble=lambda p, c: Table1Result(
            rows=hardware_overhead(cores=p["cores"])
        ),
    )
)


def run(cores: int = 8) -> Table1Result:
    return run_experiment(SPEC, cores=cores)
