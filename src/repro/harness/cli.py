"""Command-line entry point: regenerate any table or figure.

Examples::

    silo-repro exp list                  # the declarative registry
    silo-repro exp run fig11             # paper-sized campaign
    silo-repro exp run fig12 --smoke     # CI-sized campaign
    silo-repro exp run --all --smoke --jobs 2
    silo-repro exp run fig14 --set transactions=80 --json
    silo-repro fig4
    silo-repro fig11 --cores 1 8 --transactions 300
    silo-repro fig12 --jobs 8            # fan cells across 8 processes
    silo-repro fig12                     # re-run: served from .repro-cache/
    silo-repro fig13 --no-cache
    silo-repro fig15 --fresh             # recompute, refresh the cache
    silo-repro all --jobs 8
    silo-repro cache stats
    silo-repro cache clear

Exit codes are uniform across all subcommands: 0 on success, 1 when
an experiment fails (a raised cell or an oracle violation), 2 on a
usage or configuration error (unknown experiment, bad ``--set`` key,
malformed flags), 3 when a ``--partial`` run completed with holes
(results rendered, but cells are missing), and 130 when a campaign
was interrupted (SIGINT) and drained gracefully — its journal is
flushed and ``--resume`` continues where it stopped.

Every experiment fans its (workload x scheme x cores x config) cells
out through :class:`repro.harness.executor.Executor`: ``--jobs N``
worker processes (default: all CPUs; ``--jobs 1`` is the serial
in-process path) over the content-addressed result cache in
``.repro-cache/`` (keyed by cell spec + a source fingerprint, so any
simulator edit invalidates it automatically).  Results are
bit-identical at any jobs count and cache state.  A cell that fails
is reported with its worker traceback, the rest of the campaign
completes, and the exit status is nonzero.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
import time
from typing import Dict, List, Optional

from repro import __version__
from repro.common.errors import ConfigError, ExecutionError
from repro.harness import (
    bench,
    catalog,
    crashtest,
    faultsweep,
    fig4,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    litmus,
    mcsweep,
    recovery_cost,
    replay,
    table1,
    table4,
    tracecmd,
)
from repro.harness.executor import CampaignInterrupted, Executor, spec_key
from repro.harness.experiments import load_all, render, run_campaign
from repro.harness.experiments.engine import PartialCampaignResult
from repro.harness.journal import CampaignJournal
from repro.harness.resultcache import ResultCache
from repro.harness.traceartifacts import TraceArtifactStore

#: Uniform exit codes for every subcommand (legacy, exp, cache, replay).
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
#: A --partial campaign rendered, but with missing cells.
EXIT_PARTIAL = 3
#: SIGINT drained gracefully (128 + SIGINT, the shell convention).
EXIT_INTERRUPTED = 130

_EXPERIMENTS = {
    "bench": lambda args, ex: (
        bench.run_engine_comparison(
            smoke=args.smoke,
            output=args.engine_output,
            repeats=args.repeats,
            executor=ex,
        )
        if args.engine == "both"
        else bench.run(
            smoke=args.smoke,
            output=args.bench_output,
            repeats=args.repeats,
            executor=ex,
            profile=args.profile,
            engine=args.engine,
        )
    ),
    "crashtest": lambda args, ex: crashtest.run(
        points_per_pair=args.crash_points, seed=args.seed, executor=ex
    ),
    "faultsweep": lambda args, ex: faultsweep.run(
        points_per_pair=args.crash_points,
        seed=args.seed,
        executor=ex,
        output=args.fault_output,
        smoke=args.smoke,
        trace_output=args.fault_trace_output,
    ),
    "litmus": lambda args, ex: litmus.run(
        smoke=args.smoke,
        executor=ex,
        output=args.litmus_output,
    ),
    "mcsweep": lambda args, ex: mcsweep.run(
        transactions=args.transactions, executor=ex
    ),
    "catalog": lambda args, ex: catalog.run(
        transactions=args.transactions, executor=ex
    ),
    "recovery": lambda args, ex: recovery_cost.run(
        transactions=args.transactions, executor=ex
    ),
    "fig4": lambda args, ex: fig4.run(transactions=args.transactions, executor=ex),
    "fig11": lambda args, ex: fig11.run(
        core_counts=tuple(args.cores), transactions=args.transactions, executor=ex
    ),
    "fig12": lambda args, ex: fig12.run(
        core_counts=tuple(args.cores), transactions=args.transactions, executor=ex
    ),
    "fig13": lambda args, ex: fig13.run(
        transactions=args.transactions, executor=ex
    ),
    "fig14": lambda args, ex: fig14.run(
        transactions=min(args.transactions, 150), executor=ex
    ),
    "fig15": lambda args, ex: fig15.run(
        transactions=args.transactions, executor=ex
    ),
    "table1": lambda args, ex: table1.run(),
    "table4": lambda args, ex: table4.run(),
    "trace": lambda args, ex: tracecmd.run(
        scheme=args.scheme,
        workload=args.workload,
        transactions=min(args.transactions, 100),
        output=args.trace_out,
        executor=ex,
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="silo-repro",
        description="Regenerate the tables and figures of the Silo paper "
        "(HPCA 2023) on the trace-driven simulator.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all", "cache", "chaos", "replay"],
        help="which table/figure to regenerate, 'cache' to manage the "
        "result cache, 'chaos' to self-test the execution layer under "
        "injected faults, or 'replay' to re-run one failed cell from "
        "its --spec JSON",
    )
    parser.add_argument(
        "action",
        nargs="?",
        choices=["stats", "clear"],
        help="cache only: 'stats' (default) or 'clear'",
    )
    parser.add_argument(
        "--transactions",
        type=int,
        default=200,
        help="transactions per thread (default 200; the paper used 10k "
        "on Gem5 — ratios stabilize far earlier in this simulator)",
    )
    parser.add_argument(
        "--cores",
        type=int,
        nargs="+",
        default=[1, 2, 4, 8],
        help="core counts for fig11/fig12 (default: 1 2 4 8)",
    )
    parser.add_argument(
        "--crash-points",
        type=int,
        default=20,
        help="crash points per (scheme, workload) pair for "
        "crashtest/faultsweep",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="RNG seed for the randomized crashtest/faultsweep draws "
        "(default 0)",
    )
    parser.add_argument(
        "--fault-output",
        default="FAULTSWEEP.json",
        help="faultsweep only: where to write the campaign report "
        "(default: FAULTSWEEP.json)",
    )
    parser.add_argument(
        "--trace-output",
        dest="fault_trace_output",
        default=None,
        help="faultsweep only: also write a Chrome/Perfetto trace of "
        "one representative faulted cell (crash + recovery events)",
    )
    parser.add_argument(
        "--litmus-output",
        default="LITMUS.json",
        help="litmus only: where to write the campaign report "
        "(default: LITMUS.json)",
    )
    parser.add_argument(
        "--spec",
        default=None,
        help="replay only: the cell-spec JSON printed by a failing "
        "crashtest/faultsweep cell",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes to fan cells across (default: all CPUs; "
        "1 = in-process serial execution)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result cache entirely (no reads, no writes)",
    )
    parser.add_argument(
        "--fresh",
        action="store_true",
        help="recompute every cell, overwriting its cache entry",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: $SILO_CACHE_DIR or "
        ".repro-cache)",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=None,
        help="cells per worker task (default: auto-sized from a cheap "
        "cost estimate; 1 = one task per cell)",
    )
    parser.add_argument(
        "--cell-timeout",
        default=None,
        metavar="SECONDS",
        help="wall-clock watchdog per cell: a task exceeding "
        "SECONDS x its cell count has its worker killed and the cells "
        "recorded as 'timeout' (or retried); 'auto' calibrates from "
        "observed completions, 0 disables (default: off)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-dispatch cells whose worker died or timed out up to N "
        "extra times, with exponential backoff (default: 0)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="faultsweep only: continue an interrupted campaign from "
        "its journal, re-running only unfinished cells",
    )
    parser.add_argument(
        "--chaos-output",
        default="CHAOS.json",
        help="chaos only: where to write the self-test report "
        "(default: CHAOS.json)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="bench/faultsweep/litmus/chaos: shrink the grid to a "
        "<60s CI budget",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=bench.DEFAULT_REPEATS,
        help="bench only: wall-clock samples per cell; the best is "
        "reported, the spread recorded (default 3)",
    )
    parser.add_argument(
        "--bench-output",
        default="BENCH_hotpath.json",
        help="bench only: where to write the JSON record "
        "(default: BENCH_hotpath.json)",
    )
    parser.add_argument(
        "--engine",
        choices=("exact", "columnar", "both"),
        default="exact",
        help="bench only: execution engine to measure; 'both' runs the "
        "grid under each engine, checks bit-identity, and writes the "
        "speedup record (see --engine-output)",
    )
    parser.add_argument(
        "--engine-output",
        default="BENCH_engine.json",
        help="bench only: where --engine both writes the comparison "
        "record (default: BENCH_engine.json)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="bench only: enable the obs metrics registry and report "
        "per-phase simulated-cycle attribution (profiled ops/sec is "
        "not comparable with the plain baseline)",
    )
    parser.add_argument(
        "--scheme",
        default="silo",
        help="trace only: design to trace, or 'all' for every "
        "registered design (default: silo)",
    )
    parser.add_argument(
        "--workload",
        default=tracecmd.DEFAULT_WORKLOAD,
        help="trace only: workload to trace (default: "
        f"{tracecmd.DEFAULT_WORKLOAD})",
    )
    parser.add_argument(
        "--trace-out",
        default="TRACE.json",
        help="trace only: output file; with --scheme all the scheme "
        "name is appended per file (default: TRACE.json)",
    )
    return parser


def build_exp_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="silo-repro exp",
        description="Declarative experiment registry: list the registered "
        "studies or run them through the generic campaign engine.",
    )
    parser.add_argument(
        "--version", action="version", version=f"silo-repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list the registered experiments")
    p_list.add_argument(
        "--json",
        action="store_true",
        help="machine-readable listing (name/figure/description/params)",
    )

    p_run = sub.add_parser("run", help="run one or more experiments")
    p_run.add_argument(
        "names",
        nargs="*",
        metavar="NAME",
        help="registered experiment name(s); see 'silo-repro exp list'",
    )
    p_run.add_argument(
        "--all", action="store_true", help="run every registered experiment"
    )
    fmt = p_run.add_mutually_exclusive_group()
    fmt.add_argument(
        "--json",
        dest="fmt",
        action="store_const",
        const="json",
        help="render results as JSON instead of the text report",
    )
    fmt.add_argument(
        "--csv",
        dest="fmt",
        action="store_const",
        const="csv",
        help="render results as CSV instead of the text report",
    )
    fmt.add_argument(
        "--chart",
        dest="fmt",
        action="store_const",
        const="chart",
        help="render results as ASCII bar charts",
    )
    p_run.set_defaults(fmt="report")
    p_run.add_argument(
        "--smoke",
        action="store_true",
        help="use the spec's smoke parameters (small, CI-sized campaign)",
    )
    p_run.add_argument(
        "--engine",
        choices=("exact", "columnar"),
        default="exact",
        help="execution engine for every simulated cell (default: "
        "exact; columnar is the bit-identical batched engine)",
    )
    p_run.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a spec parameter; VALUE is parsed as a Python "
        "literal when possible, else kept as a string.  May repeat.  An "
        "unknown KEY is a usage error for a named run; with --all it is "
        "applied only to the specs that declare it",
    )
    p_run.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes to fan cells across (default: all CPUs; "
        "1 = in-process serial execution)",
    )
    p_run.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result cache entirely (no reads, no writes)",
    )
    p_run.add_argument(
        "--fresh",
        action="store_true",
        help="recompute every cell, overwriting its cache entry",
    )
    p_run.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: $SILO_CACHE_DIR or "
        ".repro-cache)",
    )
    p_run.add_argument(
        "--batch",
        type=int,
        default=None,
        help="cells per worker task (default: auto-sized from a cheap "
        "cost estimate; 1 = one task per cell)",
    )
    p_run.add_argument(
        "--cell-timeout",
        default=None,
        metavar="SECONDS",
        help="wall-clock watchdog per cell: a task exceeding "
        "SECONDS x its cell count has its worker killed and the cells "
        "recorded as 'timeout' (or retried); 'auto' calibrates from "
        "observed completions, 0 disables (default: off)",
    )
    p_run.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-dispatch cells whose worker died or timed out up to N "
        "extra times, with exponential backoff (default: 0)",
    )
    p_run.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted campaign from its journal, "
        "re-running only unfinished cells (needs the result cache)",
    )
    p_run.add_argument(
        "--partial",
        action="store_true",
        help="degrade gracefully: render failed/timed-out cells as "
        "explicit holes (with replay one-liners) around whatever "
        "assembles, exit 3 instead of aborting the report",
    )
    return parser


def _parse_cell_timeout(value):
    """``--cell-timeout`` values: ``None``/``0`` off, ``"auto"``, or a
    positive float of seconds."""
    if value is None:
        return None
    if value == "auto":
        return "auto"
    try:
        seconds = float(value)
    except ValueError:
        raise ConfigError(
            f"--cell-timeout expects a number of seconds or 'auto', "
            f"got {value!r}"
        )
    return seconds if seconds > 0 else None


def _campaign_journal(args, campaign_key: str):
    """The checkpoint journal for one campaign identity, honoring
    ``--resume`` (keep it) vs. a fresh run (discard any leftover).
    Resilience flags never join the key: they change scheduling, not
    which cells the campaign contains."""
    if getattr(args, "no_cache", False):
        if getattr(args, "resume", False):
            raise ConfigError("--resume needs the result cache "
                              "(drop --no-cache)")
        return None
    journal = CampaignJournal(args.cache_dir, campaign=campaign_key)
    if not getattr(args, "resume", False):
        journal.discard()
    return journal


def _report_interrupted(exc: CampaignInterrupted, name: str) -> int:
    """Render a graceful partial stop: flush the journal's partial
    manifest, say how to continue, exit 130 — never a stack trace."""
    records = []
    for outcome in exc.outcomes:
        record = {
            "spec": json.loads(spec_key(outcome.spec)),
            "ok": outcome.ok,
            "kind": outcome.kind,
            "cached": outcome.cached,
        }
        records.append(record)
    print(f"[{name} interrupted] {exc}", file=sys.stderr)
    if exc.journal is not None:
        path = exc.journal.write_partial_manifest(records)
        if path:
            print(f"[{name}] partial manifest: {path}", file=sys.stderr)
    return EXIT_INTERRUPTED


def _parse_overrides(pairs: List[str]) -> Dict[str, object]:
    overrides: Dict[str, object] = {}
    for text in pairs:
        key, eq, raw = text.partition("=")
        if not eq or not key:
            raise ConfigError(f"--set expects KEY=VALUE, got {text!r}")
        try:
            overrides[key] = ast.literal_eval(raw)
        except (SyntaxError, ValueError):
            overrides[key] = raw
    return overrides


def _exp_list(args) -> int:
    registry = load_all()
    if args.json:
        payload = [
            {
                "name": spec.name,
                "figure": spec.figure,
                "description": spec.description,
                "params": {k: repr(v) for k, v in spec.params.items()},
            }
            for spec in registry.specs()
        ]
        print(json.dumps(payload, indent=2))
        return EXIT_OK
    specs = registry.specs()
    name_w = max(len(s.name) for s in specs)
    fig_w = max(len(s.figure) for s in specs)
    for spec in specs:
        print(f"{spec.name:<{name_w}}  {spec.figure:<{fig_w}}  {spec.description}")
    return EXIT_OK


def _exp_run(args) -> int:
    registry = load_all()
    if args.all and args.names:
        raise ConfigError("give experiment names or --all, not both")
    if not args.all and not args.names:
        raise ConfigError(
            "nothing to run: give experiment names or --all "
            "(see 'silo-repro exp list')"
        )
    overrides = _parse_overrides(args.overrides)
    # Resolve every name before running anything: an unknown experiment
    # is a usage error, not a partial campaign.
    specs = (
        registry.specs()
        if args.all
        else [registry.get(name) for name in args.names]
    )
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    trace_store = None if args.no_cache else TraceArtifactStore(args.cache_dir)
    executor = Executor(
        jobs=args.jobs,
        cache=cache,
        fresh=args.fresh,
        progress=args.fmt == "report",
        batch=args.batch,
        trace_store=trace_store,
        cell_timeout=_parse_cell_timeout(args.cell_timeout),
        retries=args.retries,
    )
    failures = 0
    partials = 0
    json_docs: Dict[str, object] = {}
    for spec in specs:
        applicable = (
            {k: v for k, v in overrides.items() if k in spec.params}
            if args.all
            else overrides
        )
        campaign_key = (
            f"exp|{spec.name}|smoke={args.smoke}|engine={args.engine}|"
            + json.dumps(applicable, sort_keys=True, default=repr)
        )
        journal = _campaign_journal(args, campaign_key)
        executor.journal = journal
        started = time.time()
        try:
            result, campaign = run_campaign(
                spec,
                executor=executor,
                smoke=args.smoke,
                engine=args.engine,
                partial=args.partial,
                **applicable,
            )
        except CampaignInterrupted as exc:
            return _report_interrupted(exc, spec.name)
        except ExecutionError as exc:
            print(f"[{spec.name} FAILED]\n{exc}", file=sys.stderr)
            failures += 1
            continue
        if journal is not None:
            # Clean completion: the checkpoint has served its purpose
            # (reusable outcomes live on in the result cache).
            journal.discard()
        is_partial = isinstance(result, PartialCampaignResult)
        partials += is_partial
        if args.fmt == "json":
            json_docs[spec.name] = {
                "manifest": campaign.manifest(),
                "tables": (
                    result.to_json_dict()
                    if is_partial
                    else result.to_json_payload()
                ),
            }
            continue
        print(render(result, args.fmt))
        if args.fmt == "report":
            stats = executor.stats
            journal_text = (
                f", {stats.journal_hits} journal-served"
                if stats.journal_hits
                else ""
            )
            print(
                f"[{spec.name} completed in {time.time() - started:.1f}s; "
                f"campaign: {stats.cells} cells, {stats.cache_hits} cached"
                f"{journal_text}, {executor.jobs} jobs]\n"
            )
    if args.fmt == "json" and json_docs:
        if len(json_docs) == 1 and not args.all:
            (payload,) = json_docs.values()
            print(json.dumps(payload, indent=2))
        else:
            print(json.dumps(json_docs, indent=2))
    if failures:
        return EXIT_FAILURE
    return EXIT_PARTIAL if partials else EXIT_OK


def _exp_main(argv: List[str]) -> int:
    args = build_exp_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _exp_list(args)
        return _exp_run(args)
    except ConfigError as exc:
        print(f"silo-repro exp: error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except ExecutionError as exc:
        print(f"silo-repro exp: {exc}", file=sys.stderr)
        return EXIT_FAILURE


def _cache_command(args) -> int:
    cache = ResultCache(args.cache_dir)
    traces = TraceArtifactStore(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        removed_traces = traces.clear()
        print(f"removed {removed} cache entries from {cache.root}")
        print(f"removed {removed_traces} trace artifacts from {traces.root}")
    else:
        print(cache.format_stats())
        print(traces.format_stats())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["exp"]:
        return _exp_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "cache":
        return _cache_command(args)
    if args.action is not None:
        parser.error("an action is only valid with the 'cache' command")
    if args.experiment == "replay":
        if not args.spec:
            parser.error("replay needs --spec '<cell json>'")
        try:
            result = replay.run(args.spec)
        except ConfigError as exc:
            print(f"silo-repro: error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        print(result.format_report())
        return EXIT_OK if result.passed else EXIT_FAILURE
    if args.spec is not None:
        parser.error("--spec is only valid with the 'replay' command")
    if args.experiment == "chaos":
        from repro.harness import chaos

        result = chaos.run(
            smoke=args.smoke,
            jobs=args.jobs if args.jobs is not None else 2,
            seed=args.seed,
            output=args.chaos_output,
        )
        print(result.format_report())
        return EXIT_OK if result.passed else EXIT_FAILURE
    if args.resume and args.experiment not in ("faultsweep", "litmus"):
        parser.error(
            "--resume is only supported for 'faultsweep' and 'litmus' "
            "here (and for 'silo-repro exp run')"
        )
    if args.resume and args.no_cache:
        parser.error("--resume needs the result cache (drop --no-cache)")

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    trace_store = None if args.no_cache else TraceArtifactStore(args.cache_dir)
    try:
        cell_timeout = _parse_cell_timeout(args.cell_timeout)
    except ConfigError as exc:
        print(f"silo-repro: error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    executor = Executor(
        jobs=args.jobs,
        cache=cache,
        fresh=args.fresh,
        progress=True,
        batch=args.batch,
        trace_store=trace_store,
        cell_timeout=cell_timeout,
        retries=args.retries,
    )
    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    failures = 0
    for name in names:
        journal = None
        if name in ("faultsweep", "litmus") and cache is not None:
            campaign_key = (
                f"faultsweep|seed={args.seed}|points={args.crash_points}"
                f"|smoke={args.smoke}"
                if name == "faultsweep"
                else f"litmus|smoke={args.smoke}"
            )
            try:
                journal = _campaign_journal(args, campaign_key)
            except ConfigError as exc:
                print(f"silo-repro: error: {exc}", file=sys.stderr)
                return EXIT_USAGE
        executor.journal = journal
        started = time.time()
        try:
            result = _EXPERIMENTS[name](args, executor)
        except CampaignInterrupted as exc:
            return _report_interrupted(exc, name)
        except ExecutionError as exc:
            print(f"[{name} FAILED]\n{exc}", file=sys.stderr)
            failures += 1
            continue
        except ConfigError as exc:
            print(f"silo-repro: error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        if journal is not None:
            journal.discard()
        print(result.format_report())
        if getattr(result, "passed", True) is False:
            # Validation sweeps (crashtest/faultsweep) fail the run on
            # oracle violations, not only on raised cells.
            print(f"[{name} FAILED: oracle violations]", file=sys.stderr)
            failures += 1
        stats = executor.stats
        print(
            f"[{name} completed in {time.time() - started:.1f}s; "
            f"campaign: {stats.cells} cells, {stats.cache_hits} cached, "
            f"{executor.jobs} jobs]\n"
        )
    return EXIT_FAILURE if failures else EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
