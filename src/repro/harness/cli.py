"""Command-line entry point: regenerate any table or figure.

Examples::

    silo-repro fig4
    silo-repro fig11 --cores 1 8 --transactions 300
    silo-repro fig12
    silo-repro fig13
    silo-repro fig14 --transactions 80
    silo-repro fig15
    silo-repro table1
    silo-repro table4
    silo-repro all
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.harness import (
    bench,
    crashtest,
    fig4,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    mcsweep,
    recovery_cost,
    table1,
    table4,
)

_EXPERIMENTS = {
    "bench": lambda args: bench.run(smoke=args.smoke, output=args.bench_output),
    "crashtest": lambda args: crashtest.run(points_per_pair=args.crash_points),
    "mcsweep": lambda args: mcsweep.run(transactions=args.transactions),
    "recovery": lambda args: recovery_cost.run(transactions=args.transactions),
    "fig4": lambda args: fig4.run(transactions=args.transactions),
    "fig11": lambda args: fig11.run(
        core_counts=tuple(args.cores), transactions=args.transactions
    ),
    "fig12": lambda args: fig12.run(
        core_counts=tuple(args.cores), transactions=args.transactions
    ),
    "fig13": lambda args: fig13.run(transactions=args.transactions),
    "fig14": lambda args: fig14.run(transactions=min(args.transactions, 150)),
    "fig15": lambda args: fig15.run(transactions=args.transactions),
    "table1": lambda args: table1.run(),
    "table4": lambda args: table4.run(),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="silo-repro",
        description="Regenerate the tables and figures of the Silo paper "
        "(HPCA 2023) on the trace-driven simulator.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--transactions",
        type=int,
        default=200,
        help="transactions per thread (default 200; the paper used 10k "
        "on Gem5 — ratios stabilize far earlier in this simulator)",
    )
    parser.add_argument(
        "--cores",
        type=int,
        nargs="+",
        default=[1, 2, 4, 8],
        help="core counts for fig11/fig12 (default: 1 2 4 8)",
    )
    parser.add_argument(
        "--crash-points",
        type=int,
        default=20,
        help="crash points per (scheme, workload) pair for crashtest",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="bench only: shrink the grid to a <60s CI budget",
    )
    parser.add_argument(
        "--bench-output",
        default="BENCH_hotpath.json",
        help="bench only: where to write the JSON record "
        "(default: BENCH_hotpath.json)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        result = _EXPERIMENTS[name](args)
        print(result.format_report())
        print(f"[{name} completed in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
