"""Command-line entry point: regenerate any table or figure.

Examples::

    silo-repro fig4
    silo-repro fig11 --cores 1 8 --transactions 300
    silo-repro fig12 --jobs 8            # fan cells across 8 processes
    silo-repro fig12                     # re-run: served from .repro-cache/
    silo-repro fig13 --no-cache
    silo-repro fig14 --transactions 80
    silo-repro fig15 --fresh             # recompute, refresh the cache
    silo-repro table1
    silo-repro table4
    silo-repro all --jobs 8
    silo-repro cache stats
    silo-repro cache clear

Every experiment fans its (workload x scheme x cores x config) cells
out through :class:`repro.harness.executor.Executor`: ``--jobs N``
worker processes (default: all CPUs; ``--jobs 1`` is the serial
in-process path) over the content-addressed result cache in
``.repro-cache/`` (keyed by cell spec + a source fingerprint, so any
simulator edit invalidates it automatically).  Results are
bit-identical at any jobs count and cache state.  A cell that fails
is reported with its worker traceback, the rest of the campaign
completes, and the exit status is nonzero.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.common.errors import ExecutionError
from repro.harness import (
    bench,
    crashtest,
    faultsweep,
    fig4,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    mcsweep,
    recovery_cost,
    replay,
    table1,
    table4,
    tracecmd,
)
from repro.harness.executor import Executor
from repro.harness.resultcache import ResultCache

_EXPERIMENTS = {
    "bench": lambda args, ex: bench.run(
        smoke=args.smoke,
        output=args.bench_output,
        repeats=args.repeats,
        executor=ex,
        profile=args.profile,
    ),
    "crashtest": lambda args, ex: crashtest.run(
        points_per_pair=args.crash_points, seed=args.seed, executor=ex
    ),
    "faultsweep": lambda args, ex: faultsweep.run(
        points_per_pair=args.crash_points,
        seed=args.seed,
        executor=ex,
        output=args.fault_output,
        smoke=args.smoke,
        trace_output=args.fault_trace_output,
    ),
    "mcsweep": lambda args, ex: mcsweep.run(
        transactions=args.transactions, executor=ex
    ),
    "recovery": lambda args, ex: recovery_cost.run(
        transactions=args.transactions, executor=ex
    ),
    "fig4": lambda args, ex: fig4.run(transactions=args.transactions, executor=ex),
    "fig11": lambda args, ex: fig11.run(
        core_counts=tuple(args.cores), transactions=args.transactions, executor=ex
    ),
    "fig12": lambda args, ex: fig12.run(
        core_counts=tuple(args.cores), transactions=args.transactions, executor=ex
    ),
    "fig13": lambda args, ex: fig13.run(
        transactions=args.transactions, executor=ex
    ),
    "fig14": lambda args, ex: fig14.run(
        transactions=min(args.transactions, 150), executor=ex
    ),
    "fig15": lambda args, ex: fig15.run(
        transactions=args.transactions, executor=ex
    ),
    "table1": lambda args, ex: table1.run(),
    "table4": lambda args, ex: table4.run(),
    "trace": lambda args, ex: tracecmd.run(
        scheme=args.scheme,
        workload=args.workload,
        transactions=min(args.transactions, 100),
        output=args.trace_out,
        executor=ex,
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="silo-repro",
        description="Regenerate the tables and figures of the Silo paper "
        "(HPCA 2023) on the trace-driven simulator.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all", "cache", "replay"],
        help="which table/figure to regenerate, 'cache' to manage the "
        "result cache, or 'replay' to re-run one failed cell from its "
        "--spec JSON",
    )
    parser.add_argument(
        "action",
        nargs="?",
        choices=["stats", "clear"],
        help="cache only: 'stats' (default) or 'clear'",
    )
    parser.add_argument(
        "--transactions",
        type=int,
        default=200,
        help="transactions per thread (default 200; the paper used 10k "
        "on Gem5 — ratios stabilize far earlier in this simulator)",
    )
    parser.add_argument(
        "--cores",
        type=int,
        nargs="+",
        default=[1, 2, 4, 8],
        help="core counts for fig11/fig12 (default: 1 2 4 8)",
    )
    parser.add_argument(
        "--crash-points",
        type=int,
        default=20,
        help="crash points per (scheme, workload) pair for "
        "crashtest/faultsweep",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="RNG seed for the randomized crashtest/faultsweep draws "
        "(default 0)",
    )
    parser.add_argument(
        "--fault-output",
        default="FAULTSWEEP.json",
        help="faultsweep only: where to write the campaign report "
        "(default: FAULTSWEEP.json)",
    )
    parser.add_argument(
        "--trace-output",
        dest="fault_trace_output",
        default=None,
        help="faultsweep only: also write a Chrome/Perfetto trace of "
        "one representative faulted cell (crash + recovery events)",
    )
    parser.add_argument(
        "--spec",
        default=None,
        help="replay only: the cell-spec JSON printed by a failing "
        "crashtest/faultsweep cell",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes to fan cells across (default: all CPUs; "
        "1 = in-process serial execution)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result cache entirely (no reads, no writes)",
    )
    parser.add_argument(
        "--fresh",
        action="store_true",
        help="recompute every cell, overwriting its cache entry",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: $SILO_CACHE_DIR or "
        ".repro-cache)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="bench only: shrink the grid to a <60s CI budget",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=bench.DEFAULT_REPEATS,
        help="bench only: wall-clock samples per cell; the best is "
        "reported, the spread recorded (default 3)",
    )
    parser.add_argument(
        "--bench-output",
        default="BENCH_hotpath.json",
        help="bench only: where to write the JSON record "
        "(default: BENCH_hotpath.json)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="bench only: enable the obs metrics registry and report "
        "per-phase simulated-cycle attribution (profiled ops/sec is "
        "not comparable with the plain baseline)",
    )
    parser.add_argument(
        "--scheme",
        default="silo",
        help="trace only: design to trace, or 'all' for every "
        "registered design (default: silo)",
    )
    parser.add_argument(
        "--workload",
        default=tracecmd.DEFAULT_WORKLOAD,
        help="trace only: workload to trace (default: "
        f"{tracecmd.DEFAULT_WORKLOAD})",
    )
    parser.add_argument(
        "--trace-out",
        default="TRACE.json",
        help="trace only: output file; with --scheme all the scheme "
        "name is appended per file (default: TRACE.json)",
    )
    return parser


def _cache_command(args) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cache entries from {cache.root}")
    else:
        print(cache.format_stats())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "cache":
        return _cache_command(args)
    if args.action is not None:
        parser.error("an action is only valid with the 'cache' command")
    if args.experiment == "replay":
        if not args.spec:
            parser.error("replay needs --spec '<cell json>'")
        result = replay.run(args.spec)
        print(result.format_report())
        return 0 if result.passed else 1
    if args.spec is not None:
        parser.error("--spec is only valid with the 'replay' command")

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    executor = Executor(
        jobs=args.jobs, cache=cache, fresh=args.fresh, progress=True
    )
    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    failures = 0
    for name in names:
        started = time.time()
        try:
            result = _EXPERIMENTS[name](args, executor)
        except ExecutionError as exc:
            print(f"[{name} FAILED]\n{exc}", file=sys.stderr)
            failures += 1
            continue
        print(result.format_report())
        if getattr(result, "passed", True) is False:
            # Validation sweeps (crashtest/faultsweep) fail the run on
            # oracle violations, not only on raised cells.
            print(f"[{name} FAILED: oracle violations]", file=sys.stderr)
            failures += 1
        stats = executor.stats
        print(
            f"[{name} completed in {time.time() - started:.1f}s; "
            f"campaign: {stats.cells} cells, {stats.cache_hits} cached, "
            f"{executor.jobs} jobs]\n"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
