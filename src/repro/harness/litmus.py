"""Exhaustive litmus campaigns (``silo-repro litmus``).

For every pattern in the :mod:`repro.litmus.patterns` catalog, this
harness runs one cell per ``(crash point, design)`` — *every*
``at_op`` in ``[0, total_ops]``, both boundaries included — through
the parallel executor (cache, ``--jobs``, retries, ``--resume`` all
apply), captures the recovered PM image of each cell and judges it
with the declarative persistency-model oracle
(:func:`repro.litmus.oracle.check_litmus`).

Every cell also runs the exact PR-3 oracle (``verify=True``); the two
verdicts are cross-checked on every single cell, so an oracle
divergence — a bug in either checker — fails the campaign just like a
persistency violation does.

Each violation is **shrunk** in-process (drop threads, transactions,
ops; re-enumerate the narrower crash window) to a 1-minimal cell and
reported as a copy-pasteable ``silo-repro replay --spec`` one-liner;
the JSON report carries the minimized spec list for CI artifacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.executor import (
    CellSpec,
    Executor,
    WorkloadSpec,
    cell_spec_to_json,
    execute_cell,
    raise_on_failures,
    repro_command,
)
from repro.harness.report import format_table
from repro.litmus.oracle import LitmusVerdict, check_litmus
from repro.litmus.patterns import Pattern, enumerate_patterns, lower_pattern
from repro.litmus.shrink import shrink_pattern
from repro.sim.crash import CrashPlan

#: All thirteen registered designs, in registry order: the nine
#: legacy designs plus the policy-assembled catalog entries.
LITMUS_SCHEMES: Tuple[str, ...] = (
    "aglog",
    "base",
    "fwb",
    "lad",
    "morlog",
    "proteus",
    "quadra1f",
    "redolog4f",
    "redu",
    "silo",
    "swlog",
    "trinity2f",
    "wrap",
)

#: Shrinking budget: minimize at most this many distinct failing
#: (scheme, pattern) pairs per campaign — one minimized cell per bug
#: is what a regression test needs; hundreds would just be slow.
MAX_SHRINKS = 5


def pattern_spec(pattern: Pattern) -> WorkloadSpec:
    """The executor recipe for one pattern."""
    return WorkloadSpec.make(
        "litmus",
        threads=pattern.cores,
        transactions=pattern.total_txs,
        pattern=pattern.key,
    )


def litmus_cell(pattern: Pattern, scheme: str, at_op: int) -> CellSpec:
    """One (pattern x crash point x design) cell.

    ``capture_image`` feeds the declarative oracle; ``verify`` runs
    the exact oracle alongside for the continuous cross-check.
    """
    return CellSpec(
        workload=pattern_spec(pattern),
        scheme=scheme,
        cores=pattern.cores,
        crash_plan=CrashPlan(at_op=at_op),
        verify=True,
        capture_image=True,
    )


@dataclass
class LitmusResult:
    """Outcome of one exhaustive litmus campaign."""

    patterns: int = 0
    cells: int = 0
    #: ``scheme -> (cells, violations)``.
    per_scheme: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: ``family -> (cells, violations)``.
    per_family: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: Cells where the declarative and the exact oracle disagreed —
    #: a checker bug; always fails the campaign.
    disagreements: List[str] = field(default_factory=list)
    #: One record per violating cell (pre-shrink).
    violations: List[Dict[str, object]] = field(default_factory=list)
    #: Minimized ``replay --spec`` one-liners, one per shrunk bug.
    minimized: List[Dict[str, object]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations and not self.disagreements

    def format_report(self) -> str:
        rows = [
            [scheme, cells, violations, "PASS" if violations == 0 else "FAIL"]
            for scheme, (cells, violations) in sorted(self.per_scheme.items())
        ]
        table = format_table(
            ["scheme", "litmus cells", "violations", "verdict"],
            rows,
            title="Persistency-model litmus sweep "
            "(exhaustive crash-point enumeration)",
        )
        lines = [
            table,
            "",
            f"patterns: {self.patterns} | cells: {self.cells} "
            f"(pattern x crash point x design) | "
            f"oracle disagreements: {len(self.disagreements)}",
        ]
        if self.disagreements:
            lines.append("ORACLE DISAGREEMENTS (checker bug):")
            lines += [f"  {text}" for text in self.disagreements[:5]]
        if self.violations:
            lines += ["", f"violations: {len(self.violations)}"]
            for record in self.violations[:5]:
                lines.append(
                    f"  {record['scheme']} @ {record['pattern']} "
                    f"at_op={record['at_op']}: {record['verdict']}"
                )
        if self.minimized:
            lines += ["", "minimized cells:"]
            for record in self.minimized:
                lines.append(
                    f"  {record['scheme']} @ {record['pattern']} "
                    f"at_op={record['at_op']} [{record['kind']}]"
                )
                lines.append(f"    replay: {record['replay']}")
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "patterns": self.patterns,
            "cells": self.cells,
            "passed": self.passed,
            "per_scheme": {
                scheme: {"cells": c, "violations": v}
                for scheme, (c, v) in sorted(self.per_scheme.items())
            },
            "per_family": {
                family: {"cells": c, "violations": v}
                for family, (c, v) in sorted(self.per_family.items())
            },
            "disagreements": list(self.disagreements),
            "violations": list(self.violations),
            "minimized": list(self.minimized),
            "minimized_specs": [r["spec"] for r in self.minimized],
        }


def judge_cell(pattern: Pattern, outcome) -> LitmusVerdict:
    """Apply the declarative oracle to one completed cell."""
    trace = lower_pattern(pattern)
    return check_litmus(trace, outcome.result.committed, outcome.image)


def _exhaustive_fail_point(pattern: Pattern, scheme: str) -> Optional[int]:
    """Smallest failing ``at_op`` of a (pattern, scheme) pair under
    in-process exhaustive re-enumeration, or ``None`` — the shrinker's
    re-judge predicate."""
    for at_op in range(pattern.total_ops + 1):
        outcome = execute_cell(litmus_cell(pattern, scheme, at_op))
        if not judge_cell(pattern, outcome).ok:
            return at_op
    return None


def run(
    schemes: Sequence[str] = LITMUS_SCHEMES,
    smoke: bool = False,
    executor: Optional[Executor] = None,
    output: Optional[str] = None,
    shrink: bool = True,
    max_patterns: Optional[int] = None,
) -> LitmusResult:
    """Run one exhaustive litmus campaign.

    ``smoke`` selects the CI-sized pattern catalog (still well over
    500 cells); ``max_patterns`` further truncates the catalog (test
    hook).  ``output`` writes the JSON report (LITMUS.json in CI).
    ``shrink=False`` skips minimization (the raw violations and their
    replay commands are still reported).
    """
    patterns = enumerate_patterns(smoke=smoke)
    if max_patterns is not None:
        patterns = patterns[:max_patterns]
    result = LitmusResult(patterns=len(patterns))

    cells: List[CellSpec] = []
    labels: List[Tuple[Pattern, str, int]] = []
    for pattern in patterns:
        for at_op in range(pattern.total_ops + 1):
            for scheme in schemes:
                cells.append(litmus_cell(pattern, scheme, at_op))
                labels.append((pattern, scheme, at_op))

    outcomes = (executor if executor is not None else Executor(jobs=1)).run(cells)
    raise_on_failures(outcomes)
    result.cells = len(cells)

    failing: Dict[Tuple[str, str], Tuple[Pattern, int, LitmusVerdict]] = {}
    for (pattern, scheme, at_op), outcome in zip(labels, outcomes):
        verdict = judge_cell(pattern, outcome)
        scheme_cells, scheme_bad = result.per_scheme.get(scheme, (0, 0))
        family_cells, family_bad = result.per_family.get(pattern.family, (0, 0))
        scheme_cells += 1
        family_cells += 1
        exact_ok = not outcome.mismatches
        if verdict.ok != exact_ok:
            result.disagreements.append(
                f"{scheme} @ {pattern.key} at_op={at_op}: declarative "
                f"verdict {verdict} but exact oracle found "
                f"{len(outcome.mismatches or [])} mismatch(es)"
            )
        if not verdict.ok:
            scheme_bad += 1
            family_bad += 1
            result.violations.append(
                {
                    "scheme": scheme,
                    "pattern": pattern.key,
                    "at_op": at_op,
                    "kind": verdict.kind,
                    "verdict": str(verdict),
                    "replay": repro_command(outcome.spec),
                }
            )
            key = (scheme, pattern.key)
            if key not in failing:
                failing[key] = (pattern, at_op, verdict)
        result.per_scheme[scheme] = (scheme_cells, scheme_bad)
        result.per_family[pattern.family] = (family_cells, family_bad)

    if shrink:
        for (scheme, _), (pattern, at_op, verdict) in list(failing.items())[
            :MAX_SHRINKS
        ]:
            minimal, minimal_at = shrink_pattern(
                pattern,
                at_op,
                lambda candidate: _exhaustive_fail_point(candidate, scheme),
            )
            spec = litmus_cell(minimal, scheme, minimal_at)
            final = judge_cell(minimal, execute_cell(spec))
            result.minimized.append(
                {
                    "scheme": scheme,
                    "pattern": minimal.key,
                    "at_op": minimal_at,
                    "kind": (final if not final.ok else verdict).kind,
                    "spec": cell_spec_to_json(spec),
                    "replay": repro_command(spec),
                }
            )

    if output:
        with open(output, "w") as handle:
            json.dump(result.to_json_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return result
