"""Campaign checkpoint journal: incremental, resumable cell outcomes.

A long campaign (a litmus sweep, a faultsweep storm, an overnight
capacity run) must survive being killed: SIGINT, an OOM'd parent, a
machine reboot.  The executor's result cache already makes *successful*
cells cheap to recompute, but it never records failed cells, and a
``--no-cache``-adjacent crash still restarts a campaign from zero
bookkeeping.  This journal is the missing checkpoint:

* every **completed** cell outcome — ``kind == "ok"`` *and*
  deterministic ``kind == "error"`` cells — is written incrementally,
  the moment the executor finishes it (an atomic rename per entry, so
  a crash mid-write can never corrupt an earlier checkpoint);
* ``timeout``/``infra`` outcomes are **not** journaled: they describe
  the infrastructure, not the cell, and a resumed campaign must re-run
  them;
* entries are **content-addressed** exactly like the result cache
  (canonical cell-spec key + the package source fingerprint), so a
  journal can never serve a stale outcome after a simulator edit;
* journals live under ``<cache-root>/journal/<campaign-digest>/``,
  one directory per campaign identity (experiment name + resolved
  flags), next to the result cache they complement;
* ``silo-repro exp run --resume`` / ``faultsweep --resume`` attach the
  surviving journal and skip every journaled cell; a clean completion
  discards the journal (the result cache keeps the reusable outcomes).

Loads go through the same hardened path as the result cache: a
truncated or corrupt entry is quarantined as ``*.corrupt`` and simply
re-run, never crashing the resumed campaign.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional

from repro.harness.resultcache import (
    MISS,
    default_cache_dir,
    load_pickle_hardened,
    source_fingerprint,
)

#: Bump to orphan every journal after an incompatible layout change.
_FORMAT_VERSION = 1


class CampaignJournal:
    """Incremental on-disk journal of one campaign's completed cells.

    ``root`` is the *cache* root (the journal nests under
    ``<root>/journal/``, so one ``--cache-dir`` governs all three
    stores); ``campaign`` is a caller-chosen stable identity string
    (experiment name + the flags that shape its cell list).  Two runs
    with the same campaign string, fingerprint and spec keys share a
    journal — which is exactly what ``--resume`` needs.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        campaign: str = "default",
        fingerprint: Optional[str] = None,
    ) -> None:
        self.campaign = campaign
        self.fingerprint = (
            fingerprint if fingerprint is not None else source_fingerprint()
        )
        digest = hashlib.sha256(
            f"v{_FORMAT_VERSION}\0{self.fingerprint}\0{campaign}".encode()
        ).hexdigest()[:32]
        base = Path(root if root is not None else default_cache_dir())
        self.root = base / "journal" / digest
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------------
    # Addressing (same digest scheme as the result cache)
    # ------------------------------------------------------------------
    def digest(self, key: str) -> str:
        h = hashlib.sha256()
        h.update(f"v{_FORMAT_VERSION}\0".encode())
        h.update(self.fingerprint.encode())
        h.update(b"\0")
        h.update(key.encode())
        return h.hexdigest()

    def _path(self, digest: str) -> Path:
        return self.root / f"{digest}.pkl"

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def get(self, key: str):
        """The journaled outcome for one cell key, or :data:`MISS`."""
        value = load_pickle_hardened(self._path(self.digest(key)), "journal")
        if value is MISS:
            self.misses += 1
            return MISS
        self.hits += 1
        return value

    def put(self, key: str, outcome) -> None:
        """Checkpoint one completed outcome (atomic rename)."""
        path = self._path(self.digest(key))
        path.parent.mkdir(parents=True, exist_ok=True)
        self._write_meta_once()
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(outcome, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
            self.writes += 1
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _write_meta_once(self) -> None:
        meta = self.root / "meta.json"
        if meta.exists():
            return
        payload = {
            "campaign": self.campaign,
            "fingerprint": self.fingerprint[:16],
            "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        }
        with open(meta, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    # ------------------------------------------------------------------
    # Management
    # ------------------------------------------------------------------
    def entries(self) -> int:
        """Completed cells currently journaled."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.pkl"))

    def write_partial_manifest(self, records) -> Optional[str]:
        """Drop a human-readable ``manifest.partial.json`` next to the
        entries: what completed before the campaign was interrupted.
        ``records`` is a list of JSON-able per-cell dicts."""
        if not self.root.is_dir():
            return None
        path = self.root / "manifest.partial.json"
        payload = {
            "campaign": self.campaign,
            "completed": len(records),
            "cells": records,
        }
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return str(path)

    def discard(self) -> int:
        """Delete the whole journal (a cleanly finished campaign needs
        no checkpoint); returns how many entries were dropped."""
        if not self.root.is_dir():
            return 0
        removed = 0
        for path in sorted(self.root.iterdir()):
            try:
                if path.suffix == ".pkl":
                    removed += 1
                path.unlink()
            except OSError:
                continue
        try:
            self.root.rmdir()
        except OSError:
            pass
        return removed

    def stats(self) -> Dict[str, object]:
        return {
            "root": str(self.root),
            "campaign": self.campaign,
            "entries": self.entries(),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
        }
