"""Fig. 4: the write size (in bytes) in one transaction.

Builds all eleven workloads and reports the mean bytes written per
transaction.  The paper's observation to confirm: write sizes are
generally below 0.5 KB, i.e. real PM transactions have small write
sets, so a 20-entry on-chip log buffer suffices (Section II-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.harness.report import format_table
from repro.workloads.registry import FIG4_WORKLOADS, build_workload


@dataclass
class Fig4Result:
    """Mean write bytes per transaction, per workload."""

    write_sizes: Dict[str, float]

    @property
    def average(self) -> float:
        return sum(self.write_sizes.values()) / len(self.write_sizes)

    def format_report(self) -> str:
        rows: List[List[object]] = [
            [name, size] for name, size in self.write_sizes.items()
        ]
        rows.append(["Average", self.average])
        return format_table(
            ["workload", "write size (B) per transaction"],
            rows,
            title="Fig. 4 — write size per transaction",
        )


def run(
    threads: int = 2,
    transactions: int = 300,
    workloads: Sequence[str] = tuple(FIG4_WORKLOADS),
) -> Fig4Result:
    """Measure the mean write size of every Fig. 4 workload."""
    sizes: Dict[str, float] = {}
    for name in workloads:
        trace = build_workload(name, threads=threads, transactions=transactions)
        sizes[name] = trace.mean_write_size_bytes()
    return Fig4Result(write_sizes=sizes)
