"""Fig. 4: the write size (in bytes) in one transaction.

Builds all eleven workloads and reports the mean bytes written per
transaction.  The paper's observation to confirm: write sizes are
generally below 0.5 KB, i.e. real PM transactions have small write
sets, so a 20-entry on-chip log buffer suffices (Section II-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigError
from repro.harness.executor import CellSpec, Executor, WorkloadSpec
from repro.harness.experiments import (
    REGISTRY,
    Axis,
    ExperimentSpec,
    TableData,
    TabularResult,
    run_experiment,
)
from repro.workloads.registry import FIG4_WORKLOADS


@dataclass
class Fig4Result(TabularResult):
    """Mean write bytes per transaction, per workload."""

    write_sizes: Dict[str, float]

    @property
    def average(self) -> float:
        if not self.write_sizes:
            raise ConfigError(
                "fig4 ran with an empty workload list; there is no "
                "average write size to report"
            )
        return sum(self.write_sizes.values()) / len(self.write_sizes)

    def tables(self) -> List[TableData]:
        rows: List[List[object]] = [
            [name, size] for name, size in self.write_sizes.items()
        ]
        rows.append(["Average", self.average])
        return [
            TableData.make(
                ["workload", "write size (B) per transaction"],
                rows,
                title="Fig. 4 — write size per transaction",
            )
        ]


SPEC = REGISTRY.register(
    ExperimentSpec(
        name="fig4",
        figure="Fig. 4",
        description="Mean write size (bytes) per transaction, all workloads",
        params=dict(
            threads=2, transactions=300, workloads=tuple(FIG4_WORKLOADS)
        ),
        smoke_params=dict(threads=1, transactions=10, workloads=("hash", "bank")),
        axes=lambda p: (Axis("workload", p["workloads"]),),
        # scheme=None cells: no simulation runs, but the trace builds
        # still fan out (and cache).
        cell=lambda p, pt: CellSpec(
            workload=WorkloadSpec.make(
                pt["workload"], threads=p["threads"], transactions=p["transactions"]
            ),
            scheme=None,
            cores=p["threads"],
        ),
        assemble=lambda p, c: Fig4Result(
            write_sizes={
                pt["workload"]: o.result.mean_write_size_bytes
                for pt, o in c.cells()
            }
        ),
    )
)


def run(
    threads: int = 2,
    transactions: int = 300,
    workloads: Sequence[str] = tuple(FIG4_WORKLOADS),
    executor: Optional[Executor] = None,
) -> Fig4Result:
    """Measure the mean write size of every Fig. 4 workload."""
    return run_experiment(
        SPEC,
        executor=executor,
        threads=threads,
        transactions=transactions,
        workloads=tuple(workloads),
    )
