"""Fig. 4: the write size (in bytes) in one transaction.

Builds all eleven workloads and reports the mean bytes written per
transaction.  The paper's observation to confirm: write sizes are
generally below 0.5 KB, i.e. real PM transactions have small write
sets, so a 20-entry on-chip log buffer suffices (Section II-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.harness.executor import (
    CellSpec,
    Executor,
    WorkloadSpec,
    raise_on_failures,
)
from repro.harness.report import format_table
from repro.workloads.registry import FIG4_WORKLOADS


@dataclass
class Fig4Result:
    """Mean write bytes per transaction, per workload."""

    write_sizes: Dict[str, float]

    @property
    def average(self) -> float:
        return sum(self.write_sizes.values()) / len(self.write_sizes)

    def format_report(self) -> str:
        rows: List[List[object]] = [
            [name, size] for name, size in self.write_sizes.items()
        ]
        rows.append(["Average", self.average])
        return format_table(
            ["workload", "write size (B) per transaction"],
            rows,
            title="Fig. 4 — write size per transaction",
        )


def run(
    threads: int = 2,
    transactions: int = 300,
    workloads: Sequence[str] = tuple(FIG4_WORKLOADS),
    executor: Optional[Executor] = None,
) -> Fig4Result:
    """Measure the mean write size of every Fig. 4 workload.

    These are ``scheme=None`` trace-statistics cells: no simulation
    runs, but the eleven trace builds still fan out (and cache).
    """
    cells = [
        CellSpec(
            workload=WorkloadSpec.make(
                name, threads=threads, transactions=transactions
            ),
            scheme=None,
            cores=threads,
        )
        for name in workloads
    ]
    outcomes = (executor if executor is not None else Executor(jobs=1)).run(cells)
    raise_on_failures(outcomes)
    sizes: Dict[str, float] = {
        name: outcome.result.mean_write_size_bytes
        for name, outcome in zip(workloads, outcomes)
    }
    return Fig4Result(write_sizes=sizes)
