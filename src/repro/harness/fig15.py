"""Fig. 15: sensitivity to the log buffer access latency.

Sweeps the buffer latency from 8 to 128 cycles (covering SRAM through
slower buffer technologies) and reports Silo's throughput normalized
to the 8-cycle configuration.

Expected shape (Section VI-G): essentially flat — the CPU store never
waits to write the buffer and the controller reads it off the critical
path, so even a 128-cycle buffer costs only a few percent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.harness.executor import (
    CellSpec,
    Executor,
    WorkloadSpec,
    raise_on_failures,
)
from repro.harness.report import format_table

FIG15_WORKLOADS: Tuple[str, ...] = (
    "array",
    "btree",
    "hash",
    "queue",
    "rbtree",
    "tpcc",
    "ycsb",
)

LATENCIES: Tuple[int, ...] = tuple(range(8, 129, 24))


@dataclass
class Fig15Result:
    """``throughput[workload][latency]`` normalized to the first
    latency point."""

    throughput: Dict[str, Dict[int, float]]
    latencies: Tuple[int, ...]

    def worst_degradation(self) -> float:
        """Largest relative slowdown across all points."""
        worst = 0.0
        for row in self.throughput.values():
            worst = max(worst, 1.0 - min(row.values()))
        return worst

    def format_report(self) -> str:
        rows: List[List[object]] = [
            [name] + [row[lat] for lat in self.latencies]
            for name, row in self.throughput.items()
        ]
        return format_table(
            ["workload"] + [f"{lat}cy" for lat in self.latencies],
            rows,
            title="Fig. 15 — normalized throughput vs log buffer latency (Silo)",
        )


def run(
    threads: int = 8,
    transactions: int = 150,
    workloads: Sequence[str] = FIG15_WORKLOADS,
    latencies: Sequence[int] = LATENCIES,
    executor: Optional[Executor] = None,
) -> Fig15Result:
    """Sweep the log buffer latency for every workload."""
    cells = [
        CellSpec(
            workload=WorkloadSpec.make(
                name, threads=threads, transactions=transactions
            ),
            scheme="silo",
            cores=threads,
            config=SystemConfig.table2(threads).with_log_buffer(
                access_latency_cycles=latency
            ),
        )
        for name in workloads
        for latency in latencies
    ]
    outcomes = (executor if executor is not None else Executor(jobs=1)).run(cells)
    raise_on_failures(outcomes)

    throughput: Dict[str, Dict[int, float]] = {}
    at = iter(outcomes)
    for name in workloads:
        per_lat: Dict[int, float] = {}
        for latency in latencies:
            per_lat[latency] = next(at).result.throughput_tx_per_sec
        base = per_lat[latencies[0]]
        throughput[name] = {
            lat: (v / base if base else 0.0) for lat, v in per_lat.items()
        }
    return Fig15Result(throughput=throughput, latencies=tuple(latencies))
