"""Fig. 15: sensitivity to the log buffer access latency.

Sweeps the buffer latency from 8 to 128 cycles (covering SRAM through
slower buffer technologies) and reports Silo's throughput normalized
to the 8-cycle configuration.

Expected shape (Section VI-G): essentially flat — the CPU store never
waits to write the buffer and the controller reads it off the critical
path, so even a 128-cycle buffer costs only a few percent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.harness.report import format_table
from repro.harness.runner import run_single
from repro.workloads.registry import build_workload

FIG15_WORKLOADS: Tuple[str, ...] = (
    "array",
    "btree",
    "hash",
    "queue",
    "rbtree",
    "tpcc",
    "ycsb",
)

LATENCIES: Tuple[int, ...] = tuple(range(8, 129, 24))


@dataclass
class Fig15Result:
    """``throughput[workload][latency]`` normalized to the first
    latency point."""

    throughput: Dict[str, Dict[int, float]]
    latencies: Tuple[int, ...]

    def worst_degradation(self) -> float:
        """Largest relative slowdown across all points."""
        worst = 0.0
        for row in self.throughput.values():
            worst = max(worst, 1.0 - min(row.values()))
        return worst

    def format_report(self) -> str:
        rows: List[List[object]] = [
            [name] + [row[lat] for lat in self.latencies]
            for name, row in self.throughput.items()
        ]
        return format_table(
            ["workload"] + [f"{lat}cy" for lat in self.latencies],
            rows,
            title="Fig. 15 — normalized throughput vs log buffer latency (Silo)",
        )


def run(
    threads: int = 8,
    transactions: int = 150,
    workloads: Sequence[str] = FIG15_WORKLOADS,
    latencies: Sequence[int] = LATENCIES,
) -> Fig15Result:
    """Sweep the log buffer latency for every workload."""
    throughput: Dict[str, Dict[int, float]] = {}
    for name in workloads:
        trace = build_workload(name, threads=threads, transactions=transactions)
        per_lat: Dict[int, float] = {}
        for latency in latencies:
            config = SystemConfig.table2(threads).with_log_buffer(
                access_latency_cycles=latency
            )
            result = run_single(trace, "silo", threads, config)
            per_lat[latency] = result.throughput_tx_per_sec
        base = per_lat[latencies[0]]
        throughput[name] = {
            lat: (v / base if base else 0.0) for lat, v in per_lat.items()
        }
    return Fig15Result(throughput=throughput, latencies=tuple(latencies))
