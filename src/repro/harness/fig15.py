"""Fig. 15: sensitivity to the log buffer access latency.

Sweeps the buffer latency from 8 to 128 cycles (covering SRAM through
slower buffer technologies) and reports Silo's throughput normalized
to the 8-cycle configuration.

Expected shape (Section VI-G): essentially flat — the CPU store never
waits to write the buffer and the controller reads it off the critical
path, so even a 128-cycle buffer costs only a few percent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.harness.executor import CellSpec, Executor, WorkloadSpec
from repro.harness.experiments import (
    REGISTRY,
    Axis,
    ExperimentSpec,
    TableData,
    TabularResult,
    normalize_series,
    run_experiment,
)

FIG15_WORKLOADS: Tuple[str, ...] = (
    "array",
    "btree",
    "hash",
    "queue",
    "rbtree",
    "tpcc",
    "ycsb",
)

LATENCIES: Tuple[int, ...] = tuple(range(8, 129, 24))


@dataclass
class Fig15Result(TabularResult):
    """``throughput[workload][latency]`` normalized to the first
    latency point."""

    throughput: Dict[str, Dict[int, float]]
    latencies: Tuple[int, ...]

    def worst_degradation(self) -> float:
        """Largest relative slowdown across all points."""
        worst = 0.0
        for row in self.throughput.values():
            worst = max(worst, 1.0 - min(row.values()))
        return worst

    def tables(self) -> List[TableData]:
        rows: List[List[object]] = [
            [name] + [row[lat] for lat in self.latencies]
            for name, row in self.throughput.items()
        ]
        return [
            TableData.make(
                ["workload"] + [f"{lat}cy" for lat in self.latencies],
                rows,
                title="Fig. 15 — normalized throughput vs log buffer latency (Silo)",
            )
        ]


SPEC = REGISTRY.register(
    ExperimentSpec(
        name="fig15",
        figure="Fig. 15",
        description="Throughput vs log buffer access latency (Silo)",
        params=dict(
            threads=8,
            transactions=150,
            workloads=FIG15_WORKLOADS,
            latencies=LATENCIES,
        ),
        smoke_params=dict(
            threads=1, transactions=10, workloads=("hash",), latencies=(8, 64)
        ),
        axes=lambda p: (
            Axis("workload", p["workloads"]),
            Axis("latency", p["latencies"]),
        ),
        cell=lambda p, pt: CellSpec(
            workload=WorkloadSpec.make(
                pt["workload"], threads=p["threads"], transactions=p["transactions"]
            ),
            scheme="silo",
            cores=p["threads"],
            config=SystemConfig.table2(p["threads"]).with_log_buffer(
                access_latency_cycles=pt["latency"]
            ),
        ),
        assemble=lambda p, c: Fig15Result(
            throughput={
                name: normalize_series(
                    {
                        lat: c.run_result(
                            workload=name, latency=lat
                        ).throughput_tx_per_sec
                        for lat in p["latencies"]
                    }
                )
                for name in p["workloads"]
            },
            latencies=tuple(p["latencies"]),
        ),
    )
)


def run(
    threads: int = 8,
    transactions: int = 150,
    workloads: Sequence[str] = FIG15_WORKLOADS,
    latencies: Sequence[int] = LATENCIES,
    executor: Optional[Executor] = None,
) -> Fig15Result:
    """Sweep the log buffer latency for every workload."""
    return run_experiment(
        SPEC,
        executor=executor,
        threads=threads,
        transactions=transactions,
        workloads=tuple(workloads),
        latencies=tuple(latencies),
    )
