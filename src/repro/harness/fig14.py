"""Fig. 14: Silo processing large transactions (log overflow).

For each benchmark the per-transaction write set is scaled to 1x, 2x,
4x, 8x and 16x the log buffer capacity by batching more data-structure
operations into one transaction.  Throughput and PM write traffic are
normalized to the 1x configuration of the same benchmark.

Expected shape (Section VI-F): throughput dips only mildly (the paper
reports -7.4% on average at 16x) because overflowed undo logs flush in
parallel with new log generation; write traffic grows but stays small
(up to ~1.9x on average) thanks to batched 14-entry overflow flushes.
Array stays flat (most of its logs are ignored); TPCC/YCSB stay stable
thanks to locality/merging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.executor import CellSpec, Executor, WorkloadSpec
from repro.harness.experiments import (
    REGISTRY,
    Axis,
    ExperimentSpec,
    TableData,
    TabularResult,
    normalize_series,
    run_experiment,
)

FIG14_WORKLOADS: Tuple[str, ...] = (
    "array",
    "btree",
    "hash",
    "queue",
    "rbtree",
    "tpcc",
    "ycsb",
)

MULTIPLIERS: Tuple[int, ...] = (1, 2, 4, 8, 16)


@dataclass
class Fig14Result(TabularResult):
    """``throughput[workload][multiplier]`` etc., normalized to 1x."""

    throughput: Dict[str, Dict[int, float]]
    write_traffic: Dict[str, Dict[int, float]]
    multipliers: Tuple[int, ...] = MULTIPLIERS

    def average(self, table: Dict[str, Dict[int, float]], mult: int) -> float:
        return sum(row[mult] for row in table.values()) / len(table)

    def tables(self) -> List[TableData]:
        out: List[TableData] = []
        for title, table in (
            ("Fig. 14a — normalized transaction throughput", self.throughput),
            ("Fig. 14b — normalized PM write traffic", self.write_traffic),
        ):
            rows: List[List[object]] = [
                [name] + [row[m] for m in self.multipliers]
                for name, row in table.items()
            ]
            rows.append(
                ["Average"] + [self.average(table, m) for m in self.multipliers]
            )
            out.append(
                TableData.make(
                    ["workload"] + [f"{m}x" for m in self.multipliers],
                    rows,
                    title=title,
                )
            )
        return out


def _assemble(p, c) -> Fig14Result:
    throughput: Dict[str, Dict[int, float]] = {}
    traffic: Dict[str, Dict[int, float]] = {}
    for name in p["workloads"]:
        results = {
            m: c.run_result(workload=name, multiplier=m) for m in p["multipliers"]
        }
        throughput[name] = normalize_series(
            # ops rate: tx/sec scaled by the ops batched into each tx
            {m: r.throughput_tx_per_sec * m for m, r in results.items()}
        )
        traffic[name] = normalize_series(
            {m: r.media_writes / max(m, 1) for m, r in results.items()}  # per op
        )
    return Fig14Result(
        throughput=throughput,
        write_traffic=traffic,
        multipliers=tuple(p["multipliers"]),
    )


SPEC = REGISTRY.register(
    ExperimentSpec(
        name="fig14",
        figure="Fig. 14",
        description="Silo under large transactions (1x-16x write sets)",
        params=dict(
            threads=8,
            transactions=100,
            workloads=FIG14_WORKLOADS,
            multipliers=MULTIPLIERS,
        ),
        smoke_params=dict(
            threads=1, transactions=10, workloads=("hash",), multipliers=(1, 2)
        ),
        axes=lambda p: (
            Axis("workload", p["workloads"]),
            Axis("multiplier", p["multipliers"]),
        ),
        cell=lambda p, pt: CellSpec(
            workload=WorkloadSpec.make(
                pt["workload"],
                threads=p["threads"],
                transactions=p["transactions"],
                ops_per_tx=pt["multiplier"],
            ),
            scheme="silo",
            cores=p["threads"],
        ),
        assemble=_assemble,
    )
)


def run(
    threads: int = 8,
    transactions: int = 100,
    workloads: Sequence[str] = FIG14_WORKLOADS,
    multipliers: Sequence[int] = MULTIPLIERS,
    executor: Optional[Executor] = None,
) -> Fig14Result:
    """Run the large-transaction sweep on Silo."""
    return run_experiment(
        SPEC,
        executor=executor,
        threads=threads,
        transactions=transactions,
        workloads=tuple(workloads),
        multipliers=tuple(multipliers),
    )
