"""Fig. 14: Silo processing large transactions (log overflow).

For each benchmark the per-transaction write set is scaled to 1x, 2x,
4x, 8x and 16x the log buffer capacity by batching more data-structure
operations into one transaction.  Throughput and PM write traffic are
normalized to the 1x configuration of the same benchmark.

Expected shape (Section VI-F): throughput dips only mildly (the paper
reports -7.4% on average at 16x) because overflowed undo logs flush in
parallel with new log generation; write traffic grows but stays small
(up to ~1.9x on average) thanks to batched 14-entry overflow flushes.
Array stays flat (most of its logs are ignored); TPCC/YCSB stay stable
thanks to locality/merging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.executor import (
    CellSpec,
    Executor,
    WorkloadSpec,
    raise_on_failures,
)
from repro.harness.report import format_table

FIG14_WORKLOADS: Tuple[str, ...] = (
    "array",
    "btree",
    "hash",
    "queue",
    "rbtree",
    "tpcc",
    "ycsb",
)

MULTIPLIERS: Tuple[int, ...] = (1, 2, 4, 8, 16)


@dataclass
class Fig14Result:
    """``throughput[workload][multiplier]`` etc., normalized to 1x."""

    throughput: Dict[str, Dict[int, float]]
    write_traffic: Dict[str, Dict[int, float]]
    multipliers: Tuple[int, ...] = MULTIPLIERS

    def average(self, table: Dict[str, Dict[int, float]], mult: int) -> float:
        return sum(row[mult] for row in table.values()) / len(table)

    def format_report(self) -> str:
        parts: List[str] = []
        for title, table in (
            ("Fig. 14a — normalized transaction throughput", self.throughput),
            ("Fig. 14b — normalized PM write traffic", self.write_traffic),
        ):
            rows: List[List[object]] = [
                [name] + [row[m] for m in self.multipliers]
                for name, row in table.items()
            ]
            rows.append(
                ["Average"] + [self.average(table, m) for m in self.multipliers]
            )
            parts.append(
                format_table(
                    ["workload"] + [f"{m}x" for m in self.multipliers],
                    rows,
                    title=title,
                )
            )
        return "\n\n".join(parts)


def run(
    threads: int = 8,
    transactions: int = 100,
    workloads: Sequence[str] = FIG14_WORKLOADS,
    multipliers: Sequence[int] = MULTIPLIERS,
    executor: Optional[Executor] = None,
) -> Fig14Result:
    """Run the large-transaction sweep on Silo."""
    cells = [
        CellSpec(
            workload=WorkloadSpec.make(
                name, threads=threads, transactions=transactions, ops_per_tx=mult
            ),
            scheme="silo",
            cores=threads,
        )
        for name in workloads
        for mult in multipliers
    ]
    outcomes = (executor if executor is not None else Executor(jobs=1)).run(cells)
    raise_on_failures(outcomes)

    throughput: Dict[str, Dict[int, float]] = {}
    traffic: Dict[str, Dict[int, float]] = {}
    at = iter(outcomes)
    for name in workloads:
        per_tp: Dict[int, float] = {}
        per_wr: Dict[int, float] = {}
        for mult in multipliers:
            result = next(at).result
            per_tp[mult] = result.throughput_tx_per_sec * mult  # ops rate
            per_wr[mult] = result.media_writes / max(mult, 1)  # per op
        base_tp, base_wr = per_tp[multipliers[0]], per_wr[multipliers[0]]
        throughput[name] = {
            m: (v / base_tp if base_tp else 0.0) for m, v in per_tp.items()
        }
        traffic[name] = {
            m: (v / base_wr if base_wr else 0.0) for m, v in per_wr.items()
        }
    return Fig14Result(
        throughput=throughput,
        write_traffic=traffic,
        multipliers=tuple(multipliers),
    )
