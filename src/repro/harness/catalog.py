"""The design-catalog study: every registered design on one grid.

Beyond the paper's five-scheme comparisons (``fig11``/``fig12``), this
study runs the *whole* catalog — the nine legacy designs plus the
policy-assembled entries (``aglog``, ``quadra1f``, ``trinity2f``,
``redolog4f``) — and reports the metrics the policy axes move:

* **media.waf** (log bytes per dirty data byte): the granularity
  axis's figure of merit.  The adaptive entry should sit at or below
  both the pure word and pure page designs.
* **throughput**: the fence-schedule axis's cost, the 1f/2f/4f ladder
  ordering commit stalls.

The first table is the catalog itself: each design's position on the
three policy axes, straight from its :class:`DesignSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.designs.scheme import SchemeRegistry
from repro.harness.executor import CellSpec, Executor, WorkloadSpec
from repro.harness.experiments import (
    REGISTRY,
    Axis,
    ExperimentSpec,
    TableData,
    TabularResult,
    grids_from_campaign,
    run_experiment,
)
from repro.harness.runner import DEFAULT_TRANSACTIONS, DEFAULT_WORKLOADS

#: The full catalog, resolved at import (the registry is fully
#: populated by ``repro``'s package import).
ALL_DESIGNS = tuple(SchemeRegistry.names())

_AXES_COLUMNS = (
    "design",
    "granularity",
    "fences",
    "fence_schedule",
    "recovery",
    "columnar",
)


def catalog_rows(schemes: Sequence[str]) -> List[List[object]]:
    """One policy-axes row per design, from the specs."""
    rows: List[List[object]] = []
    for name in schemes:
        spec = SchemeRegistry._schemes[name].spec
        if spec is None:  # pragma: no cover - every registered design has one
            rows.append([name] + ["?"] * (len(_AXES_COLUMNS) - 1))
            continue
        row = spec.catalog_row()
        rows.append([row[column] for column in _AXES_COLUMNS])
    return rows


@dataclass
class CatalogResult(TabularResult):
    """Axes table plus per-core-count metric grids."""

    grids: Dict[int, object]
    schemes: Sequence[str]

    report_title = "Design catalog"

    def _metric_table(self, cores: int, metric: str, title: str) -> TableData:
        grid = self.grids[cores]
        rows = []
        for workload, per_scheme in grid.results.items():
            rows.append(
                [workload]
                + [
                    getattr(per_scheme[s], metric) if s in per_scheme else float("nan")
                    for s in self.schemes
                ]
            )
        return TableData.make(["workload"] + list(self.schemes), rows, title=title)

    def tables(self) -> List[TableData]:
        tables = [
            TableData.make(
                _AXES_COLUMNS,
                catalog_rows(self.schemes),
                title="Design catalog — policy axes",
            )
        ]
        for cores in sorted(self.grids):
            tables.append(
                self._metric_table(
                    cores,
                    "media_waf",
                    f"media.waf — log bytes / data byte ({cores} core(s))",
                )
            )
            tables.append(
                self._metric_table(
                    cores,
                    "throughput_tx_per_sec",
                    f"throughput — committed tx/s ({cores} core(s))",
                )
            )
        return tables


SPEC = REGISTRY.register(
    ExperimentSpec(
        name="catalog",
        figure="extension",
        description="full design catalog: policy axes, media.waf, throughput",
        params=dict(
            core_counts=(1, 4),
            schemes=ALL_DESIGNS,
            workloads=DEFAULT_WORKLOADS,
            transactions=DEFAULT_TRANSACTIONS,
        ),
        smoke_params=dict(
            core_counts=(1,),
            schemes=ALL_DESIGNS,
            workloads=("hash",),
            transactions=15,
        ),
        axes=lambda p: (
            Axis("cores", p["core_counts"]),
            Axis("workload", p["workloads"]),
            Axis("scheme", p["schemes"]),
        ),
        cell=lambda p, pt: CellSpec(
            workload=WorkloadSpec.make(
                pt["workload"], threads=pt["cores"], transactions=p["transactions"]
            ),
            scheme=pt["scheme"],
            cores=pt["cores"],
        ),
        assemble=lambda p, c: CatalogResult(
            grids=grids_from_campaign(c), schemes=tuple(p["schemes"])
        ),
    )
)


def run(
    core_counts: Sequence[int] = (1, 4),
    schemes: Sequence[str] = ALL_DESIGNS,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    transactions: int = DEFAULT_TRANSACTIONS,
    executor: Optional[Executor] = None,
) -> CatalogResult:
    """Run the full-catalog grid as one executor campaign."""
    return run_experiment(
        SPEC,
        executor=executor,
        core_counts=tuple(core_counts),
        schemes=tuple(schemes),
        workloads=tuple(workloads),
        transactions=transactions,
    )
