"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import List, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(value) for value in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN: an undefined ratio, not a number
            return "n/a"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:.3f}"
    return str(value)


def format_normalized(
    normalized: Mapping[str, Mapping[str, float]],
    schemes: Sequence[str],
    title: str,
    value_label: str = "normalized",
) -> str:
    """Render a ``{workload: {scheme: value}}`` table in plotting order."""
    rows = [
        [workload] + [per_scheme.get(scheme, float("nan")) for scheme in schemes]
        for workload, per_scheme in normalized.items()
    ]
    return format_table(["workload"] + list(schemes), rows, title=title)


def format_bars(
    values: Mapping[str, float],
    title: str = "",
    width: int = 48,
    unit: str = "",
) -> str:
    """Render a labelled horizontal ASCII bar chart.

    Bars are scaled to the largest value; each row shows the label,
    the bar and the numeric value — a terminal stand-in for the
    paper's grouped bar figures.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    if not values:
        return "\n".join(lines + ["(no data)"])
    label_width = max(len(str(k)) for k in values)
    peak = _peak(values.values())
    for label, value in values.items():
        lines.append(
            f"{str(label).ljust(label_width)} |{_bar(value, peak, width)}| "
            f"{_fmt(value)}{unit}"
        )
    return "\n".join(lines)


def _peak(values) -> float:
    """Bar scale: the largest finite value (NaN cells carry no bar)."""
    finite = [v for v in values if v == v]
    return (max(finite) if finite else 1.0) or 1.0


def _bar(value: float, peak: float, width: int) -> str:
    if value != value:  # NaN: no bar; the value column reads n/a
        return "".ljust(width)
    return ("#" * max(1 if value > 0 else 0, round(width * value / peak))).ljust(width)


def format_grouped_bars(
    groups: Mapping[str, Mapping[str, float]],
    title: str = "",
    width: int = 40,
) -> str:
    """Render ``{group: {series: value}}`` as grouped ASCII bars, one
    block per group (the shape of Figs. 11/12)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    peak = _peak(v for row in groups.values() for v in row.values())
    for group, row in groups.items():
        lines.append(f"{group}:")
        label_width = max((len(str(k)) for k in row), default=0)
        for label, value in row.items():
            lines.append(
                f"  {str(label).ljust(label_width)} |{_bar(value, peak, width)}| {_fmt(value)}"
            )
    return "\n".join(lines)
