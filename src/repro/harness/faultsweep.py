"""Randomized fault-injection campaigns (``silo-repro faultsweep``).

The crashtest sweep validates recovery under *clean* power failures;
this harness turns the device against the designs.  For every
(workload, scheme) pair it draws seeded crash points, attaches a
rotating set of fault presets — torn drains, dropped WPQ entries,
log-region bit errors, data-region bit errors, and a mixed "storm" —
and fans the cells through the parallel executor.  Each cell is judged
by the fault-aware oracle (:mod:`repro.faults.oracle`):

* **tolerated** — recovery rebuilt a correct image, or every residual
  mismatch is explained by an injected fault that recovery *reported*;
* **violation** — a mismatch outside the injected blast radius (a
  genuine recovery bug);
* **silent** — injected damage recovery absorbed without reporting.
  The campaign's hard gate: zero silent corruptions, always.

Every draw comes from one seeded RNG before any cell runs, so the
campaign is a fixed cell list: bit-identical verdicts at any ``--jobs``
count, cacheable by spec, and any failing cell prints a one-line
``replay`` command reproducing it in isolation.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import FaultPlan
from repro.harness.crashtest import DEFAULT_SCHEMES, _total_ops
from repro.harness.executor import (
    CellSpec,
    Executor,
    WorkloadSpec,
    aggregate_outcome_metrics,
    execute_cell,
    raise_on_failures,
    repro_command,
)
from repro.harness.report import format_table
from repro.obs import ObsConfig
from repro.obs.export import write_chrome_trace
from repro.sim.crash import CrashPlan

#: Fault presets rotated across crash points.  ``clean`` keeps a
#: no-fault control in every campaign so clean-crash behaviour is
#: continuously pinned against the fault machinery.
_PRESETS: Tuple[Tuple[str, Optional[Dict[str, object]]], ...] = (
    ("clean", None),
    ("tear", {"tear_prob": 0.7}),
    ("drop", {"drop_prob": 0.7}),
    ("logflip", {"log_bitflips": 2}),
    ("dataflip", {"data_bitflips": 3}),
    ("storm", {"tear_prob": 0.3, "drop_prob": 0.3, "log_bitflips": 1, "data_bitflips": 2}),
)


@dataclass
class FaultSweepResult:
    """Outcome of one fault-injection campaign."""

    runs: int = 0
    tolerated: int = 0
    violations: int = 0
    silent: int = 0
    #: Total faults injected / reported across the campaign, by kind.
    injected: Dict[str, int] = field(default_factory=dict)
    reported: Dict[str, int] = field(default_factory=dict)
    #: ``scheme -> (runs, violations, silent)``.
    per_scheme: Dict[str, Tuple[int, int, int]] = field(default_factory=dict)
    #: ``(scheme, workload, point, preset, what went wrong)`` per failure.
    failure_details: List[Tuple[str, str, str, str, str]] = field(
        default_factory=list
    )
    #: One copy-pasteable replay command per failure, same order.
    failure_commands: List[str] = field(default_factory=list)
    #: Aggregated obs metrics of the whole campaign (JSON form of a
    #: :class:`~repro.obs.MetricsRegistry`): WPQ occupancy and stall
    #: histograms, per-phase cycle attribution, summed over every cell.
    metrics: Optional[Dict[str, object]] = None
    #: Where the representative Chrome trace artifact landed, if asked.
    trace_path: Optional[str] = None

    @property
    def passed(self) -> bool:
        return self.violations == 0 and self.silent == 0

    def format_report(self) -> str:
        rows = [
            [
                scheme,
                runs,
                violations,
                silent,
                "PASS" if violations == 0 and silent == 0 else "FAIL",
            ]
            for scheme, (runs, violations, silent) in sorted(
                self.per_scheme.items()
            )
        ]
        table = format_table(
            ["scheme", "fault cells", "violations", "silent", "verdict"],
            rows,
            title="Fault-injection sweep (fault-aware atomic durability)",
        )
        lines = [
            table,
            "",
            f"faults injected: {sum(self.injected.values())} "
            f"({json.dumps(self.injected, sort_keys=True)})",
            f"faults reported: {sum(self.reported.values())} "
            f"({json.dumps(self.reported, sort_keys=True)})",
        ]
        if self.trace_path:
            lines.append(f"trace artifact: {self.trace_path}")
        if self.failure_details:
            lines += ["", "failures:"]
            for (scheme, workload, point, preset, what), cmd in zip(
                self.failure_details[:5], self.failure_commands[:5]
            ):
                lines.append(f"  {scheme}/{workload} @ {point} [{preset}]: {what}")
                lines.append(f"    replay: {cmd}")
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "metrics": self.metrics,
            "runs": self.runs,
            "tolerated": self.tolerated,
            "violations": self.violations,
            "silent": self.silent,
            "passed": self.passed,
            "injected": dict(sorted(self.injected.items())),
            "reported": dict(sorted(self.reported.items())),
            "per_scheme": {
                scheme: {"runs": r, "violations": v, "silent": s}
                for scheme, (r, v, s) in sorted(self.per_scheme.items())
            },
            "failures": [
                {
                    "scheme": scheme,
                    "workload": workload,
                    "point": point,
                    "preset": preset,
                    "detail": what,
                    "replay": cmd,
                }
                for (scheme, workload, point, preset, what), cmd in zip(
                    self.failure_details, self.failure_commands
                )
            ],
        }


def run(
    workloads: Sequence[str] = ("hash", "btree"),
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    points_per_pair: int = 12,
    threads: int = 2,
    transactions: int = 8,
    seed: int = 0,
    executor: Optional[Executor] = None,
    output: Optional[str] = None,
    smoke: bool = False,
    trace_output: Optional[str] = None,
) -> FaultSweepResult:
    """Sweep (crash point x fault preset) cells over every
    (scheme, workload) pair; optionally write the campaign report to
    ``output`` as JSON.

    Every cell runs with the obs metrics registry enabled, and the
    campaign report aggregates the histograms/phase cycles across all
    cells.  ``trace_output`` additionally re-runs the campaign's first
    faulted cell with event tracing on and writes its Chrome trace
    (crash + recovery events included) as a loadable artifact."""
    if smoke:
        workloads = ("hash",)
        points_per_pair = min(points_per_pair, 6)
        transactions = min(transactions, 6)
    rng = random.Random(seed)
    result = FaultSweepResult()

    cells: List[CellSpec] = []
    labels: List[Tuple[str, str, str, str]] = []
    for workload in workloads:
        wspec = WorkloadSpec.make(
            workload, threads=threads, transactions=transactions
        )
        ops = _total_ops(wspec.build())
        plans: List[Tuple[str, CrashPlan, str, Optional[FaultPlan]]] = []
        for point in range(points_per_pair):
            if rng.random() < 0.25:
                tid = rng.randrange(threads)
                index = rng.randrange(transactions)
                label = f"commit({tid},{index})"
                crash = CrashPlan(at_commit_of=(tid, index))
            else:
                at = rng.randrange(ops)
                label = f"op {at}"
                crash = CrashPlan(at_op=at)
            preset_name, preset_kwargs = _PRESETS[point % len(_PRESETS)]
            fault = (
                FaultPlan(seed=rng.randrange(1 << 30), **preset_kwargs)
                if preset_kwargs is not None
                else None
            )
            plans.append((label, crash, preset_name, fault))

        for scheme in schemes:
            for label, crash, preset_name, fault in plans:
                cells.append(
                    CellSpec(
                        workload=wspec,
                        scheme=scheme,
                        cores=threads,
                        crash_plan=crash,
                        fault_plan=fault,
                        verify=True,
                        obs=ObsConfig(metrics=True),
                    )
                )
                labels.append((workload, scheme, label, preset_name))

    outcomes = (executor if executor is not None else Executor(jobs=1)).run(cells)
    raise_on_failures(outcomes)

    for (workload, scheme, label, preset), outcome in zip(labels, outcomes):
        runs, violations, silent = result.per_scheme.get(scheme, (0, 0, 0))
        result.runs += 1
        runs += 1
        problems: List[str] = []
        verdict = outcome.fault_verdict
        if verdict is not None:
            for kind, count in verdict.injected.items():
                result.injected[kind] = result.injected.get(kind, 0) + count
            for kind, count in verdict.reported.items():
                result.reported[kind] = result.reported.get(kind, 0) + count
            if verdict.silent:
                result.silent += 1
                silent += 1
                problems.append(verdict.describe())
            if verdict.unattributed:
                result.violations += 1
                violations += 1
                if not verdict.silent:
                    problems.append(verdict.describe())
        elif outcome.mismatches:
            # Clean-control cell: the plain oracle applies unchanged.
            result.violations += 1
            violations += 1
            addr, got, want = outcome.mismatches[0]
            problems.append(
                f"{len(outcome.mismatches)} mismatch(es), first at "
                f"{addr:#x}: got {got:#x}, want {want:#x}"
            )
        if problems:
            result.failure_details.append(
                (scheme, workload, label, preset, "; ".join(problems))
            )
            result.failure_commands.append(repro_command(outcome.spec))
        else:
            result.tolerated += 1
        result.per_scheme[scheme] = (runs, violations, silent)

    aggregated = aggregate_outcome_metrics(outcomes)
    if aggregated is not None:
        result.metrics = aggregated.to_json_dict()

    if trace_output:
        result.trace_path = _write_trace_artifact(cells, trace_output)

    if output:
        with open(output, "w") as handle:
            json.dump(result.to_json_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return result


def _write_trace_artifact(cells: Sequence[CellSpec], path: str) -> Optional[str]:
    """Re-run the first faulted cell with event tracing and export it.

    One representative trace per campaign is enough for a CI artifact;
    the replay command reproduces any *specific* cell on demand.  Runs
    in-process (the cells are tiny) with an obs-enabled spec, so it
    never collides with the campaign's cached outcomes.
    """
    chosen = next((c for c in cells if c.fault_plan is not None), None)
    if chosen is None:
        chosen = next(iter(cells), None)
    if chosen is None:
        return None
    spec = CellSpec(
        workload=chosen.workload,
        scheme=chosen.scheme,
        cores=chosen.cores,
        crash_plan=chosen.crash_plan,
        fault_plan=chosen.fault_plan,
        obs=ObsConfig(events=True, metrics=True),
    )
    outcome = execute_cell(spec)
    write_chrome_trace(outcome.result, path)
    return path
