"""Recovery-cost comparison (extension beyond the paper's figures).

Crashes each design at the same point of the same workload and reports
how much log-region state recovery had to scan and apply, plus a
first-order latency estimate (sequential scan reads + replay/revoke
writes).  The expected shape follows the designs' logging volume:

* Silo scans only what its battery flushed at the crash — the open
  transactions' merged undo logs (plus any overflow spills);
* LAD scans only slow-mode fallback logs (usually nothing);
* Base/FWB/MorLog scan the logs persisted during the run that were not
  yet truncated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.config import SystemConfig
from repro.harness.executor import (
    CellSpec,
    Executor,
    WorkloadSpec,
    raise_on_failures,
)
from repro.harness.report import format_table
from repro.sim.crash import CrashPlan

DEFAULT_SCHEMES = ("base", "fwb", "morlog", "lad", "silo")


@dataclass
class RecoveryCostRow:
    scheme: str
    scanned: int
    replayed: int
    revoked: int
    discarded: int
    estimated_us: float
    consistent: bool


@dataclass
class RecoveryCostResult:
    workload: str
    crash_at: int
    rows: List[RecoveryCostRow]

    def row(self, scheme: str) -> RecoveryCostRow:
        for row in self.rows:
            if row.scheme == scheme:
                return row
        raise KeyError(scheme)

    def format_report(self) -> str:
        table = [
            [
                row.scheme,
                row.scanned,
                row.replayed,
                row.revoked,
                row.discarded,
                row.estimated_us,
                "yes" if row.consistent else "NO",
            ]
            for row in self.rows
        ]
        return format_table(
            [
                "scheme",
                "logs scanned",
                "replayed",
                "revoked",
                "discarded",
                "est. recovery (us)",
                "consistent",
            ],
            table,
            title=(
                f"Recovery cost — {self.workload}, crash at op {self.crash_at}"
            ),
        )


def run(
    workload: str = "hash",
    threads: int = 2,
    transactions: int = 60,
    crash_fraction: float = 0.6,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    config: Optional[SystemConfig] = None,
    executor: Optional[Executor] = None,
) -> RecoveryCostResult:
    """Crash every design at the same trace point and compare recovery."""
    wspec = WorkloadSpec.make(workload, threads=threads, transactions=transactions)
    trace = wspec.build()
    total_ops = sum(
        len(tx.ops) + 2 for thread in trace.threads for tx in thread.transactions
    )
    crash_at = int(total_ops * crash_fraction)
    cells = [
        CellSpec(
            workload=wspec,
            scheme=scheme,
            cores=threads,
            config=config,
            crash_plan=CrashPlan(at_op=crash_at),
            verify=True,
        )
        for scheme in schemes
    ]
    outcomes = (executor if executor is not None else Executor(jobs=1)).run(cells)
    raise_on_failures(outcomes)

    rows: List[RecoveryCostRow] = []
    for scheme, outcome in zip(schemes, outcomes):
        report = outcome.result.recovery
        rows.append(
            RecoveryCostRow(
                scheme=scheme,
                scanned=report.scanned,
                replayed=report.replayed,
                revoked=report.revoked,
                discarded=report.discarded,
                estimated_us=report.estimated_ns / 1000.0,
                consistent=not outcome.mismatches,
            )
        )
    return RecoveryCostResult(workload=workload, crash_at=crash_at, rows=rows)
