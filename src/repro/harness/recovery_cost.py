"""Recovery-cost comparison (extension beyond the paper's figures).

Crashes each design at the same point of the same workload and reports
how much log-region state recovery had to scan and apply, plus a
first-order latency estimate (sequential scan reads + replay/revoke
writes).  The expected shape follows the designs' logging volume:

* Silo scans only what its battery flushed at the crash — the open
  transactions' merged undo logs (plus any overflow spills);
* LAD scans only slow-mode fallback logs (usually nothing);
* Base/FWB/MorLog scan the logs persisted during the run that were not
  yet truncated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.config import SystemConfig
from repro.harness.executor import CellSpec, Executor, WorkloadSpec
from repro.harness.experiments import (
    REGISTRY,
    Axis,
    ExperimentSpec,
    TableData,
    TabularResult,
    run_experiment,
)
from repro.sim.crash import CrashPlan

DEFAULT_SCHEMES = ("base", "fwb", "morlog", "lad", "silo")


@dataclass
class RecoveryCostRow:
    scheme: str
    scanned: int
    replayed: int
    revoked: int
    discarded: int
    estimated_us: float
    consistent: bool


@dataclass
class RecoveryCostResult(TabularResult):
    workload: str
    crash_at: int
    rows: List[RecoveryCostRow]

    def row(self, scheme: str) -> RecoveryCostRow:
        for row in self.rows:
            if row.scheme == scheme:
                return row
        raise KeyError(scheme)

    def tables(self) -> List[TableData]:
        table = [
            [
                row.scheme,
                row.scanned,
                row.replayed,
                row.revoked,
                row.discarded,
                row.estimated_us,
                "yes" if row.consistent else "NO",
            ]
            for row in self.rows
        ]
        return [
            TableData.make(
                [
                    "scheme",
                    "logs scanned",
                    "replayed",
                    "revoked",
                    "discarded",
                    "est. recovery (us)",
                    "consistent",
                ],
                table,
                title=(
                    f"Recovery cost — {self.workload}, crash at op {self.crash_at}"
                ),
            )
        ]


def _workload_spec(p) -> WorkloadSpec:
    return WorkloadSpec.make(
        p["workload"], threads=p["threads"], transactions=p["transactions"]
    )


def _crash_at(p) -> int:
    # The trace build is memoized per process, so recomputing the
    # crash point for every scheme's cell costs one build total.
    trace = _workload_spec(p).build()
    total_ops = sum(
        len(tx.ops) + 2 for thread in trace.threads for tx in thread.transactions
    )
    return int(total_ops * p["crash_fraction"])


def _row(point, outcome) -> RecoveryCostRow:
    report = outcome.result.recovery
    return RecoveryCostRow(
        scheme=point["scheme"],
        scanned=report.scanned,
        replayed=report.replayed,
        revoked=report.revoked,
        discarded=report.discarded,
        estimated_us=report.estimated_ns / 1000.0,
        consistent=not outcome.mismatches,
    )


SPEC = REGISTRY.register(
    ExperimentSpec(
        name="recovery_cost",
        figure="extension",
        description="Crash every design at the same point; compare "
        "recovery scan/replay volume",
        params=dict(
            workload="hash",
            threads=2,
            transactions=60,
            crash_fraction=0.6,
            schemes=DEFAULT_SCHEMES,
            config=None,
        ),
        smoke_params=dict(transactions=30),
        axes=lambda p: (Axis("scheme", p["schemes"]),),
        cell=lambda p, pt: CellSpec(
            workload=_workload_spec(p),
            scheme=pt["scheme"],
            cores=p["threads"],
            config=p["config"],
            crash_plan=CrashPlan(at_op=_crash_at(p)),
            verify=True,
        ),
        assemble=lambda p, c: RecoveryCostResult(
            workload=p["workload"],
            crash_at=_crash_at(p),
            rows=[_row(pt, o) for pt, o in c.cells()],
        ),
    )
)


def run(
    workload: str = "hash",
    threads: int = 2,
    transactions: int = 60,
    crash_fraction: float = 0.6,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    config: Optional[SystemConfig] = None,
    executor: Optional[Executor] = None,
) -> RecoveryCostResult:
    """Crash every design at the same trace point and compare recovery."""
    return run_experiment(
        SPEC,
        executor=executor,
        workload=workload,
        threads=threads,
        transactions=transactions,
        crash_fraction=crash_fraction,
        schemes=tuple(schemes),
        config=config,
    )
