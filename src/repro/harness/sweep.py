"""Generic parameter sweeps with export integration.

A small driver for design-space exploration beyond the fixed figures:
give it axes (workloads, schemes, core counts, config overrides) and it
runs the Cartesian product, returning records ready for
:mod:`repro.analysis.export`.

Example::

    from repro.harness.sweep import SweepSpec, run_sweep

    spec = SweepSpec(
        workloads=("hash", "btree"),
        schemes=("lad", "silo"),
        core_counts=(1, 4),
        config_overrides={"buf40": {"log_buffer": {"entries": 40}}},
    )
    records = run_sweep(spec, transactions=100)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.analysis.export import result_to_dict
from repro.harness.runner import run_single
from repro.workloads.registry import build_workload


@dataclass(frozen=True)
class SweepSpec:
    """Axes of one sweep.

    ``config_overrides`` maps a variant label to nested dataclass field
    overrides applied on top of the Table II configuration, e.g.
    ``{"fastpm": {"pm": {"write_ns": 75.0}}}``.  The implicit variant
    ``"table2"`` (no overrides) is always included first.
    """

    workloads: Tuple[str, ...] = ("hash",)
    schemes: Tuple[str, ...] = ("base", "silo")
    core_counts: Tuple[int, ...] = (1,)
    config_overrides: Mapping[str, Mapping[str, Mapping[str, object]]] = field(
        default_factory=dict
    )


def apply_overrides(
    config: SystemConfig, overrides: Mapping[str, Mapping[str, object]]
) -> SystemConfig:
    """Apply ``{section: {field: value}}`` overrides to a config."""
    for section, fields in overrides.items():
        if not hasattr(config, section):
            raise ConfigError(f"unknown config section {section!r}")
        current = getattr(config, section)
        if isinstance(fields, Mapping):
            config = replace(config, **{section: replace(current, **fields)})
        else:
            config = replace(config, **{section: fields})
    return config


def run_sweep(
    spec: SweepSpec,
    transactions: int = 100,
    workload_kwargs: Optional[Dict[str, object]] = None,
) -> List[Dict[str, object]]:
    """Run the Cartesian product and return flat result records."""
    records: List[Dict[str, object]] = []
    variants: List[Tuple[str, Mapping[str, Mapping[str, object]]]] = [
        ("table2", {})
    ] + list(spec.config_overrides.items())

    for cores in spec.core_counts:
        for workload in spec.workloads:
            trace = build_workload(
                workload,
                threads=cores,
                transactions=transactions,
                **(workload_kwargs or {}),
            )
            for variant, overrides in variants:
                config = apply_overrides(SystemConfig.table2(cores), overrides)
                for scheme in spec.schemes:
                    result = run_single(trace, scheme, cores, config)
                    record = result_to_dict(result)
                    record["workload"] = workload
                    record["variant"] = variant
                    records.append(record)
    return records
