"""Generic parameter sweeps with export integration.

A small driver for design-space exploration beyond the fixed figures:
give it axes (workloads, schemes, core counts, config overrides) and it
runs the Cartesian product — through the shared
:class:`~repro.harness.executor.Executor`, so ``executor=`` buys
parallelism and result caching — returning records ready for
:mod:`repro.analysis.export`.

Example::

    from repro.harness.sweep import SweepSpec, run_sweep

    spec = SweepSpec(
        workloads=("hash", "btree"),
        schemes=("lad", "silo"),
        core_counts=(1, 4),
        config_overrides={"buf40": {"log_buffer": {"entries": 40}}},
    )
    records = run_sweep(spec, transactions=100)
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields, is_dataclass, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.analysis.export import result_to_dict
from repro.harness.executor import (
    CellSpec,
    Executor,
    WorkloadSpec,
    raise_on_failures,
)


@dataclass(frozen=True)
class SweepSpec:
    """Axes of one sweep.

    ``config_overrides`` maps a variant label to nested dataclass field
    overrides applied on top of the Table II configuration, e.g.
    ``{"fastpm": {"pm": {"write_ns": 75.0}}}``.  The implicit variant
    ``"table2"`` (no overrides) is always included first.
    """

    workloads: Tuple[str, ...] = ("hash",)
    schemes: Tuple[str, ...] = ("base", "silo")
    core_counts: Tuple[int, ...] = (1,)
    config_overrides: Mapping[str, Mapping[str, Mapping[str, object]]] = field(
        default_factory=dict
    )


def apply_overrides(
    config: SystemConfig,
    overrides: Mapping[str, Mapping[str, object]],
    variant: Optional[str] = None,
) -> SystemConfig:
    """Apply ``{section: {field: value}}`` overrides to a config.

    Every rejection names the offending field path — and, when
    ``variant`` is given, the sweep variant label — so a bad override
    buried in a large sweep spec is directly attributable.
    """
    where = f"variant {variant!r}: " if variant is not None else ""
    for section, fields in overrides.items():
        if not hasattr(config, section):
            raise ConfigError(f"{where}unknown config section {section!r}")
        current = getattr(config, section)
        if isinstance(fields, Mapping):
            if is_dataclass(current):
                known = {f.name for f in dataclass_fields(current)}
                for name in fields:
                    if name not in known:
                        raise ConfigError(
                            f"{where}unknown config field {section}.{name}"
                        )
            try:
                config = replace(config, **{section: replace(current, **fields)})
            except (ConfigError, TypeError, ValueError) as exc:
                path = section + "." + ",".join(fields)
                raise ConfigError(
                    f"{where}invalid override at {path}: {exc}"
                ) from exc
        else:
            try:
                config = replace(config, **{section: fields})
            except (ConfigError, TypeError, ValueError) as exc:
                raise ConfigError(
                    f"{where}invalid override at {section}: {exc}"
                ) from exc
    return config


def run_sweep(
    spec: SweepSpec,
    transactions: int = 100,
    workload_kwargs: Optional[Dict[str, object]] = None,
    executor: Optional[Executor] = None,
) -> List[Dict[str, object]]:
    """Run the Cartesian product and return flat result records."""
    variants: List[Tuple[str, Mapping[str, Mapping[str, object]]]] = [
        ("table2", {})
    ] + list(spec.config_overrides.items())

    # Validate and materialize every variant's configuration per core
    # count up front, so a bad override fails before any cell runs.
    configs: Dict[Tuple[str, int], SystemConfig] = {
        (variant, cores): apply_overrides(
            SystemConfig.table2(cores), overrides, variant=variant
        )
        for variant, overrides in variants
        for cores in spec.core_counts
    }

    cells: List[CellSpec] = []
    for cores in spec.core_counts:
        for workload in spec.workloads:
            wspec = WorkloadSpec.make(
                workload,
                threads=cores,
                transactions=transactions,
                **(workload_kwargs or {}),
            )
            for variant, _ in variants:
                for scheme in spec.schemes:
                    cells.append(
                        CellSpec(
                            workload=wspec,
                            scheme=scheme,
                            cores=cores,
                            config=configs[(variant, cores)],
                        )
                    )
    outcomes = (executor if executor is not None else Executor(jobs=1)).run(cells)
    raise_on_failures(outcomes)

    records: List[Dict[str, object]] = []
    at = iter(outcomes)
    for cores in spec.core_counts:
        for workload in spec.workloads:
            for variant, _ in variants:
                for _scheme in spec.schemes:
                    record = result_to_dict(next(at).result)
                    record["workload"] = workload
                    record["variant"] = variant
                    records.append(record)
    return records
