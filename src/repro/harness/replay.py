"""Replay one crashtest/faultsweep cell in isolation.

``silo-repro replay --jobs 1 --spec '<json>'`` re-executes exactly the
cell a failing campaign printed — same workload recipe, scheme, crash
point and fault plan — in the calling process, then prints the full
verdict (recovery report, injected/reported fault accounting, oracle
mismatches).  This is the debugging entry point for randomized sweeps:
a failure is reproducible without re-running the campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.harness.executor import (
    CellOutcome,
    CellSpec,
    cell_spec_from_json,
    execute_cell,
)


@dataclass
class ReplayResult:
    """One replayed cell plus its verdict."""

    spec: CellSpec
    outcome: CellOutcome

    @property
    def passed(self) -> bool:
        if not self.outcome.ok:
            return False
        if self.outcome.fault_verdict is not None:
            return self.outcome.fault_verdict.ok
        return not self.outcome.mismatches

    def format_report(self) -> str:
        spec = self.spec
        lines = [
            "replayed cell:",
            f"  workload   : {spec.workload.name} "
            f"(threads={spec.workload.threads}, "
            f"transactions={spec.workload.transactions})",
            f"  scheme     : {spec.scheme}",
            f"  crash plan : {spec.crash_plan}",
            f"  fault plan : {spec.fault_plan}",
        ]
        outcome = self.outcome
        if not outcome.ok:
            lines.append("cell raised:")
            lines.append(outcome.error.rstrip())
            return "\n".join(lines)
        result = outcome.result
        lines.append(
            f"  committed  : {result.committed_count}"
            f"/{result.total_transactions} transactions"
        )
        report = result.recovery
        if report is not None:
            lines.append(
                f"  recovery   : scanned={report.scanned} "
                f"replayed={report.replayed} revoked={report.revoked} "
                f"rejected(torn={report.rejected_torn}, "
                f"dropped={report.rejected_dropped}, "
                f"checksum={report.rejected_checksum}, "
                f"tuples={report.rejected_tuples}) "
                f"salvaged={report.words_salvaged}w "
                f"poisoned={report.media_poisoned} "
                f"healed={report.poison_healed}"
            )
        verdict = outcome.fault_verdict
        if verdict is not None:
            lines.append(f"  injected   : {verdict.injected}")
            lines.append(f"  reported   : {verdict.reported}")
            lines.append(
                f"  mismatches : {len(verdict.mismatches)} total, "
                f"{len(verdict.unattributed)} unattributed"
            )
            if verdict.silent:
                lines.append(f"  SILENT     : {verdict.silent}")
        elif outcome.mismatches is not None:
            lines.append(f"  mismatches : {len(outcome.mismatches)}")
            for addr, got, want in outcome.mismatches[:5]:
                lines.append(
                    f"    {addr:#x}: got {got:#x}, want {want:#x}"
                )
        lines.append(f"verdict: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


def run(spec_json: str, executor: Optional[object] = None) -> ReplayResult:
    """Execute the cell encoded in ``spec_json`` in-process.

    ``executor`` is accepted for CLI symmetry but unused: a replay is
    always one cell at ``--jobs 1`` semantics, bypassing the cache so
    the failure actually re-runs.
    """
    spec = cell_spec_from_json(spec_json)
    return ReplayResult(spec=spec, outcome=execute_cell(spec))
