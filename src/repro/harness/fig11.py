"""Fig. 11: write traffic to the PM physical media, normalized to Base.

One sub-experiment per core count (the paper shows 1, 2, 4 and 8
cores).  Expected shape: Base worst; MorLog clearly below FWB
(intermediate-redo elimination); LAD and Silo lowest and close to each
other (Silo writes no logs in failure-free runs and coalesces its
word-granular in-place updates in the on-PM buffer).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.harness.executor import CellSpec, Executor, WorkloadSpec
from repro.harness.experiments import (
    REGISTRY,
    Axis,
    ExperimentSpec,
    NormalizedGridsResult,
    grids_from_campaign,
    run_experiment,
)
from repro.harness.runner import (
    DEFAULT_SCHEMES,
    DEFAULT_TRANSACTIONS,
    DEFAULT_WORKLOADS,
)


class Fig11Result(NormalizedGridsResult):
    """Normalized media writes per core count."""

    metric = "media_writes"
    report_title = "Fig. 11 — normalized PM media write traffic"
    chart_title = "fig11 — average normalized write traffic"


SPEC = REGISTRY.register(
    ExperimentSpec(
        name="fig11",
        figure="Fig. 11",
        description="PM media write traffic, normalized to Base",
        params=dict(
            core_counts=(1, 2, 4, 8),
            schemes=DEFAULT_SCHEMES,
            workloads=DEFAULT_WORKLOADS,
            transactions=DEFAULT_TRANSACTIONS,
        ),
        smoke_params=dict(
            core_counts=(1,),
            schemes=("base", "silo"),
            workloads=("hash",),
            transactions=15,
        ),
        axes=lambda p: (
            Axis("cores", p["core_counts"]),
            Axis("workload", p["workloads"]),
            Axis("scheme", p["schemes"]),
        ),
        cell=lambda p, pt: CellSpec(
            workload=WorkloadSpec.make(
                pt["workload"], threads=pt["cores"], transactions=p["transactions"]
            ),
            scheme=pt["scheme"],
            cores=pt["cores"],
        ),
        assemble=lambda p, c: Fig11Result(grids=grids_from_campaign(c)),
    )
)


def run(
    core_counts: Sequence[int] = (1, 2, 4, 8),
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    transactions: int = DEFAULT_TRANSACTIONS,
    executor: Optional[Executor] = None,
) -> Fig11Result:
    """Run the full write-traffic grid as one executor campaign."""
    return run_experiment(
        SPEC,
        executor=executor,
        core_counts=tuple(core_counts),
        schemes=tuple(schemes),
        workloads=tuple(workloads),
        transactions=transactions,
    )
