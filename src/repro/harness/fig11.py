"""Fig. 11: write traffic to the PM physical media, normalized to Base.

One sub-experiment per core count (the paper shows 1, 2, 4 and 8
cores).  Expected shape: Base worst; MorLog clearly below FWB
(intermediate-redo elimination); LAD and Silo lowest and close to each
other (Silo writes no logs in failure-free runs and coalesces its
word-granular in-place updates in the on-PM buffer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.harness.executor import Executor
from repro.harness.report import format_grouped_bars, format_normalized
from repro.harness.runner import (
    DEFAULT_SCHEMES,
    DEFAULT_TRANSACTIONS,
    DEFAULT_WORKLOADS,
    GridResult,
    add_average,
    normalize_to,
    run_grids,
)


@dataclass
class Fig11Result:
    """Normalized media writes per core count."""

    grids: Dict[int, GridResult]

    def normalized(self, cores: int) -> Dict[str, Dict[str, float]]:
        return add_average(normalize_to(self.grids[cores], "media_writes"))

    def format_report(self) -> str:
        parts: List[str] = []
        for cores in sorted(self.grids):
            parts.append(
                format_normalized(
                    self.normalized(cores),
                    schemes=list(self.grids[cores].schemes()),
                    title=f"Fig. 11 — normalized PM media write traffic ({cores} core(s))",
                )
            )
        return "\n\n".join(parts)

    def format_chart(self) -> str:
        """ASCII grouped bars of the cross-workload averages, one group
        per core count (the shape of the paper's figure)."""
        groups = {
            f"{cores} core(s)": self.normalized(cores)["average"]
            for cores in sorted(self.grids)
        }
        return format_grouped_bars(
            groups, title="fig11 — average normalized write traffic"
        )


def run(
    core_counts: Sequence[int] = (1, 2, 4, 8),
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    transactions: int = DEFAULT_TRANSACTIONS,
    executor: Optional[Executor] = None,
) -> Fig11Result:
    """Run the full write-traffic grid as one executor campaign."""
    grids = run_grids(core_counts, schemes, workloads, transactions, executor=executor)
    return Fig11Result(grids=grids)
