"""Experiment drivers regenerating every table and figure of the paper.

Every study is an :class:`~repro.harness.experiments.ExperimentSpec`
registered in :data:`~repro.harness.experiments.REGISTRY` and run by the
generic campaign engine (``silo-repro exp list|run``).  Each module
still exposes its historical ``run(...) -> <Result dataclass>`` API
returning the raw numbers plus a ``format_report`` helper that prints
the same rows or series the paper reports.  The CLI (``silo-repro``)
and the ``benchmarks/`` suite are thin wrappers around these.
"""

from repro.harness.runner import GridResult, normalize_to, run_grid
from repro.harness import (
    bench,
    crashtest,
    experiments,
    faultsweep,
    fig4,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    mcsweep,
    recovery_cost,
    replay,
    table1,
    table4,
)

__all__ = [
    "GridResult",
    "normalize_to",
    "run_grid",
    "bench",
    "crashtest",
    "experiments",
    "faultsweep",
    "fig4",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "mcsweep",
    "recovery_cost",
    "replay",
    "table1",
    "table4",
]
