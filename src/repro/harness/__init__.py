"""Experiment drivers regenerating every table and figure of the paper.

Each module exposes ``run(...) -> <Result dataclass>`` returning the
raw numbers plus a ``format_report`` helper that prints the same rows
or series the paper reports.  The CLI (``silo-repro``) and the
``benchmarks/`` suite are thin wrappers around these.
"""

from repro.harness.runner import GridResult, normalize_to, run_grid
from repro.harness import (
    bench,
    crashtest,
    faultsweep,
    fig4,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    mcsweep,
    recovery_cost,
    replay,
    table1,
    table4,
)

__all__ = [
    "GridResult",
    "normalize_to",
    "run_grid",
    "bench",
    "crashtest",
    "faultsweep",
    "fig4",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "mcsweep",
    "recovery_cost",
    "replay",
    "table1",
    "table4",
]
