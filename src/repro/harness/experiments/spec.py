"""Declarative experiment specifications and their campaign results.

An :class:`ExperimentSpec` states *what* a study is — its parameter
defaults, the axes its cells span, how one axis point lowers to a
:class:`~repro.harness.executor.CellSpec`, and how the finished
:class:`Campaign` assembles into the study's result object.  The
generic engine (:mod:`repro.harness.experiments.engine`) is the only
*how*: every registered experiment runs through the same lowering,
fan-out, caching and presentation machinery.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.common.errors import ConfigError
from repro.harness.executor import (
    CellOutcome,
    CellSpec,
    aggregate_outcome_metrics,
    spec_key,
)

#: One coordinate assignment, ``{axis name: value}``.
Point = Dict[str, Any]


@dataclass(frozen=True)
class Axis:
    """One named experiment axis (schemes, workloads, cores, ...)."""

    name: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered study, declared as data plus three pure hooks.

    ``axes(params)`` names the cell grid; the engine takes the
    Cartesian product in axis order.  ``cell(params, point)`` lowers
    one point to a :class:`CellSpec` (or ``None`` for analytic points
    that run no simulation — Table I/IV).  ``assemble(params,
    campaign)`` builds the study's result object, whose
    ``format_report()`` must stay byte-identical to the historical
    module's.
    """

    name: str
    #: The paper artefact this reproduces ("Fig. 11", "Table IV", or
    #: "extension" for studies beyond the paper's evaluation).
    figure: str
    description: str
    axes: Callable[[Mapping[str, Any]], Sequence[Axis]]
    cell: Callable[[Mapping[str, Any], Point], Optional[CellSpec]]
    assemble: Callable[[Mapping[str, Any], "Campaign"], Any]
    #: Default run parameters; overrides must name a known key.
    params: Mapping[str, Any] = field(default_factory=dict)
    #: Parameter overrides applied by ``--smoke`` (tiny CI grids).
    smoke_params: Mapping[str, Any] = field(default_factory=dict)

    def merged_params(
        self, smoke: bool = False, overrides: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        overrides = dict(overrides or {})
        unknown = sorted(set(overrides) - set(self.params))
        if unknown:
            raise ConfigError(
                f"unknown parameter(s) {', '.join(unknown)} for experiment "
                f"{self.name!r}; known: {', '.join(sorted(self.params))}"
            )
        merged = dict(self.params)
        if smoke:
            merged.update(self.smoke_params)
        merged.update(overrides)
        return merged


@dataclass
class Campaign:
    """One executed campaign: every axis point with its outcome.

    ``outcomes`` aligns with ``points`` (the axes' product order);
    analytic points carry ``None``.
    """

    spec: ExperimentSpec
    params: Dict[str, Any]
    axes: Tuple[Axis, ...]
    points: List[Point]
    outcomes: List[Optional[CellOutcome]]

    def cells(self) -> List[Tuple[Point, CellOutcome]]:
        """Simulated (point, outcome) pairs in product order."""
        return [
            (point, outcome)
            for point, outcome in zip(self.points, self.outcomes)
            if outcome is not None
        ]

    def holes(self) -> List[Tuple[Point, CellOutcome]]:
        """Simulated points whose final outcome is not ok — the cells
        a partial (graceful-degradation) assembly must render as
        explicit gaps rather than silently dropping."""
        return [
            (point, outcome)
            for point, outcome in zip(self.points, self.outcomes)
            if outcome is not None and not outcome.ok
        ]

    def outcome(self, **coords: Any) -> CellOutcome:
        """The outcome at the axis coordinates given (all must match)."""
        for point, outcome in zip(self.points, self.outcomes):
            if outcome is not None and all(
                point.get(k) == v for k, v in coords.items()
            ):
                return outcome
        raise KeyError(coords)

    def run_result(self, **coords: Any):
        return self.outcome(**coords).result

    def metrics(self):
        """Per-experiment obs roll-up: the merged
        :class:`~repro.obs.MetricsRegistry` of every cell that carried
        one, or ``None`` when the campaign ran without obs."""
        return aggregate_outcome_metrics([o for o in self.outcomes if o is not None])

    def manifest(self) -> Dict[str, Any]:
        """JSON-able record of exactly what this campaign ran: the
        resolved parameters, the axes, and every cell's canonical spec
        (the executor's content address) with its cache status."""
        cells: List[Dict[str, Any]] = []
        for point, outcome in zip(self.points, self.outcomes):
            record: Dict[str, Any] = {"coords": _json_safe(point)}
            if outcome is None:
                record["analytic"] = True
            else:
                record["spec"] = json.loads(spec_key(outcome.spec))
                record["cached"] = outcome.cached
                record["ok"] = outcome.ok
                if outcome.kind != "ok":
                    # Emitted only for degraded cells, so every fully-
                    # green manifest keeps its historical shape.
                    record["kind"] = outcome.kind
            cells.append(record)
        return {
            "experiment": self.spec.name,
            "figure": self.spec.figure,
            "params": _json_safe(self.params),
            "axes": [
                {"name": axis.name, "values": _json_safe(list(axis.values))}
                for axis in self.axes
            ],
            "cells": cells,
        }


def _json_safe(value: Any) -> Any:
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, float) and value != value:
        return None
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return repr(value)
