"""Shared presentation layer for experiment results.

An ordered list of :class:`TableData` is the common currency every
experiment result speaks: :class:`TabularResult` turns it into the
plain-text report (byte-identical to the historical per-module
formatting), an ASCII chart, JSON or CSV through one set of
formatters.  The normalization helpers that ``fig11``/``fig12`` used
to copy-paste live here too.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    ClassVar,
    Dict,
    List,
    Mapping,
    Sequence,
    Tuple,
)

from repro.common.errors import ConfigError
from repro.harness.report import format_bars, format_grouped_bars, format_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.runner import GridResult


# ----------------------------------------------------------------------
# The common currency: ordered tables
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TableData:
    """One titled table: the unit every formatter consumes."""

    title: str
    headers: Tuple[str, ...]
    rows: Tuple[Tuple[object, ...], ...]

    @classmethod
    def make(
        cls,
        headers: Sequence[str],
        rows: Sequence[Sequence[object]],
        title: str = "",
    ) -> "TableData":
        return cls(
            title=title,
            headers=tuple(str(h) for h in headers),
            rows=tuple(tuple(row) for row in rows),
        )


class TabularResult:
    """Mixin giving a result every output format from one ``tables()``.

    ``format_report`` reproduces the historical layout exactly: each
    table rendered by :func:`~repro.harness.report.format_table`,
    joined by blank lines.
    """

    def tables(self) -> List[TableData]:
        raise NotImplementedError

    def format_report(self) -> str:
        return "\n\n".join(
            format_table(t.headers, t.rows, title=t.title) for t in self.tables()
        )

    def format_chart(self) -> str:
        return "\n\n".join(table_chart(t) for t in self.tables())

    def to_json_payload(self) -> List[Dict[str, object]]:
        return tables_payload(self.tables())

    def to_csv(self) -> str:
        return tables_to_csv(self.tables())


def render(result, fmt: str = "report") -> str:
    """Render any experiment result in one of the four formats.

    ``result`` needs ``format_report`` (every result has one);
    chart/json/csv use the :class:`TabularResult` protocol when
    available and degrade to the report text otherwise.
    """
    if fmt == "report":
        return result.format_report()
    if fmt == "chart":
        if hasattr(result, "format_chart"):
            return result.format_chart()
        return result.format_report()
    if fmt == "json":
        import json

        return json.dumps(
            {"tables": tables_payload(result_tables(result))},
            indent=2,
            sort_keys=True,
        )
    if fmt == "csv":
        return tables_to_csv(result_tables(result))
    raise ConfigError(
        f"unknown render format {fmt!r}: expected report, chart, json or csv"
    )


def result_tables(result) -> List[TableData]:
    if isinstance(result, TabularResult) or hasattr(result, "tables"):
        return list(result.tables())
    raise ConfigError(
        f"{type(result).__name__} does not expose tables(); only the "
        "plain report format is available"
    )


# ----------------------------------------------------------------------
# JSON / CSV / chart renderers
# ----------------------------------------------------------------------
def json_cell(value: object) -> object:
    """One table cell as a JSON-compatible value (NaN becomes null)."""
    if isinstance(value, float) and value != value:
        return None
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def tables_payload(tables: Sequence[TableData]) -> List[Dict[str, object]]:
    return [
        {
            "title": t.title,
            "headers": list(t.headers),
            "rows": [[json_cell(v) for v in row] for row in t.rows],
        }
        for t in tables
    ]


def _csv_cell(value: object) -> object:
    # The undefined-ratio NaN renders as n/a in *every* formatter, the
    # CSV included — an empty or "nan" field reads as missing data.
    if isinstance(value, float) and value != value:
        return "n/a"
    return value

def tables_to_csv(tables: Sequence[TableData]) -> str:
    """CSV rendering: one ``# title`` comment line per table, then the
    header row and data rows; tables separated by a blank line."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    for index, table in enumerate(tables):
        if index:
            buffer.write("\n")
        if table.title:
            buffer.write(f"# {table.title}\n")
        writer.writerow(table.headers)
        for row in table.rows:
            writer.writerow([_csv_cell(v) for v in row])
    return buffer.getvalue()


def _numeric_columns(table: TableData) -> List[int]:
    picked = []
    for i in range(1, len(table.headers)):
        if any(
            isinstance(row[i], (int, float)) and not isinstance(row[i], bool)
            for row in table.rows
            if len(row) > i
        ):
            picked.append(i)
    return picked


def table_chart(table: TableData, width: int = 40) -> str:
    """Generic ASCII chart of one table: the first column labels the
    rows; one bar per numeric column (grouped when there are several)."""
    columns = _numeric_columns(table)
    if not columns:
        return format_table(table.headers, table.rows, title=table.title)
    if len(columns) == 1:
        values = {
            str(row[0]): row[columns[0]]
            for row in table.rows
            if isinstance(row[columns[0]], (int, float))
        }
        return format_bars(values, title=table.title, width=width)
    groups = {
        str(row[0]): {
            table.headers[i]: row[i]
            for i in columns
            if isinstance(row[i], (int, float)) and not isinstance(row[i], bool)
        }
        for row in table.rows
    }
    return format_grouped_bars(groups, title=table.title, width=width)


def format_phase_table(phases: Mapping[str, int]) -> List[List[object]]:
    """Rows of a per-phase cycle-attribution table, largest first."""
    total = sum(phases.values()) or 1
    rows: List[List[object]] = [
        [name, cycles, f"{100.0 * cycles / total:5.1f}%"]
        for name, cycles in sorted(phases.items(), key=lambda kv: -kv[1])
    ]
    rows.append(["total", sum(phases.values()), "100.0%"])
    return rows


# ----------------------------------------------------------------------
# Normalization helpers (the one copy)
# ----------------------------------------------------------------------
def normalize_to(
    grid: "GridResult", metric: str, baseline: str = "base"
) -> Dict[str, Dict[str, float]]:
    """``{workload: {scheme: metric / metric(baseline)}}``."""
    out: Dict[str, Dict[str, float]] = {}
    for workload, per_scheme in grid.results.items():
        base_value = float(getattr(per_scheme[baseline], metric))
        out[workload] = {
            scheme: (float(getattr(result, metric)) / base_value if base_value else 0.0)
            for scheme, result in per_scheme.items()
        }
    return out


def add_average(normalized: Dict[str, Dict[str, float]]) -> Dict[str, Dict[str, float]]:
    """Append the cross-workload arithmetic mean (the paper's
    "Average" group) to a normalized table."""
    if not normalized:
        raise ConfigError(
            "cannot average an empty normalized table: the experiment "
            "ran with no workloads"
        )
    schemes = next(iter(normalized.values())).keys()
    out = dict(normalized)
    out["average"] = {
        scheme: sum(row[scheme] for row in normalized.values()) / len(normalized)
        for scheme in schemes
    }
    return out


def normalize_series(series: Mapping, baseline=None) -> Dict:
    """Normalize a ``{key: value}`` series to one of its points (the
    first key by default) — the Fig. 14/15 "normalized to 1x" shape."""
    if not series:
        raise ConfigError("cannot normalize an empty series")
    keys = list(series)
    base = series[keys[0] if baseline is None else baseline]
    return {k: (v / base if base else 0.0) for k, v in series.items()}


def normalized_table(
    normalized: Mapping[str, Mapping[str, float]],
    schemes: Sequence[str],
    title: str,
) -> TableData:
    """The ``{workload: {scheme: value}}`` table in plotting order —
    the structured twin of :func:`repro.harness.report.format_normalized`."""
    rows = [
        [workload] + [per_scheme.get(scheme, float("nan")) for scheme in schemes]
        for workload, per_scheme in normalized.items()
    ]
    return TableData.make(["workload"] + list(schemes), rows, title=title)


@dataclass
class NormalizedGridsResult(TabularResult):
    """Grids of one metric normalized to Base, one table per core count.

    Subclasses pin the metric and the titles (``fig11``/``fig12`` used
    to carry copy-pasted bodies of everything below).
    """

    grids: Dict[int, "GridResult"]

    metric: ClassVar[str] = ""
    report_title: ClassVar[str] = ""
    chart_title: ClassVar[str] = ""

    def normalized(self, cores: int) -> Dict[str, Dict[str, float]]:
        return add_average(normalize_to(self.grids[cores], self.metric))

    def tables(self) -> List[TableData]:
        return [
            normalized_table(
                self.normalized(cores),
                schemes=list(self.grids[cores].schemes()),
                title=f"{self.report_title} ({cores} core(s))",
            )
            for cores in sorted(self.grids)
        ]

    def format_chart(self) -> str:
        """ASCII grouped bars of the cross-workload averages, one group
        per core count (the shape of the paper's figure)."""
        groups = {
            f"{cores} core(s)": self.normalized(cores)["average"]
            for cores in sorted(self.grids)
        }
        return format_grouped_bars(groups, title=self.chart_title)
