"""The experiment registry: every study of the evaluation, by name.

Specs register themselves when their module imports (each harness
module declares its spec and calls ``REGISTRY.register``);
:func:`load_all` imports the full catalog so CLI/CI consumers see all
of them without knowing the module list.
"""

from __future__ import annotations

import importlib
from typing import Dict, Iterator, List

from repro.common.errors import ConfigError
from repro.harness.experiments.spec import ExperimentSpec

#: The catalog modules, in the paper's presentation order — also the
#: order ``silo-repro exp list`` displays.
CATALOG_MODULES = (
    "fig4",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "table1",
    "table4",
    "mcsweep",
    "recovery_cost",
    "catalog",
)


class ExperimentRegistry:
    """Name -> :class:`ExperimentSpec` mapping with catalog ordering."""

    def __init__(self) -> None:
        self._specs: Dict[str, ExperimentSpec] = {}

    def register(self, spec: ExperimentSpec) -> ExperimentSpec:
        existing = self._specs.get(spec.name)
        if existing is not None and existing is not spec:
            raise ConfigError(
                f"experiment {spec.name!r} is already registered"
            )
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> ExperimentSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise ConfigError(
                f"unknown experiment {name!r}; registered: "
                f"{', '.join(self.names()) or '(none)'}"
            ) from None

    def names(self) -> List[str]:
        """Registered names, catalog order first, then extras."""
        ordered = [n for n in CATALOG_MODULES if n in self._specs]
        ordered += [n for n in self._specs if n not in CATALOG_MODULES]
        return ordered

    def specs(self) -> List[ExperimentSpec]:
        return [self._specs[name] for name in self.names()]

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())


#: The process-wide registry every catalog module registers into.
REGISTRY = ExperimentRegistry()


def load_all() -> ExperimentRegistry:
    """Import the whole catalog (idempotent) and return the registry."""
    for module in CATALOG_MODULES:
        importlib.import_module(f"repro.harness.{module}")
    return REGISTRY
