"""``repro.harness.experiments`` — declarative experiment registry.

Experiments are *data*: an :class:`ExperimentSpec` declares a study's
axes, cell lowering and result assembly; the generic engine runs any
spec through the shared executor; the presentation layer renders any
result as a report, chart, JSON or CSV.  ``REGISTRY`` holds every
study of the paper's evaluation (``load_all()`` imports the catalog);
``silo-repro exp list|run`` is the CLI face.
"""

from repro.harness.experiments.engine import (
    grids_from_campaign,
    lower,
    run_campaign,
    run_experiment,
)
from repro.harness.experiments.presentation import (
    NormalizedGridsResult,
    TableData,
    TabularResult,
    add_average,
    format_phase_table,
    normalize_series,
    normalize_to,
    normalized_table,
    render,
    tables_to_csv,
)
from repro.harness.experiments.registry import (
    CATALOG_MODULES,
    REGISTRY,
    ExperimentRegistry,
    load_all,
)
from repro.harness.experiments.spec import Axis, Campaign, ExperimentSpec

__all__ = [
    "Axis",
    "Campaign",
    "CATALOG_MODULES",
    "ExperimentRegistry",
    "ExperimentSpec",
    "NormalizedGridsResult",
    "REGISTRY",
    "TableData",
    "TabularResult",
    "add_average",
    "format_phase_table",
    "grids_from_campaign",
    "load_all",
    "lower",
    "normalize_series",
    "normalize_to",
    "normalized_table",
    "render",
    "run_campaign",
    "run_experiment",
    "tables_to_csv",
]
