"""The generic campaign engine.

One code path lowers any :class:`~repro.harness.experiments.spec
.ExperimentSpec` to executor cells, fans them through the shared
:class:`~repro.harness.executor.Executor` (content-addressed cache,
``--jobs`` parallelism, per-worker trace memo and failure isolation
all preserved) and assembles the study's result object.  The ten
registered studies differ only in their declarations — none carries
grid-construction or fan-out code of its own anymore.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.harness.executor import (
    CellOutcome,
    CellSpec,
    Executor,
    raise_on_failures,
)
from repro.harness.experiments.spec import Axis, Campaign, ExperimentSpec, Point
from repro.obs import ObsConfig


def lower(
    spec: ExperimentSpec, params: Dict[str, Any]
) -> Tuple[Tuple[Axis, ...], List[Point], List[Optional[CellSpec]]]:
    """Expand a spec into its axis points and their cells.

    The Cartesian product runs in axis order, so the cell order (and
    with it every assemble function's insertion order) is exactly the
    nested-loop order the hand-rolled harnesses used.
    """
    axes = tuple(spec.axes(params))
    names = [axis.name for axis in axes]
    if len(set(names)) != len(names):
        raise ConfigError(
            f"experiment {spec.name!r} declares duplicate axis names: {names}"
        )
    points = [
        dict(zip(names, combo))
        for combo in itertools.product(*(axis.values for axis in axes))
    ]
    cells = [spec.cell(params, point) for point in points]
    return axes, points, cells


def run_campaign(
    spec: ExperimentSpec,
    executor: Optional[Executor] = None,
    smoke: bool = False,
    obs: Optional[ObsConfig] = None,
    engine: str = "exact",
    **overrides: Any,
) -> Tuple[Any, Campaign]:
    """Run one experiment end to end; returns (result, campaign).

    ``obs`` attaches an observability config to every simulated cell
    (per-experiment metric roll-ups via :meth:`Campaign.metrics`);
    it joins the cells' content addresses, so profiled campaigns never
    share cache slots with plain ones.

    ``engine`` selects the execution engine for every simulated cell
    (``exact`` or the bit-identical batched ``columnar``); like
    ``obs`` it joins the content address, so the equivalence gate can
    run the same catalog under both engines without cache collisions.
    """
    params = spec.merged_params(smoke=smoke, overrides=overrides)
    axes, points, cells = lower(spec, params)
    simulated = [index for index, cell in enumerate(cells) if cell is not None]
    to_run = [cells[index] for index in simulated]
    if obs is not None:
        to_run = [replace(cell, obs=obs) for cell in to_run]
    if engine != "exact":
        to_run = [replace(cell, engine=engine) for cell in to_run]
    run_outcomes = (executor if executor is not None else Executor(jobs=1)).run(to_run)
    raise_on_failures(run_outcomes)
    outcomes: List[Optional[CellOutcome]] = [None] * len(points)
    for index, outcome in zip(simulated, run_outcomes):
        outcomes[index] = outcome
    campaign = Campaign(
        spec=spec, params=params, axes=axes, points=points, outcomes=outcomes
    )
    return spec.assemble(params, campaign), campaign


def run_experiment(
    spec: ExperimentSpec,
    executor: Optional[Executor] = None,
    smoke: bool = False,
    **overrides: Any,
) -> Any:
    """Run one experiment and return only its result object (the
    historical ``<module>.run()`` contract)."""
    return run_campaign(spec, executor=executor, smoke=smoke, **overrides)[0]


def grids_from_campaign(campaign: Campaign) -> Dict[int, "Any"]:
    """Reassemble ``{cores: GridResult}`` from a (cores, workload,
    scheme) campaign — the fig11/fig12 shape."""
    from repro.harness.runner import GridResult

    grids: Dict[int, GridResult] = {}
    for point, outcome in campaign.cells():
        grid = grids.setdefault(point["cores"], GridResult(cores=point["cores"]))
        grid.results.setdefault(point["workload"], {})[point["scheme"]] = (
            outcome.result
        )
    return grids
