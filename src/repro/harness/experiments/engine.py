"""The generic campaign engine.

One code path lowers any :class:`~repro.harness.experiments.spec
.ExperimentSpec` to executor cells, fans them through the shared
:class:`~repro.harness.executor.Executor` (content-addressed cache,
``--jobs`` parallelism, per-worker trace memo and failure isolation
all preserved) and assembles the study's result object.  The ten
registered studies differ only in their declarations — none carries
grid-construction or fan-out code of its own anymore.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.harness.executor import (
    CellOutcome,
    CellSpec,
    Executor,
    raise_on_failures,
    repro_command,
)
from repro.harness.experiments.spec import Axis, Campaign, ExperimentSpec, Point
from repro.obs import ObsConfig


@dataclass
class PartialCampaignResult:
    """A gracefully-degraded campaign: the assembled study result (when
    assembly survived the gaps) plus an explicit hole ledger.

    Produced by :func:`run_campaign` in ``partial`` mode instead of
    raising on the first failed cell: every hole is rendered with its
    coordinates, its outcome ``kind``, the tail of its error and — for
    default-config cells — a copy-pasteable ``replay --spec`` one-liner,
    so an overnight campaign with three dead cells still yields its
    other hundreds.  ``passed`` is always ``False``: a partial result
    must never be mistaken for a clean one (the CLI maps it to its own
    exit code).
    """

    experiment: str
    figure: str
    result: Any
    holes: List[Tuple[Point, CellOutcome]] = field(default_factory=list)
    total: int = 0

    @property
    def passed(self) -> bool:
        return False

    def format_report(self) -> str:
        lines = [
            f"PARTIAL RESULT: {self.experiment} ({self.figure}) — "
            f"{len(self.holes)} of {self.total} cells missing",
            "",
        ]
        for point, outcome in self.holes:
            coords = ", ".join(f"{k}={v}" for k, v in point.items())
            lines.append(f"  missing [{outcome.kind}] {coords}")
            if outcome.error:
                lines.append(f"    {outcome.error.strip().splitlines()[-1]}")
            try:
                lines.append(f"    replay: {repro_command(outcome.spec)}")
            except ConfigError:
                # Non-default-config cells have no one-line replay;
                # the manifest still pins their full spec.
                pass
        lines.append("")
        if self.result is not None and hasattr(self.result, "format_report"):
            lines.append(
                "Assembled from the surviving cells (holes excluded):"
            )
            lines.append("")
            lines.append(self.result.format_report())
        else:
            lines.append(
                "The study's assembly could not run with these cells "
                "missing; re-run the replay commands above (or the "
                "campaign with --resume) to fill the holes."
            )
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, Any]:
        holes = []
        for point, outcome in self.holes:
            record: Dict[str, Any] = {
                "coords": {str(k): v for k, v in point.items()},
                "kind": outcome.kind,
                "attempts": outcome.attempts,
            }
            if outcome.error:
                record["error"] = outcome.error.strip().splitlines()[-1]
            holes.append(record)
        return {
            "experiment": self.experiment,
            "figure": self.figure,
            "partial": True,
            "passed": False,
            "total": self.total,
            "holes": holes,
        }


def lower(
    spec: ExperimentSpec, params: Dict[str, Any]
) -> Tuple[Tuple[Axis, ...], List[Point], List[Optional[CellSpec]]]:
    """Expand a spec into its axis points and their cells.

    The Cartesian product runs in axis order, so the cell order (and
    with it every assemble function's insertion order) is exactly the
    nested-loop order the hand-rolled harnesses used.
    """
    axes = tuple(spec.axes(params))
    names = [axis.name for axis in axes]
    if len(set(names)) != len(names):
        raise ConfigError(
            f"experiment {spec.name!r} declares duplicate axis names: {names}"
        )
    points = [
        dict(zip(names, combo))
        for combo in itertools.product(*(axis.values for axis in axes))
    ]
    cells = [spec.cell(params, point) for point in points]
    return axes, points, cells


def run_campaign(
    spec: ExperimentSpec,
    executor: Optional[Executor] = None,
    smoke: bool = False,
    obs: Optional[ObsConfig] = None,
    engine: str = "exact",
    partial: bool = False,
    **overrides: Any,
) -> Tuple[Any, Campaign]:
    """Run one experiment end to end; returns (result, campaign).

    ``obs`` attaches an observability config to every simulated cell
    (per-experiment metric roll-ups via :meth:`Campaign.metrics`);
    it joins the cells' content addresses, so profiled campaigns never
    share cache slots with plain ones.

    ``engine`` selects the execution engine for every simulated cell
    (``exact`` or the bit-identical batched ``columnar``); like
    ``obs`` it joins the content address, so the equivalence gate can
    run the same catalog under both engines without cache collisions.

    ``partial`` degrades gracefully instead of raising when cells
    fail: the result slot of the returned pair carries a
    :class:`PartialCampaignResult` that renders the failed/timed-out
    cells as explicit holes (with replay one-liners) around whatever
    the study could still assemble.
    """
    params = spec.merged_params(smoke=smoke, overrides=overrides)
    axes, points, cells = lower(spec, params)
    simulated = [index for index, cell in enumerate(cells) if cell is not None]
    to_run = [cells[index] for index in simulated]
    if obs is not None:
        to_run = [replace(cell, obs=obs) for cell in to_run]
    if engine != "exact":
        to_run = [replace(cell, engine=engine) for cell in to_run]
    run_outcomes = (executor if executor is not None else Executor(jobs=1)).run(to_run)
    if not partial:
        raise_on_failures(run_outcomes)
    outcomes: List[Optional[CellOutcome]] = [None] * len(points)
    for index, outcome in zip(simulated, run_outcomes):
        outcomes[index] = outcome
    campaign = Campaign(
        spec=spec, params=params, axes=axes, points=points, outcomes=outcomes
    )
    holes = campaign.holes()
    if partial and holes:
        try:
            result = spec.assemble(params, campaign)
        except Exception:
            # Most assemble functions index every grid point; holes
            # legitimately break them.  The partial wrapper reports
            # the holes either way.
            result = None
        return (
            PartialCampaignResult(
                experiment=spec.name,
                figure=spec.figure,
                result=result,
                holes=holes,
                total=len(simulated),
            ),
            campaign,
        )
    return spec.assemble(params, campaign), campaign


def run_experiment(
    spec: ExperimentSpec,
    executor: Optional[Executor] = None,
    smoke: bool = False,
    **overrides: Any,
) -> Any:
    """Run one experiment and return only its result object (the
    historical ``<module>.run()`` contract)."""
    return run_campaign(spec, executor=executor, smoke=smoke, **overrides)[0]


def grids_from_campaign(campaign: Campaign) -> Dict[int, "Any"]:
    """Reassemble ``{cores: GridResult}`` from a (cores, workload,
    scheme) campaign — the fig11/fig12 shape."""
    from repro.harness.runner import GridResult

    grids: Dict[int, GridResult] = {}
    for point, outcome in campaign.cells():
        grid = grids.setdefault(point["cores"], GridResult(cores=point["cores"]))
        grid.results.setdefault(point["workload"], {})[point["scheme"]] = (
            outcome.result
        )
    return grids
