"""Content-addressed on-disk cache for experiment cell results.

Every simulation cell in this repo is a pure function of its fully
specified inputs (workload spec, scheme, core count, configuration,
crash plan) *and* of the simulator source itself.  The cache therefore
keys each stored outcome by

* a canonical JSON encoding of the cell spec (computed by the caller,
  see :func:`repro.harness.executor.spec_key`), and
* a **source fingerprint**: one SHA-256 over the contents of every
  ``.py`` file of the installed ``repro`` package.

Any edit to the simulator — a timing constant, a scheme, the engine —
changes the fingerprint and silently invalidates every entry, so a
cache hit is always safe to trust bit-for-bit.  Entries live under a
plain directory (default ``.repro-cache/`` in the working directory)
as pickled payloads fanned out over 256 prefix shards; ``silo-repro
cache stats`` / ``silo-repro cache clear`` manage it from the CLI.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import tempfile
from pathlib import Path
from typing import Dict, Optional

#: Default cache directory, overridable via ``$SILO_CACHE_DIR``.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Bump to orphan every existing entry after an incompatible layout change.
_FORMAT_VERSION = 1

#: Sentinel distinguishing "miss" from a legitimately-``None`` value.
MISS = object()

_FINGERPRINT_MEMO: Dict[str, str] = {}

#: Store labels that already printed a quarantine warning this process.
_QUARANTINE_WARNED: set = set()


def quarantine(path: Path, label: str) -> None:
    """Move a corrupt object file aside as ``<name>.corrupt``.

    The bad bytes are preserved for post-mortems instead of being
    overwritten by the rebuild, and the rename takes the entry off the
    store's read path so it is reported exactly once.  One warning per
    store label per process — a campaign re-reading a damaged cache
    must not flood stderr.
    """
    target = Path(str(path) + ".corrupt")
    try:
        os.replace(path, target)
    except OSError:
        try:
            path.unlink()
        except OSError:
            pass
    if label not in _QUARANTINE_WARNED:
        _QUARANTINE_WARNED.add(label)
        print(
            f"[{label}] quarantined corrupt entry {path.name} -> "
            f"{target.name}; treating as a miss and rebuilding "
            "(further quarantines this run are silent)",
            file=sys.stderr,
            flush=True,
        )


def load_pickle_hardened(path: Path, label: str):
    """Load one pickled object file, surviving any corruption.

    A missing file is a plain miss.  Anything else that goes wrong —
    truncated pickle, garbage bytes, an unpicklable class after a
    refactor, even a ``MemoryError`` from a hostile length prefix —
    quarantines the file (see :func:`quarantine`) and reads as a miss,
    so a damaged store entry can never crash a campaign.  Returns the
    value or :data:`MISS`.
    """
    try:
        with open(path, "rb") as fh:
            return pickle.load(fh)
    except FileNotFoundError:
        return MISS
    except Exception:
        quarantine(path, label)
        return MISS


def source_fingerprint(package_root: Optional[str] = None) -> str:
    """SHA-256 over the source of the ``repro`` package.

    Hashes file *contents* (not mtimes), so rebuilding an identical
    tree keeps the fingerprint and any semantic edit changes it.  The
    result is memoized per process — the tree is ~160 small files.
    """
    if package_root is None:
        import repro

        package_root = str(Path(repro.__file__).parent)
    root = str(Path(package_root))
    memo = _FINGERPRINT_MEMO.get(root)
    if memo is not None:
        return memo
    digest = hashlib.sha256()
    base = Path(root)
    for path in sorted(base.rglob("*.py"), key=lambda p: str(p.relative_to(base))):
        digest.update(str(path.relative_to(base)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    value = digest.hexdigest()
    _FINGERPRINT_MEMO[root] = value
    return value


def default_cache_dir() -> str:
    return os.environ.get("SILO_CACHE_DIR", DEFAULT_CACHE_DIR)


class ResultCache:
    """Pickle-backed object store addressed by (key, fingerprint).

    ``get``/``put`` take an opaque canonical key string; the digest
    folds in the source fingerprint and the on-disk format version, so
    callers never need to reason about invalidation.  A corrupt or
    truncated entry (e.g. a killed writer) reads as a miss, never as
    an error.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> None:
        self.root = Path(root if root is not None else default_cache_dir())
        self.fingerprint = (
            fingerprint if fingerprint is not None else source_fingerprint()
        )
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def digest(self, key: str) -> str:
        h = hashlib.sha256()
        h.update(f"v{_FORMAT_VERSION}\0".encode())
        h.update(self.fingerprint.encode())
        h.update(b"\0")
        h.update(key.encode())
        return h.hexdigest()

    def _path(self, digest: str) -> Path:
        return self.root / "objects" / digest[:2] / f"{digest}.pkl"

    # ------------------------------------------------------------------
    # Store / load
    # ------------------------------------------------------------------
    def get(self, key: str):
        """Return the stored value for ``key`` or :data:`MISS`.

        A truncated or corrupt entry is quarantined (renamed to
        ``*.corrupt``) and reads as a miss — the cell simply recomputes
        and rewrites the slot."""
        path = self._path(self.digest(key))
        value = load_pickle_hardened(path, label="result cache")
        if value is MISS:
            self.misses += 1
            return MISS
        self.hits += 1
        return value

    def put(self, key: str, value) -> None:
        """Store ``value`` under ``key`` (atomic rename, last wins)."""
        path = self._path(self.digest(key))
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Management
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Entry count and footprint of the directory, plus this
        process's hit/miss counters."""
        entries = 0
        total_bytes = 0
        quarantined = 0
        objects = self.root / "objects"
        if objects.is_dir():
            for path in objects.rglob("*.pkl"):
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    continue
                entries += 1
            quarantined = sum(1 for _ in objects.rglob("*.corrupt"))
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
            "quarantined": quarantined,
            "hits": self.hits,
            "misses": self.misses,
            "fingerprint": self.fingerprint[:16],
        }

    def clear(self) -> int:
        """Delete every entry (quarantined ones included); returns how
        many live entries were removed."""
        removed = 0
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        for path in objects.rglob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        for path in objects.rglob("*.corrupt"):
            try:
                path.unlink()
            except OSError:
                continue
        for shard in sorted(objects.glob("*"), reverse=True):
            try:
                shard.rmdir()
            except OSError:
                continue
        return removed

    def format_stats(self) -> str:
        s = self.stats()
        quarantined = (
            f", {s['quarantined']} quarantined" if s["quarantined"] else ""
        )
        return (
            f"cache {s['root']}: {s['entries']} entries, "
            f"{s['bytes'] / 1024:.1f} KiB{quarantined}, "
            f"fingerprint {s['fingerprint']} "
            f"(this process: {s['hits']} hits / {s['misses']} misses)"
        )
