"""Shared experiment plumbing: run (scheme x workload x cores) grids.

All grid runners fan their cells out through
:class:`repro.harness.executor.Executor`; pass ``executor=`` to run in
parallel and/or against the on-disk result cache.  The default is the
serial in-process path with no caching, which is bit-identical to the
historical behaviour (one trace built per workload, replayed under
every scheme).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.designs.scheme import SchemeRegistry
from repro.harness.executor import (
    CellSpec,
    Executor,
    WorkloadSpec,
    raise_on_failures,
)
# The canonical normalization helpers live in the shared presentation
# layer; this import keeps the historical public path working
# (``from repro.harness.runner import normalize_to, add_average``).
from repro.harness.experiments.presentation import add_average, normalize_to  # noqa: F401
from repro.sim.engine import TransactionEngine
from repro.sim.results import RunResult
from repro.sim.system import System
from repro.trace.trace import Trace

#: The evaluated designs, in the paper's plotting order.
DEFAULT_SCHEMES: Tuple[str, ...] = ("base", "fwb", "morlog", "lad", "silo")

#: The Fig. 11/12 benchmarks, in the paper's plotting order.
DEFAULT_WORKLOADS: Tuple[str, ...] = (
    "array",
    "btree",
    "hash",
    "queue",
    "rbtree",
    "tpcc",
    "ycsb",
)

#: Default transactions per thread: large enough for stable ratios,
#: small enough that the full grid runs in minutes of Python.
DEFAULT_TRANSACTIONS = 200


@dataclass
class GridResult:
    """Results of a (workload, scheme) grid at one core count."""

    cores: int
    #: ``results[workload][scheme]``
    results: Dict[str, Dict[str, RunResult]] = field(default_factory=dict)

    def metric(self, workload: str, scheme: str, name: str) -> float:
        result = self.results[workload][scheme]
        return float(getattr(result, name))

    def workloads(self) -> List[str]:
        return list(self.results)

    def schemes(self) -> List[str]:
        first = next(iter(self.results.values()))
        return list(first)


def run_single(
    trace: Trace, scheme: str, cores: int, config: Optional[SystemConfig] = None
) -> RunResult:
    """Run one trace under one scheme on a fresh system."""
    system = System(config if config is not None else SystemConfig.table2(cores))
    scheme_obj = SchemeRegistry.create(scheme, system)
    return TransactionEngine(system, scheme_obj, trace).run()


def run_grid(
    cores: int,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    transactions: int = DEFAULT_TRANSACTIONS,
    config: Optional[SystemConfig] = None,
    executor: Optional[Executor] = None,
    **workload_kwargs,
) -> GridResult:
    """Run every (workload, scheme) pair at one core count.

    One trace is built per (workload, cores, transactions) and
    replayed read-only under each scheme so all designs see identical
    operation streams (the executor's per-process trace memo).
    """
    return run_grids(
        (cores,), schemes, workloads, transactions, config, executor, **workload_kwargs
    )[cores]


def run_grids(
    core_counts: Sequence[int],
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    transactions: int = DEFAULT_TRANSACTIONS,
    config: Optional[SystemConfig] = None,
    executor: Optional[Executor] = None,
    **workload_kwargs,
) -> Dict[int, GridResult]:
    """Run the full (cores x workload x scheme) campaign in one fan-out.

    Submitting every core count's grid as a single cell list keeps all
    workers busy across the whole campaign instead of barriering at
    each core count (fig11/fig12 run 4 x 35 cells this way).
    """
    cells: List[CellSpec] = []
    for cores in core_counts:
        for workload in workloads:
            spec = WorkloadSpec.make(
                workload, threads=cores, transactions=transactions, **workload_kwargs
            )
            for scheme in schemes:
                cells.append(
                    CellSpec(workload=spec, scheme=scheme, cores=cores, config=config)
                )
    outcomes = (executor if executor is not None else Executor(jobs=1)).run(cells)
    raise_on_failures(outcomes)

    grids: Dict[int, GridResult] = {}
    at = iter(outcomes)
    for cores in core_counts:
        grid = GridResult(cores=cores)
        for workload in workloads:
            grid.results[workload] = {scheme: next(at).result for scheme in schemes}
        grids[cores] = grid
    return grids
