"""Shared experiment plumbing: run (scheme x workload x cores) grids."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.designs.scheme import SchemeRegistry
from repro.sim.engine import TransactionEngine
from repro.sim.results import RunResult
from repro.sim.system import System
from repro.trace.trace import Trace
from repro.workloads.registry import build_workload

#: The evaluated designs, in the paper's plotting order.
DEFAULT_SCHEMES: Tuple[str, ...] = ("base", "fwb", "morlog", "lad", "silo")

#: The Fig. 11/12 benchmarks, in the paper's plotting order.
DEFAULT_WORKLOADS: Tuple[str, ...] = (
    "array",
    "btree",
    "hash",
    "queue",
    "rbtree",
    "tpcc",
    "ycsb",
)

#: Default transactions per thread: large enough for stable ratios,
#: small enough that the full grid runs in minutes of Python.
DEFAULT_TRANSACTIONS = 200


@dataclass
class GridResult:
    """Results of a (workload, scheme) grid at one core count."""

    cores: int
    #: ``results[workload][scheme]``
    results: Dict[str, Dict[str, RunResult]] = field(default_factory=dict)

    def metric(self, workload: str, scheme: str, name: str) -> float:
        result = self.results[workload][scheme]
        return float(getattr(result, name))

    def workloads(self) -> List[str]:
        return list(self.results)

    def schemes(self) -> List[str]:
        first = next(iter(self.results.values()))
        return list(first)


def run_single(
    trace: Trace, scheme: str, cores: int, config: Optional[SystemConfig] = None
) -> RunResult:
    """Run one trace under one scheme on a fresh system."""
    system = System(config if config is not None else SystemConfig.table2(cores))
    scheme_obj = SchemeRegistry.create(scheme, system)
    return TransactionEngine(system, scheme_obj, trace).run()


def run_grid(
    cores: int,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    transactions: int = DEFAULT_TRANSACTIONS,
    config: Optional[SystemConfig] = None,
    **workload_kwargs,
) -> GridResult:
    """Run every (workload, scheme) pair at one core count.

    One trace is built per workload and replayed under each scheme so
    all designs see identical operation streams.
    """
    grid = GridResult(cores=cores)
    for workload in workloads:
        trace = build_workload(
            workload, threads=cores, transactions=transactions, **workload_kwargs
        )
        per_scheme: Dict[str, RunResult] = {}
        for scheme in schemes:
            per_scheme[scheme] = run_single(trace, scheme, cores, config)
        grid.results[workload] = per_scheme
    return grid


def normalize_to(
    grid: GridResult, metric: str, baseline: str = "base"
) -> Dict[str, Dict[str, float]]:
    """``{workload: {scheme: metric / metric(baseline)}}``."""
    out: Dict[str, Dict[str, float]] = {}
    for workload, per_scheme in grid.results.items():
        base_value = float(getattr(per_scheme[baseline], metric))
        out[workload] = {
            scheme: (float(getattr(result, metric)) / base_value if base_value else 0.0)
            for scheme, result in per_scheme.items()
        }
    return out


def add_average(normalized: Dict[str, Dict[str, float]]) -> Dict[str, Dict[str, float]]:
    """Append the cross-workload arithmetic mean (the paper's
    "Average" group) to a normalized table."""
    if not normalized:
        return normalized
    schemes = next(iter(normalized.values())).keys()
    out = dict(normalized)
    out["average"] = {
        scheme: sum(row[scheme] for row in normalized.values()) / len(normalized)
        for scheme in schemes
    }
    return out
