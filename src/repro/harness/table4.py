"""Table IV: battery requirements of eADR, BBB and Silo (8 cores).

Analytic (Section VI-E): flush size -> flush energy at 11.228 nJ/B ->
supercapacitor and lithium thin-film volume/area from their energy
densities.  Expected shape: Silo's battery orders of magnitude below
eADR and well below BBB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.battery import BatteryRequirement, table4
from repro.harness.experiments import (
    REGISTRY,
    ExperimentSpec,
    TableData,
    TabularResult,
    run_experiment,
)


@dataclass
class Table4Result(TabularResult):
    rows: Dict[str, BatteryRequirement]

    def tables(self) -> List[TableData]:
        table: List[List[object]] = []
        for name, req in self.rows.items():
            table.append(
                [
                    name,
                    req.flush_size_kb,
                    req.flush_energy_uj,
                    req.cap_volume_mm3,
                    req.cap_area_mm2,
                    req.li_volume_mm3,
                    req.li_area_mm2,
                ]
            )
        return [
            TableData.make(
                [
                    "system",
                    "flush size (KB)",
                    "flush energy (uJ)",
                    "Cap (mm^3)",
                    "Cap (mm^2)",
                    "Li (mm^3)",
                    "Li (mm^2)",
                ],
                table,
                title="Table IV — battery requirements (8 cores)",
            )
        ]


SPEC = REGISTRY.register(
    ExperimentSpec(
        name="table4",
        figure="Table IV",
        description="Battery requirements of eADR/BBB/Silo (analytic)",
        params=dict(cores=8),
        axes=lambda p: (),
        cell=lambda p, pt: None,
        assemble=lambda p, c: Table4Result(rows=table4(cores=p["cores"])),
    )
)


def run(cores: int = 8) -> Table4Result:
    return run_experiment(SPEC, cores=cores)
