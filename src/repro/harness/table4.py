"""Table IV: battery requirements of eADR, BBB and Silo (8 cores).

Analytic (Section VI-E): flush size -> flush energy at 11.228 nJ/B ->
supercapacitor and lithium thin-film volume/area from their energy
densities.  Expected shape: Silo's battery orders of magnitude below
eADR and well below BBB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.battery import BatteryRequirement, table4
from repro.harness.report import format_table


@dataclass
class Table4Result:
    rows: Dict[str, BatteryRequirement]

    def format_report(self) -> str:
        table: List[List[object]] = []
        for name, req in self.rows.items():
            table.append(
                [
                    name,
                    req.flush_size_kb,
                    req.flush_energy_uj,
                    req.cap_volume_mm3,
                    req.cap_area_mm2,
                    req.li_volume_mm3,
                    req.li_area_mm2,
                ]
            )
        return format_table(
            [
                "system",
                "flush size (KB)",
                "flush energy (uJ)",
                "Cap (mm^3)",
                "Cap (mm^2)",
                "Li (mm^3)",
                "Li (mm^2)",
            ],
            table,
            title="Table IV — battery requirements (8 cores)",
        )


def run(cores: int = 8) -> Table4Result:
    return Table4Result(rows=table4(cores=cores))
