"""Chaos self-test harness: inject faults into the execution layer and
prove the final results don't care.

The resilience machinery in :mod:`repro.harness.executor` (outcome
kinds, the wall-clock watchdog, bounded retries, hardened store loads)
only earns trust if it is *exercised* — a retry path that never runs
is a retry path that silently rots.  This module turns the harness on
itself:

* a :class:`ChaosPlan` rides into every worker process (via the pool
  initializer) and, **on first attempts only**, kills the worker
  (``os._exit``), hangs it, or raises a transient :class:`ChaosError`
  for deterministically chosen target cells — so every injected fault
  must converge under retry, exactly like a real one;
* :func:`run` executes one small smoke campaign fault-free to capture
  baseline result digests, then re-runs it under four chaos phases —
  worker **kills**, worker **hangs** (caught by the watchdog),
  transient **raises**, and **corrupted store entries** (truncated
  result-cache and trace-artifact pickles) — asserting after each that
  every cell completed ``ok``, the retry/timeout/quarantine counters
  actually moved (the fault *happened*), and the results are
  **bit-identical** to the fault-free baseline;
* ``silo-repro chaos --smoke`` runs it from the CLI and CI, writing a
  ``CHAOS.json`` report; a nonzero exit means the resilience layer let
  an injected fault leak into results (or failed to recover at all).

Chaos is test-only plumbing: a production executor never installs a
plan, and the worker-side hook costs one ``is None`` check per cell.
"""

from __future__ import annotations

import hashlib
import os
import random
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.executor import (
    CellOutcome,
    CellSpec,
    Executor,
    WorkloadSpec,
    spec_key,
)
from repro.harness.resultcache import ResultCache
from repro.harness.traceartifacts import TraceArtifactStore


class ChaosError(Exception):
    """The transient, injected failure (never raised by real cells)."""


def cell_digest(key: str) -> str:
    """Stable digest of a canonical cell key, for chaos targeting."""
    return hashlib.sha256(key.encode()).hexdigest()


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic fault-injection plan for the execution layer.

    ``targets`` pins faults to specific cells: ``(digest_prefix,
    action)`` pairs matched against :func:`cell_digest` of the cell's
    canonical key, with ``action`` one of ``"kill"`` / ``"hang"`` /
    ``"raise"``.  The ``*_prob`` fields add seeded per-cell randomness
    on top (``random.Random`` keyed by seed + digest — identical plans
    fault identical cells, whatever the dispatch order).

    Faults fire on **first attempts only** (``attempt == 0``), so a
    chaos campaign with ``retries >= 1`` must converge to the fault-
    free results; ``interrupt_after=N`` is a parent-side action — the
    executor raises :class:`KeyboardInterrupt` after N live
    completions, simulating a SIGINT landing mid-campaign.

    The plan is pickled into worker initargs; keep it tiny and frozen.
    """

    seed: int = 0
    kill_prob: float = 0.0
    hang_prob: float = 0.0
    raise_prob: float = 0.0
    hang_seconds: float = 3600.0
    targets: Tuple[Tuple[str, str], ...] = ()
    interrupt_after: Optional[int] = None

    def action(self, key: str, attempt: int) -> Optional[str]:
        """The fault to inject for this cell dispatch, or ``None``."""
        if attempt > 0:
            return None
        digest = cell_digest(key)
        for prefix, action in self.targets:
            if digest.startswith(prefix):
                return action
        rng = random.Random(f"chaos|{self.seed}|{digest}")
        roll = rng.random()
        if roll < self.kill_prob:
            return "kill"
        if roll < self.kill_prob + self.hang_prob:
            return "hang"
        if roll < self.kill_prob + self.hang_prob + self.raise_prob:
            return "raise"
        return None

    def preflight(self, key: str, attempt: int) -> None:
        """Worker-side hook, called by ``_worker_batch`` before each
        cell.  May never return (kill/hang)."""
        action = self.action(key, attempt)
        if action is None:
            return
        if action == "kill":
            # Simulates an OOM kill / segfault: the process vanishes
            # without unwinding, breaking the pool.
            os._exit(17)
        if action == "hang":
            # Simulates a deadlocked worker; only the watchdog can
            # recover it.
            time.sleep(self.hang_seconds)
            return
        raise ChaosError(
            f"injected transient failure (seed={self.seed}, "
            f"cell {cell_digest(key)[:12]})"
        )


# ----------------------------------------------------------------------
# The self-test campaign
# ----------------------------------------------------------------------
@dataclass
class ChaosPhase:
    """Outcome of one injection phase of the self-test."""

    name: str
    description: str
    passed: bool
    notes: List[str] = field(default_factory=list)

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "passed": self.passed,
            "notes": list(self.notes),
        }


@dataclass
class ChaosResult:
    """Aggregate verdict of a chaos self-test run."""

    phases: List[ChaosPhase] = field(default_factory=list)
    cells: int = 0

    @property
    def passed(self) -> bool:
        return bool(self.phases) and all(p.passed for p in self.phases)

    def to_json_dict(self) -> dict:
        return {
            "experiment": "chaos",
            "cells": self.cells,
            "passed": self.passed,
            "phases": [p.to_json_dict() for p in self.phases],
        }

    def format_report(self) -> str:
        lines = [
            "Chaos self-test: injected executor faults vs. final results",
            f"  campaign: {self.cells} cells per phase",
            "",
        ]
        for phase in self.phases:
            verdict = "PASS" if phase.passed else "FAIL"
            lines.append(f"  [{verdict}] {phase.name}: {phase.description}")
            for note in phase.notes:
                lines.append(f"         - {note}")
        lines.append("")
        lines.append(
            "OVERALL: PASS — every injected fault was absorbed; results "
            "bit-identical to the fault-free run"
            if self.passed
            else "OVERALL: FAIL — an injected fault leaked into results "
            "or recovery failed"
        )
        return "\n".join(lines)


def _smoke_cells() -> List[CellSpec]:
    """A tiny, fast, deterministic campaign: two workloads x two
    schemes, verified, small enough that five phases stay in seconds."""
    cells: List[CellSpec] = []
    for workload in ("hash", "queue"):
        for scheme in ("base", "silo"):
            cells.append(
                CellSpec(
                    workload=WorkloadSpec.make(
                        workload, threads=2, transactions=6, seed=7
                    ),
                    scheme=scheme,
                    cores=2,
                    verify=True,
                )
            )
    return cells


def _canonical(obj):
    """Order-independent canonical form of a result payload.

    Raw ``pickle.dumps`` is *not* stable across process boundaries:
    a ``set``'s iteration (hence pickle) order depends on its insertion
    history, and every IPC or cache round-trip rebuilds the set in the
    previous hop's iteration order.  Two semantically identical results
    can therefore differ byte-wise purely by how many pickles they have
    been through.  Canonicalizing sorts every unordered container (and
    explodes dataclasses/objects field-wise), so the digest captures
    exactly the *values* — which is the bit-identity the determinism
    contract actually promises.
    """
    import dataclasses

    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (
            type(obj).__name__,
            tuple(
                (f.name, _canonical(getattr(obj, f.name)))
                for f in dataclasses.fields(obj)
            ),
        )
    if isinstance(obj, dict):
        return (
            "dict",
            tuple(
                sorted(
                    ((_canonical(k), _canonical(v)) for k, v in obj.items()),
                    key=repr,
                )
            ),
        )
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted((_canonical(x) for x in obj), key=repr)))
    if isinstance(obj, (list, tuple)):
        return ("seq", tuple(_canonical(x) for x in obj))
    if hasattr(obj, "__dict__") and not isinstance(
        obj, (str, bytes, int, float, bool, type(None))
    ):
        return (type(obj).__name__, _canonical(vars(obj)))
    return obj


def _result_digests(outcomes: Sequence[CellOutcome]) -> List[str]:
    """Canonical digest of each cell's payload (result + oracle
    verdicts), the quantity chaos must not perturb."""
    digests = []
    for outcome in outcomes:
        blob = repr(
            _canonical(
                (outcome.result, outcome.mismatches, outcome.fault_verdict)
            )
        ).encode()
        digests.append(hashlib.sha256(blob).hexdigest())
    return digests


def _check_phase(
    phase: ChaosPhase,
    outcomes: Sequence[CellOutcome],
    baseline: Sequence[str],
    executor: Executor,
    expect: Dict[str, int],
) -> None:
    """Shared assertions: all cells ok, bit-identical to baseline, and
    the expected fault counters actually moved."""
    not_ok = [o for o in outcomes if not o.ok]
    if not_ok:
        phase.passed = False
        kinds = ", ".join(f"{o.spec.scheme}:{o.kind}" for o in not_ok)
        phase.notes.append(f"{len(not_ok)} cells did not recover ({kinds})")
    digests = _result_digests(outcomes)
    if list(digests) != list(baseline):
        phase.passed = False
        diverged = sum(1 for a, b in zip(digests, baseline) if a != b)
        phase.notes.append(
            f"{diverged} cells diverged bit-wise from the fault-free run"
        )
    else:
        phase.notes.append("results bit-identical to fault-free baseline")
    stats = executor.stats
    for name, minimum in expect.items():
        actual = getattr(stats, name)
        if actual < minimum:
            phase.passed = False
            phase.notes.append(
                f"expected stats.{name} >= {minimum}, got {actual} "
                "(the injected fault never fired?)"
            )
        else:
            phase.notes.append(f"stats.{name} = {actual}")


def _run_injection_phase(
    name: str,
    description: str,
    cells: Sequence[CellSpec],
    baseline: Sequence[str],
    plan: ChaosPlan,
    jobs: int,
    expect: Dict[str, int],
    retried_prefixes: Sequence[str] = (),
    cell_timeout=None,
) -> ChaosPhase:
    phase = ChaosPhase(name=name, description=description, passed=True)
    with Executor(
        jobs=jobs,
        batch=1,
        retries=2,
        retry_backoff=0.05,
        cell_timeout=cell_timeout,
        chaos=plan,
    ) as executor:
        outcomes = executor.run(list(cells))
        _check_phase(phase, outcomes, baseline, executor, expect)
    for prefix in retried_prefixes:
        hit = [
            o
            for o in outcomes
            if cell_digest(spec_key(o.spec)).startswith(prefix)
        ]
        if not hit or hit[0].attempts < 2:
            phase.passed = False
            phase.notes.append(
                f"target cell {prefix[:12]} was never re-dispatched "
                f"(attempts={hit[0].attempts if hit else 'missing'})"
            )
        elif not hit[0].retry_reasons:
            phase.passed = False
            phase.notes.append(
                f"target cell {prefix[:12]} retried without recording why"
            )
        else:
            phase.notes.append(
                f"target cell {prefix[:12]}: attempts={hit[0].attempts}, "
                f"first reason: {hit[0].retry_reasons[0][:60]}"
            )
    return phase


def _run_corruption_phase(
    cells: Sequence[CellSpec], baseline: Sequence[str], jobs: int
) -> ChaosPhase:
    """Populate real stores in a scratch dir, damage them, and prove
    the rerun quarantines + recomputes instead of crashing/serving
    garbage."""
    phase = ChaosPhase(
        name="corrupt",
        description=(
            "truncated result-cache and trace-store pickles are "
            "quarantined and recomputed"
        ),
        passed=True,
    )
    scratch = tempfile.mkdtemp(prefix="silo-chaos-")
    try:
        with Executor(
            jobs=jobs,
            batch=1,
            cache=ResultCache(scratch),
            trace_store=TraceArtifactStore(scratch),
        ) as executor:
            executor.run(list(cells))

        objects = sorted((Path(scratch) / "objects").rglob("*.pkl"))
        damaged = 0
        for i, path in enumerate(objects):
            if i % 2 == 0:
                path.write_bytes(path.read_bytes()[:7])
                damaged += 1
        traces = sorted(
            (Path(scratch) / "traces" / "objects").rglob("*.pkl")
        )
        if traces:
            traces[0].write_bytes(b"\x80not a pickle")
            damaged += 1
        phase.notes.append(f"damaged {damaged} store entries in place")

        with Executor(
            jobs=jobs,
            batch=1,
            cache=ResultCache(scratch),
            trace_store=TraceArtifactStore(scratch),
        ) as executor:
            outcomes = executor.run(list(cells))
            _check_phase(phase, outcomes, baseline, executor, {})
        recomputed = sum(1 for o in outcomes if not o.cached)
        if recomputed == 0:
            phase.passed = False
            phase.notes.append(
                "no cell recomputed — corrupt entries were served?"
            )
        else:
            phase.notes.append(
                f"{recomputed} damaged cells recomputed, "
                f"{len(outcomes) - recomputed} served from intact entries"
            )
        quarantined = list(Path(scratch).rglob("*.corrupt"))
        if not quarantined:
            phase.passed = False
            phase.notes.append("no *.corrupt quarantine files were left")
        else:
            phase.notes.append(
                f"{len(quarantined)} entries quarantined as *.corrupt"
            )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return phase


def run(
    smoke: bool = True,
    jobs: int = 2,
    seed: int = 0,
    output: Optional[str] = None,
) -> ChaosResult:
    """Run the chaos self-test campaign; see the module docstring.

    ``jobs`` is clamped to >= 2: chaos needs real worker processes
    (the in-process serial path can't survive ``os._exit``).  The
    ``smoke`` flag is accepted for CLI symmetry — the campaign is
    always smoke-sized.  ``seed`` varies which probabilistic faults
    fire (targeted faults are seed-independent).
    """
    del smoke  # one size: the phases, not the cells, are the test
    jobs = max(2, jobs)
    cells = _smoke_cells()
    digests = [cell_digest(spec_key(c)) for c in cells]
    result = ChaosResult(cells=len(cells))

    # Phase 0: fault-free baseline (fresh executor, no stores).
    with Executor(jobs=jobs, batch=1) as executor:
        baseline_outcomes = executor.run(list(cells))
    baseline = _result_digests(baseline_outcomes)
    bad = [o for o in baseline_outcomes if not o.ok]
    result.phases.append(
        ChaosPhase(
            name="baseline",
            description="fault-free smoke campaign (reference digests)",
            passed=not bad,
            notes=(
                [f"{len(bad)} cells failed without any injected fault"]
                if bad
                else [f"{len(cells)} cells ok"]
            ),
        )
    )
    if bad:
        # Nothing downstream is meaningful if the campaign itself is
        # broken; report and stop.
        return _finalize(result, output)

    result.phases.append(
        _run_injection_phase(
            "kill",
            "a worker is killed (os._exit) mid-cell; pool respawns, "
            "cell retries",
            cells,
            baseline,
            ChaosPlan(seed=seed, targets=((digests[0][:16], "kill"),)),
            jobs,
            expect={"infra": 1, "retries": 1},
            retried_prefixes=[digests[0][:16]],
        )
    )
    result.phases.append(
        _run_injection_phase(
            "hang",
            "a worker hangs; the wall-clock watchdog kills and retries "
            "it",
            cells,
            baseline,
            ChaosPlan(
                seed=seed,
                hang_seconds=60.0,
                targets=((digests[1][:16], "hang"),),
            ),
            jobs,
            expect={"timeouts": 1, "retries": 1},
            retried_prefixes=[digests[1][:16]],
            cell_timeout=2.0,
        )
    )
    result.phases.append(
        _run_injection_phase(
            "raise",
            "two cells raise transient infrastructure errors on first "
            "attempt",
            cells,
            baseline,
            ChaosPlan(
                seed=seed,
                targets=(
                    (digests[2][:16], "raise"),
                    (digests[3][:16], "raise"),
                ),
            ),
            jobs,
            expect={"infra": 2, "retries": 2},
            retried_prefixes=[digests[2][:16], digests[3][:16]],
        )
    )
    result.phases.append(_run_corruption_phase(cells, baseline, jobs))
    return _finalize(result, output)


def _finalize(result: ChaosResult, output: Optional[str]) -> ChaosResult:
    if output:
        import json

        path = Path(output)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(result.to_json_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    return result
