"""``python -m repro.harness`` — same interface as the ``silo-repro``
console script (useful where the package is on PYTHONPATH but not
installed, e.g. CI)."""

import sys

from repro.harness.cli import main

if __name__ == "__main__":
    sys.exit(main())
