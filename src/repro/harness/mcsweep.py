"""Sensitivity to the number of memory controllers (Section III-D).

The paper argues Silo needs no cross-MC coordination: each MC serves
the whole memory, a transaction's logs and in-place updates meet at
its core's MC, and Silo's efficiency is therefore "not affected by the
number of MCs".  This experiment sweeps 1/2/4 MCs and reports Silo's
throughput advantage over Base at each point — the advantage should
persist (more MCs relieve bandwidth pressure for everyone, but never
invert the ordering).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.harness.executor import (
    CellSpec,
    Executor,
    WorkloadSpec,
    raise_on_failures,
)
from repro.harness.report import format_table

SWEEP_CHANNELS: Tuple[int, ...] = (1, 2, 4)


@dataclass
class MCSweepResult:
    """``speedup[workload][channels]`` = Silo throughput / Base
    throughput at that MC count."""

    speedup: Dict[str, Dict[int, float]]
    channels: Tuple[int, ...]

    def min_advantage(self) -> float:
        return min(min(row.values()) for row in self.speedup.values())

    def format_report(self) -> str:
        rows: List[List[object]] = [
            [name] + [row[c] for c in self.channels]
            for name, row in self.speedup.items()
        ]
        return format_table(
            ["workload"] + [f"{c} MC(s)" for c in self.channels],
            rows,
            title="MC sweep — Silo speedup over Base vs number of MCs",
        )


def run(
    threads: int = 8,
    transactions: int = 120,
    workloads: Sequence[str] = ("hash", "queue", "tpcc"),
    channels: Sequence[int] = SWEEP_CHANNELS,
    executor: Optional[Executor] = None,
) -> MCSweepResult:
    cells: List[CellSpec] = []
    for name in workloads:
        wspec = WorkloadSpec.make(name, threads=threads, transactions=transactions)
        for n in channels:
            config = replace(SystemConfig.table2(threads), memory_channels=n)
            for scheme in ("silo", "base"):
                cells.append(
                    CellSpec(
                        workload=wspec, scheme=scheme, cores=threads, config=config
                    )
                )
    outcomes = (executor if executor is not None else Executor(jobs=1)).run(cells)
    raise_on_failures(outcomes)

    speedup: Dict[str, Dict[int, float]] = {}
    at = iter(outcomes)
    for name in workloads:
        per_channel: Dict[int, float] = {}
        for n in channels:
            silo = next(at).result
            base = next(at).result
            per_channel[n] = (
                silo.throughput_tx_per_sec / base.throughput_tx_per_sec
                if base.throughput_tx_per_sec
                else 0.0
            )
        speedup[name] = per_channel
    return MCSweepResult(speedup=speedup, channels=tuple(channels))
