"""Sensitivity to the number of memory controllers (Section III-D).

The paper argues Silo needs no cross-MC coordination: each MC serves
the whole memory, a transaction's logs and in-place updates meet at
its core's MC, and Silo's efficiency is therefore "not affected by the
number of MCs".  This experiment sweeps 1/2/4 MCs and reports Silo's
throughput advantage over Base at each point — the advantage should
persist (more MCs relieve bandwidth pressure for everyone, but never
invert the ordering).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.harness.executor import CellSpec, Executor, WorkloadSpec
from repro.harness.experiments import (
    REGISTRY,
    Axis,
    ExperimentSpec,
    TableData,
    TabularResult,
    run_experiment,
)

SWEEP_CHANNELS: Tuple[int, ...] = (1, 2, 4)


@dataclass
class MCSweepResult(TabularResult):
    """``speedup[workload][channels]`` = Silo throughput / Base
    throughput at that MC count."""

    speedup: Dict[str, Dict[int, float]]
    channels: Tuple[int, ...]

    def min_advantage(self) -> float:
        return min(min(row.values()) for row in self.speedup.values())

    def tables(self) -> List[TableData]:
        rows: List[List[object]] = [
            [name] + [row[c] for c in self.channels]
            for name, row in self.speedup.items()
        ]
        return [
            TableData.make(
                ["workload"] + [f"{c} MC(s)" for c in self.channels],
                rows,
                title="MC sweep — Silo speedup over Base vs number of MCs",
            )
        ]


def _speedup(c, workload: str, channels: int) -> float:
    silo = c.run_result(workload=workload, channels=channels, scheme="silo")
    base = c.run_result(workload=workload, channels=channels, scheme="base")
    if not base.throughput_tx_per_sec:
        return 0.0
    return silo.throughput_tx_per_sec / base.throughput_tx_per_sec


SPEC = REGISTRY.register(
    ExperimentSpec(
        name="mcsweep",
        figure="extension",
        description="Silo speedup over Base across 1/2/4 memory controllers",
        params=dict(
            threads=8,
            transactions=120,
            workloads=("hash", "queue", "tpcc"),
            channels=SWEEP_CHANNELS,
        ),
        smoke_params=dict(
            threads=2, transactions=15, workloads=("hash",), channels=(1, 2)
        ),
        axes=lambda p: (
            Axis("workload", p["workloads"]),
            Axis("channels", p["channels"]),
            Axis("scheme", ("silo", "base")),
        ),
        cell=lambda p, pt: CellSpec(
            workload=WorkloadSpec.make(
                pt["workload"], threads=p["threads"], transactions=p["transactions"]
            ),
            scheme=pt["scheme"],
            cores=p["threads"],
            config=replace(
                SystemConfig.table2(p["threads"]), memory_channels=pt["channels"]
            ),
        ),
        assemble=lambda p, c: MCSweepResult(
            speedup={
                name: {n: _speedup(c, name, n) for n in p["channels"]}
                for name in p["workloads"]
            },
            channels=tuple(p["channels"]),
        ),
    )
)


def run(
    threads: int = 8,
    transactions: int = 120,
    workloads: Sequence[str] = ("hash", "queue", "tpcc"),
    channels: Sequence[int] = SWEEP_CHANNELS,
    executor: Optional[Executor] = None,
) -> MCSweepResult:
    return run_experiment(
        SPEC,
        executor=executor,
        threads=threads,
        transactions=transactions,
        workloads=tuple(workloads),
        channels=tuple(channels),
    )
