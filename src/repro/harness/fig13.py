"""Fig. 13: total vs remaining on-chip log entries per transaction.

Runs Silo with an effectively unbounded log buffer so no overflow
disturbs the count, and reports per transaction how many logs would be
generated naively (one per store) versus how many remain after log
ignorance and log merging (Section III-C).  TPCC runs all five
transaction types here, as in Section VI-D.

Expected shape: a large fraction of logs removed on average (the paper
reports 64.3%), with Array extreme (~90% ignored because element swaps
rewrite identical padding) and the maximum remaining count — which
sizes the 20-entry log buffer — reached by Hash-like workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.harness.executor import CellSpec, Executor, WorkloadSpec
from repro.harness.experiments import (
    REGISTRY,
    Axis,
    ExperimentSpec,
    TableData,
    TabularResult,
    run_experiment,
)
from repro.harness.runner import DEFAULT_TRANSACTIONS

#: Benchmarks of Fig. 13, with TPCC in its all-five-types variant.
FIG13_WORKLOADS: Tuple[str, ...] = (
    "array",
    "btree",
    "hash",
    "queue",
    "rbtree",
    "tpcc",
    "ycsb",
)

#: Entries in the measurement buffer: large enough to never overflow.
UNBOUNDED_ENTRIES = 1 << 14


@dataclass
class WorkloadLogCounts:
    """Per-transaction log statistics of one workload."""

    mean_total: float
    mean_remaining: float
    max_remaining: int

    @property
    def reduction(self) -> float:
        """Fraction of naive logs removed by ignorance + merging."""
        if not self.mean_total:
            return 0.0
        return 1.0 - self.mean_remaining / self.mean_total


def _log_counts(result) -> WorkloadLogCounts:
    pairs = result.tx_log_counts or [(0, 0)]
    totals = [t for t, _ in pairs]
    remainings = [r for _, r in pairs]
    return WorkloadLogCounts(
        mean_total=sum(totals) / len(totals),
        mean_remaining=sum(remainings) / len(remainings),
        max_remaining=max(remainings),
    )


@dataclass
class Fig13Result(TabularResult):
    counts: Dict[str, WorkloadLogCounts]

    @property
    def average_reduction(self) -> float:
        return sum(c.reduction for c in self.counts.values()) / len(self.counts)

    @property
    def overall_max_remaining(self) -> int:
        return max(c.max_remaining for c in self.counts.values())

    def tables(self) -> List[TableData]:
        rows: List[List[object]] = []
        for name, c in self.counts.items():
            rows.append(
                [name, c.mean_total, c.mean_remaining, c.max_remaining, c.reduction]
            )
        rows.append(
            [
                "Average",
                sum(c.mean_total for c in self.counts.values()) / len(self.counts),
                sum(c.mean_remaining for c in self.counts.values())
                / len(self.counts),
                self.overall_max_remaining,
                self.average_reduction,
            ]
        )
        return [
            TableData.make(
                ["workload", "total/tx", "remaining/tx", "max remaining", "reduction"],
                rows,
                title="Fig. 13 — on-chip log entries per transaction (Silo)",
            )
        ]


SPEC = REGISTRY.register(
    ExperimentSpec(
        name="fig13",
        figure="Fig. 13",
        description="Total vs remaining on-chip log entries (Silo, "
        "unbounded buffer)",
        params=dict(
            threads=8, transactions=DEFAULT_TRANSACTIONS, workloads=FIG13_WORKLOADS
        ),
        smoke_params=dict(threads=1, transactions=10, workloads=("array", "hash")),
        axes=lambda p: (Axis("workload", p["workloads"]),),
        cell=lambda p, pt: CellSpec(
            workload=WorkloadSpec.make(
                pt["workload"],
                threads=p["threads"],
                transactions=p["transactions"],
                **({"mix": "full"} if pt["workload"] == "tpcc" else {}),
            ),
            scheme="silo",
            cores=p["threads"],
            config=SystemConfig.table2(p["threads"]).with_log_buffer(
                entries=UNBOUNDED_ENTRIES
            ),
        ),
        assemble=lambda p, c: Fig13Result(
            counts={pt["workload"]: _log_counts(o.result) for pt, o in c.cells()}
        ),
    )
)


def run(
    threads: int = 8,
    transactions: int = DEFAULT_TRANSACTIONS,
    workloads: Sequence[str] = FIG13_WORKLOADS,
    executor: Optional[Executor] = None,
) -> Fig13Result:
    """Measure total and remaining log counts for every workload."""
    return run_experiment(
        SPEC,
        executor=executor,
        threads=threads,
        transactions=transactions,
        workloads=tuple(workloads),
    )
