"""Exact-vs-columnar equivalence gate over the experiment catalog.

The columnar engine is only admissible because it is *bit-identical*:
every campaign must produce the same simulated results under either
engine.  This module runs the full experiment registry (smoke
parameters by default) under both engines and compares three layers:

* **Manifests** — the campaign manifests must be byte-equal after
  normalization.  A manifest records each cell's content address and
  cache status; the engine is deliberately part of the address (so
  both engines really execute) and cache status depends on run order,
  so the comparison strips exactly those two fields — ``engine``
  inside each cell spec and the per-cell ``cached`` flag — and then
  requires byte equality of the canonical JSON encoding.
* **Result payloads** — each experiment's assembled figure/table
  payload (``to_json_payload()``), compared byte-for-byte with no
  normalization at all.
* **Cell results** — per-cell ``end_cycle``, committed set and the
  full stats counter mapping, compared value-for-value.

It also accounts the columnar engine's fused coverage: a cell whose
``fast_fraction`` is zero ran entirely through the exact path, and a
catalog where more than half the simulated cells silently fall back
fails the gate (the fast engine would be decorative).

CI entry point::

    PYTHONPATH=src python -m repro.harness.equivalence
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.harness.executor import Executor
from repro.harness.experiments import load_all, run_campaign


def normalized_manifest(manifest: Dict[str, Any]) -> str:
    """Canonical JSON of a campaign manifest with the two
    engine-dependent fields removed (see module docstring)."""
    clean = json.loads(json.dumps(manifest, sort_keys=True))
    for cell in clean.get("cells", []):
        cell.pop("cached", None)
        spec = cell.get("spec")
        if isinstance(spec, dict):
            spec.pop("engine", None)
    return json.dumps(clean, sort_keys=True)


@dataclass
class EquivalenceReport:
    """Outcome of one exact-vs-columnar catalog comparison."""

    smoke: bool
    experiments: List[str] = field(default_factory=list)
    mismatches: List[str] = field(default_factory=list)
    simulated_cells: int = 0
    full_fallback_cells: int = 0
    delegated_cells: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.excessive_fallback

    @property
    def excessive_fallback(self) -> bool:
        return self.full_fallback_cells * 2 > max(1, self.simulated_cells)

    def format_report(self) -> str:
        lines = [
            f"engine equivalence over {len(self.experiments)} experiments "
            f"({'smoke' if self.smoke else 'full'} catalog): "
            f"{self.simulated_cells} simulated cells, "
            f"{self.full_fallback_cells} full fallbacks, "
            f"{self.delegated_cells} delegated",
        ]
        if self.excessive_fallback:
            lines.append(
                "FAIL: columnar engine silently fell back on more than "
                "half the catalog"
            )
        for m in self.mismatches:
            lines.append(f"MISMATCH: {m}")
        if self.ok:
            lines.append("OK: manifests, payloads and cell results match")
        return "\n".join(lines)


def check_engine_equivalence(
    smoke: bool = True,
    jobs: int = 1,
    names: Optional[List[str]] = None,
) -> EquivalenceReport:
    """Run the experiment catalog under both engines and compare.

    Uses cacheless executors: a cache hit would compare an engine
    against a stored copy of itself and prove nothing.
    """
    registry = load_all()
    specs = (
        registry.specs()
        if names is None
        else [registry.get(name) for name in names]
    )
    report = EquivalenceReport(smoke=smoke)
    for spec in specs:
        report.experiments.append(spec.name)
        result_exact, campaign_exact = run_campaign(
            spec, executor=Executor(jobs=jobs), smoke=smoke, engine="exact"
        )
        result_col, campaign_col = run_campaign(
            spec, executor=Executor(jobs=jobs), smoke=smoke, engine="columnar"
        )

        if normalized_manifest(campaign_exact.manifest()) != normalized_manifest(
            campaign_col.manifest()
        ):
            report.mismatches.append(f"{spec.name}: manifest differs")
        payload_exact = json.dumps(
            result_exact.to_json_payload(), sort_keys=True, default=repr
        )
        payload_col = json.dumps(
            result_col.to_json_payload(), sort_keys=True, default=repr
        )
        if payload_exact != payload_col:
            report.mismatches.append(f"{spec.name}: result payload differs")

        for (point, oe), (_, oc) in zip(
            campaign_exact.cells(), campaign_col.cells()
        ):
            re_, rc = oe.result, oc.result
            report.simulated_cells += 1
            stats = oc.engine_stats or {}
            if stats.get("delegated"):
                report.delegated_cells += 1
            elif stats.get("fast_fraction", 0.0) == 0.0:
                report.full_fallback_cells += 1
            if not hasattr(re_, "end_cycle"):
                continue  # trace-statistics cells carry no run result
            where = f"{spec.name} {point}"
            if re_.end_cycle != rc.end_cycle:
                report.mismatches.append(
                    f"{where}: end_cycle {re_.end_cycle} != {rc.end_cycle}"
                )
            if re_.committed != rc.committed:
                report.mismatches.append(f"{where}: committed differs")
            if dict(re_.stats.counters) != dict(rc.stats.counters):
                report.mismatches.append(f"{where}: stats counters differ")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    smoke = "--full" not in args
    report = check_engine_equivalence(smoke=smoke)
    print(report.format_report())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
