"""Exact-vs-columnar equivalence gate over the experiment catalog.

The columnar engine is only admissible because it is *bit-identical*:
every campaign must produce the same simulated results under either
engine.  This module runs the full experiment registry (smoke
parameters by default) under both engines and compares three layers:

* **Manifests** — the campaign manifests must be byte-equal after
  normalization.  A manifest records each cell's content address and
  cache status; the engine is deliberately part of the address (so
  both engines really execute) and cache status depends on run order,
  so the comparison strips exactly those two fields — ``engine``
  inside each cell spec and the per-cell ``cached`` flag — and then
  requires byte equality of the canonical JSON encoding.
* **Result payloads** — each experiment's assembled figure/table
  payload (``to_json_payload()``), compared byte-for-byte with no
  normalization at all.
* **Cell results** — per-cell ``end_cycle``, committed set and the
  full stats counter mapping, compared value-for-value.

It also accounts the columnar engine's fused coverage: a cell whose
``fast_fraction`` is zero ran entirely through the exact path, and a
catalog where more than half the simulated cells silently fall back
fails the gate (the fast engine would be decorative).

Beyond the catalog, the gate runs dedicated **stress cells** for the
paths smoke campaigns barely touch: an eviction-storm workload (arena
far larger than the cache, so on-PM-buffer writeback storms dominate)
and a finalize-heavy one (large dirty-line tails drained at end of
run).  Those cells must be bit-identical *and* fully fused
(``fast_fraction == 1.0``) — morlog/fwb eviction storms falling back
to the exact path is exactly the coverage regression this gate exists
to catch.

CI entry point::

    PYTHONPATH=src python -m repro.harness.equivalence
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.harness.executor import Executor
from repro.harness.experiments import load_all, run_campaign


def normalized_manifest(manifest: Dict[str, Any]) -> str:
    """Canonical JSON of a campaign manifest with the two
    engine-dependent fields removed (see module docstring)."""
    clean = json.loads(json.dumps(manifest, sort_keys=True))
    for cell in clean.get("cells", []):
        cell.pop("cached", None)
        spec = cell.get("spec")
        if isinstance(spec, dict):
            spec.pop("engine", None)
    return json.dumps(clean, sort_keys=True)


@dataclass
class EquivalenceReport:
    """Outcome of one exact-vs-columnar catalog comparison."""

    smoke: bool
    experiments: List[str] = field(default_factory=list)
    mismatches: List[str] = field(default_factory=list)
    simulated_cells: int = 0
    full_fallback_cells: int = 0
    delegated_cells: int = 0
    stress_cells: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.excessive_fallback

    @property
    def excessive_fallback(self) -> bool:
        return self.full_fallback_cells * 2 > max(1, self.simulated_cells)

    def format_report(self) -> str:
        lines = [
            f"engine equivalence over {len(self.experiments)} experiments "
            f"({'smoke' if self.smoke else 'full'} catalog): "
            f"{self.simulated_cells} simulated cells, "
            f"{self.full_fallback_cells} full fallbacks, "
            f"{self.delegated_cells} delegated, "
            f"{self.stress_cells} stress cells",
        ]
        if self.excessive_fallback:
            lines.append(
                "FAIL: columnar engine silently fell back on more than "
                "half the catalog"
            )
        for m in self.mismatches:
            lines.append(f"MISMATCH: {m}")
        if self.ok:
            lines.append("OK: manifests, payloads and cell results match")
        return "\n".join(lines)


def check_engine_equivalence(
    smoke: bool = True,
    jobs: int = 1,
    names: Optional[List[str]] = None,
) -> EquivalenceReport:
    """Run the experiment catalog under both engines and compare.

    Uses cacheless executors: a cache hit would compare an engine
    against a stored copy of itself and prove nothing.
    """
    registry = load_all()
    specs = (
        registry.specs()
        if names is None
        else [registry.get(name) for name in names]
    )
    report = EquivalenceReport(smoke=smoke)
    for spec in specs:
        report.experiments.append(spec.name)
        result_exact, campaign_exact = run_campaign(
            spec, executor=Executor(jobs=jobs), smoke=smoke, engine="exact"
        )
        result_col, campaign_col = run_campaign(
            spec, executor=Executor(jobs=jobs), smoke=smoke, engine="columnar"
        )

        if normalized_manifest(campaign_exact.manifest()) != normalized_manifest(
            campaign_col.manifest()
        ):
            report.mismatches.append(f"{spec.name}: manifest differs")
        payload_exact = json.dumps(
            result_exact.to_json_payload(), sort_keys=True, default=repr
        )
        payload_col = json.dumps(
            result_col.to_json_payload(), sort_keys=True, default=repr
        )
        if payload_exact != payload_col:
            report.mismatches.append(f"{spec.name}: result payload differs")

        for (point, oe), (_, oc) in zip(
            campaign_exact.cells(), campaign_col.cells()
        ):
            re_, rc = oe.result, oc.result
            report.simulated_cells += 1
            stats = oc.engine_stats or {}
            if stats.get("delegated"):
                report.delegated_cells += 1
            elif stats.get("fast_fraction", 0.0) == 0.0:
                report.full_fallback_cells += 1
            if not hasattr(re_, "end_cycle"):
                continue  # trace-statistics cells carry no run result
            where = f"{spec.name} {point}"
            if re_.end_cycle != rc.end_cycle:
                report.mismatches.append(
                    f"{where}: end_cycle {re_.end_cycle} != {rc.end_cycle}"
                )
            if re_.committed != rc.committed:
                report.mismatches.append(f"{where}: committed differs")
            if dict(re_.stats.counters) != dict(rc.stats.counters):
                report.mismatches.append(f"{where}: stats counters differ")
    return report


#: Stress cells for the fused paths the smoke catalog barely touches:
#: ``(label, synthetic-trace kwargs, schemes, must_fuse)``.  The
#: eviction-heavy cell's arena (512 KiB of words) dwarfs the cache, so
#: on-PM-buffer writeback storms dominate; the finalize-heavy cell
#: leaves each core hundreds of dirty lines to drain at end of run.
#: ``must_fuse`` demands ``fast_fraction == 1.0``: these schemes have
#: fused eviction/finalize kernels, and silently losing them is the
#: coverage regression this gate exists to catch.
STRESS_CELLS = (
    (
        "eviction-heavy",
        dict(
            threads=4,
            transactions_per_thread=20,
            write_set_words=64,
            rewrite_fraction=0.1,
            silent_fraction=0.0,
            loads_per_store=1.0,
            arena_words=65536,
            seed=5,
        ),
        ("morlog", "fwb", "silo", "swlog", "wrap"),
        True,
    ),
    (
        "morlog-finalize-heavy",
        dict(
            threads=2,
            transactions_per_thread=10,
            write_set_words=200,
            rewrite_fraction=0.0,
            silent_fraction=0.0,
            loads_per_store=0.0,
            arena_words=8192,
            seed=9,
        ),
        ("morlog", "fwb"),
        True,
    ),
    # Policy-assembled catalog entries take the generic (unfused) path
    # in the columnar engine; the cell still must be bit-identical
    # between engines, it just is not required to fuse.
    (
        "policy-catalog",
        dict(
            threads=2,
            transactions_per_thread=12,
            write_set_words=96,
            rewrite_fraction=0.2,
            silent_fraction=0.0,
            loads_per_store=0.5,
            arena_words=16384,
            seed=13,
        ),
        ("aglog", "quadra1f", "trinity2f", "redolog4f"),
        False,
    ),
)


def check_stress_cells(report: EquivalenceReport) -> None:
    """Run the stress cells under both engines; append any divergence
    or lost fusion to ``report.mismatches``."""
    from repro.common.config import SystemConfig
    from repro.designs.scheme import SchemeRegistry
    from repro.sim.columnar import ColumnarEngine
    from repro.sim.engine import TransactionEngine
    from repro.sim.system import System
    from repro.trace.synthetic import SyntheticTraceConfig, synthetic_trace

    for label, kwargs, schemes, must_fuse in STRESS_CELLS:
        trace = synthetic_trace(SyntheticTraceConfig(**kwargs))
        cores = kwargs["threads"]
        for scheme_name in schemes:
            report.stress_cells += 1
            where = f"stress {label}/{scheme_name}"
            sys_exact = System(SystemConfig.table2(cores))
            exact = TransactionEngine(
                sys_exact, SchemeRegistry.create(scheme_name, sys_exact), trace
            ).run()
            sys_col = System(SystemConfig.table2(cores))
            engine = ColumnarEngine(
                sys_col, SchemeRegistry.create(scheme_name, sys_col), trace
            )
            col = engine.run()
            if exact.end_cycle != col.end_cycle:
                report.mismatches.append(
                    f"{where}: end_cycle {exact.end_cycle} != {col.end_cycle}"
                )
            if exact.committed != col.committed:
                report.mismatches.append(f"{where}: committed differs")
            if dict(exact.stats.counters) != dict(col.stats.counters):
                report.mismatches.append(f"{where}: stats counters differ")
            stats = engine.engine_stats()
            if must_fuse and stats["fast_fraction"] != 1.0:
                report.mismatches.append(
                    f"{where}: fast_fraction {stats['fast_fraction']:.3f} "
                    f"!= 1.0 (fallbacks: {stats['fallback_reasons']})"
                )


#: Crash-point boundary cells: ``at_op=0`` (power fails before any
#: operation executes) and ``at_op == total_ops`` (power fails after
#: the last operation retires, before the clean end-of-run drain).
#: The PR-6 drain/crash end_cycle contract only pins interior crash
#: points; these two pin the boundary semantics — both engines must
#: produce bit-identical results (the columnar engine delegates
#: crash-plan runs, and that delegation must cover the boundaries) and
#: recovery must satisfy atomic durability at each.
BOUNDARY_SCHEMES = (
    "base",
    "fwb",
    "morlog",
    "silo",
    "swlog",
    "aglog",
    "quadra1f",
    "redolog4f",
)


def check_boundary_cells(report: EquivalenceReport) -> None:
    """Run the two crash-point boundary cells under both engines;
    append any divergence or oracle violation to ``report.mismatches``."""
    from repro.common.config import SystemConfig
    from repro.designs.scheme import SchemeRegistry
    from repro.sim.columnar import ColumnarEngine
    from repro.sim.crash import CrashPlan
    from repro.sim.engine import TransactionEngine
    from repro.sim.system import System
    from repro.sim.verify import check_atomic_durability
    from repro.workloads.registry import build_workload

    trace = build_workload("hash", threads=2, transactions=4)
    total_ops = sum(
        len(tx.ops) + 2 for th in trace.threads for tx in th.transactions
    )
    for at_op in (0, total_ops):
        for scheme_name in BOUNDARY_SCHEMES:
            report.stress_cells += 1
            where = f"boundary at_op={at_op}/{scheme_name}"
            results = {}
            for engine_name, engine_cls in (
                ("exact", TransactionEngine),
                ("columnar", ColumnarEngine),
            ):
                system = System(SystemConfig.table2(2))
                result = engine_cls(
                    system,
                    SchemeRegistry.create(scheme_name, system),
                    trace,
                    crash_plan=CrashPlan(at_op=at_op),
                ).run()
                if not result.crashed:
                    report.mismatches.append(
                        f"{where}: {engine_name} engine did not crash"
                    )
                if check_atomic_durability(system, trace, result.committed):
                    report.mismatches.append(
                        f"{where}: {engine_name} engine violated atomic "
                        "durability"
                    )
                results[engine_name] = result
            exact, col = results["exact"], results["columnar"]
            if exact.end_cycle != col.end_cycle:
                report.mismatches.append(
                    f"{where}: end_cycle {exact.end_cycle} != {col.end_cycle}"
                )
            if exact.committed != col.committed:
                report.mismatches.append(f"{where}: committed differs")
            if dict(exact.stats.counters) != dict(col.stats.counters):
                report.mismatches.append(f"{where}: stats counters differ")
            if exact.recovery != col.recovery:
                report.mismatches.append(f"{where}: recovery report differs")


def main(argv: Optional[List[str]] = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    smoke = "--full" not in args
    report = check_engine_equivalence(smoke=smoke)
    check_stress_cells(report)
    check_boundary_cells(report)
    print(report.format_report())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
