"""Bit-exact design fingerprints over a fixed workload battery.

A *fingerprint* is the complete observable surface of one simulated
run — ``end_cycle``, the committed transaction set, and every stats
counter — for one design on one fixed workload.  The battery covers a
clean run, a mid-run crash (with recovery), and the end-boundary crash
(after the last op retires, before the clean drain), because those are
the three regimes in which a design's persist ordering, stall
arithmetic, and recovery walk are all exercised.

``benchmarks/gen_design_fingerprints.py`` serializes the battery to
``tests/data/golden/design_fingerprints.json``;
``tests/integration/test_design_fingerprints.py`` pins the legacy
designs against the fixture captured *before* the policy-framework
refactor, so the ports are provably bit-identical.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.config import SystemConfig
from repro.designs.scheme import SchemeRegistry
from repro.sim.crash import CrashPlan
from repro.sim.engine import TransactionEngine
from repro.sim.system import System
from repro.sim.verify import check_atomic_durability
from repro.trace.synthetic import SyntheticTraceConfig, synthetic_trace

#: The fixed workload battery.  Parameters are chosen to exercise
#: rewrites, silent stores, multi-thread interleaving, and cache
#: evictions (write sets larger than a handful of lines) while staying
#: fast enough to fingerprint the whole catalog in a few seconds.
WORKLOADS: Tuple[Tuple[str, Dict[str, float]], ...] = (
    (
        "mixed_2t",
        dict(
            threads=2,
            transactions_per_thread=6,
            write_set_words=24,
            rewrite_fraction=0.4,
            silent_fraction=0.2,
            arena_words=192,
            loads_per_store=0.25,
            seed=1009,
        ),
    ),
    (
        "large_1t",
        dict(
            threads=1,
            transactions_per_thread=3,
            write_set_words=96,
            rewrite_fraction=0.15,
            silent_fraction=0.0,
            arena_words=256,
            loads_per_store=0.1,
            seed=2027,
        ),
    ),
)

#: Crash points as fractions of the total op count; ``1.0`` is the
#: end-boundary crash (fires after the last op retires, before the
#: clean drain).
CRASH_FRACTIONS: Tuple[Tuple[str, float], ...] = (
    ("clean", -1.0),
    ("crash_mid", 0.45),
    ("crash_end", 1.0),
)


def _run_one(scheme_name: str, params: Dict[str, float], fraction: float):
    trace = synthetic_trace(SyntheticTraceConfig(**params))
    system = System(SystemConfig.table2(max(int(params["threads"]), 1)))
    scheme = SchemeRegistry.create(scheme_name, system)
    crash_plan = None
    if fraction >= 0:
        total_ops = sum(
            len(tx.ops) + 2
            for thread in trace.threads
            for tx in thread.transactions
        )
        crash_plan = CrashPlan(at_op=min(int(fraction * total_ops), total_ops))
    engine = TransactionEngine(system, scheme, trace, crash_plan=crash_plan)
    result = engine.run()
    return system, trace, result


def fingerprint_design(scheme_name: str) -> Dict[str, Dict[str, object]]:
    """Fingerprint one design over the whole battery.

    Returns ``{cell_name: {end_cycle, committed, stats}}``.  Crashed
    cells are additionally verified for atomic durability so a fixture
    can never pin a corrupting design.
    """
    cells: Dict[str, Dict[str, object]] = {}
    for workload_name, params in WORKLOADS:
        for crash_name, fraction in CRASH_FRACTIONS:
            system, trace, result = _run_one(scheme_name, params, fraction)
            if fraction >= 0:
                mismatches = check_atomic_durability(
                    system, trace, result.committed
                )
                if mismatches:
                    raise AssertionError(
                        f"{scheme_name}/{workload_name}/{crash_name}: "
                        f"atomic durability violated: {mismatches[:3]}"
                    )
            cells[f"{workload_name}.{crash_name}"] = {
                "end_cycle": result.end_cycle,
                "committed": sorted(map(list, result.committed)),
                "stats": {
                    k: v for k, v in sorted(result.stats.as_dict().items())
                },
            }
    return cells


def collect_fingerprints(names: List[str] | None = None) -> Dict[str, object]:
    """Fingerprint ``names`` (default: the whole registry)."""
    if names is None:
        names = SchemeRegistry.names()
    return {
        "workloads": [name for name, _ in WORKLOADS],
        "crash_points": [name for name, _ in CRASH_FRACTIONS],
        "designs": {name: fingerprint_design(name) for name in sorted(names)},
    }
