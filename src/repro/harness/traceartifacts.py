"""Content-addressed trace-artifact store: build a workload once per
campaign, share it across every worker process.

Every executor cell names its workload by *recipe* (a
:class:`~repro.harness.executor.WorkloadSpec`), and before this store
existed each worker process re-synthesized the trace — RNG draws, data
-structure modeling, op-object construction — and re-ran the columnar
engine's whole-trace decode, once per process per recipe.  Campaign
wall-clock at scale is dominated by exactly that redundant pre-work.

This store lifts both out of the per-cell path:

* an **artifact** is the trace serialized as flat columns (per-thread
  op kinds / addresses / values plus transaction lengths and the
  initial PM image) together with the columnar engine's exported
  decode columns (:func:`repro.sim.columnar.export_decode_columns`);
* artifacts are **content-addressed** by the canonical JSON of the
  workload recipe plus a fingerprint of the trace-affecting sources
  (``repro/trace`` + ``repro/workloads`` + ``repro/litmus``) and the
  decode format
  version — an edit to the simulator proper does *not* invalidate
  them, an edit to a workload builder or the columnar decode does;
* loading is **zero-parse**: ops are rebuilt by slot assignment
  (their invariants were validated when the artifact was built) and
  the decode columns are seeded straight into the engine's memo, so
  the first columnar run of a loaded trace skips analysis entirely.

The executor builds every distinct pending recipe once in the parent
before fanning out, so workers only ever *load*.  Artifacts live under
``<cache-root>/traces/`` with the result cache's sharded layout;
``silo-repro cache stats`` / ``cache clear`` account for and manage
both stores.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from repro.harness.resultcache import (
    MISS,
    default_cache_dir,
    load_pickle_hardened,
)
from repro.sim.columnar import (
    DECODE_VERSION,
    export_decode_columns,
    precompute_trace,
    seed_decode_columns,
)
from repro.trace.ops import Load, Store
from repro.trace.trace import ThreadTrace, Trace, Transaction
from repro.workloads.registry import build_workload

#: Bump to orphan every artifact after an incompatible layout change.
_FORMAT_VERSION = 1

_FINGERPRINT_MEMO: Dict[str, str] = {}


def trace_source_fingerprint() -> str:
    """SHA-256 over the sources that determine a built trace and its
    decode: ``repro/trace``, ``repro/workloads``, ``repro/litmus``
    (pattern lowering) and the columnar decode version.

    Deliberately *narrower* than the result cache's whole-package
    fingerprint: a timing-model edit changes every simulated result
    but not the traces, so artifacts survive it.
    """
    import repro

    root = Path(repro.__file__).parent
    memo = _FINGERPRINT_MEMO.get(str(root))
    if memo is not None:
        return memo
    digest = hashlib.sha256()
    digest.update(f"decode-v{DECODE_VERSION}\0".encode())
    for sub in ("trace", "workloads", "litmus"):
        base = root / sub
        for path in sorted(base.rglob("*.py"), key=lambda p: str(p.relative_to(base))):
            digest.update(f"{sub}/{path.relative_to(base)}".encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
    value = digest.hexdigest()
    _FINGERPRINT_MEMO[str(root)] = value
    return value


def _columns_from_trace(trace: Trace) -> dict:
    """Flatten a trace into picklable columns (no op objects)."""
    tids = []
    tx_lens = []
    kinds = []
    addrs = []
    vals = []
    for thread in trace.threads:
        tids.append(thread.tid)
        lens = []
        k = bytearray()
        a = []
        v = []
        for tx in thread.transactions:
            lens.append(len(tx.ops))
            for op in tx.ops:
                if type(op) is Store:
                    k.append(1)
                    a.append(op.addr)
                    v.append(op.value)
                else:  # Load — traces carry no other op kinds
                    k.append(0)
                    a.append(op.addr)
                    v.append(0)
        tx_lens.append(lens)
        kinds.append(bytes(k))
        addrs.append(a)
        vals.append(v)
    return {
        "version": _FORMAT_VERSION,
        "name": trace.name,
        "tids": tids,
        "tx_lens": tx_lens,
        "kinds": kinds,
        "addrs": addrs,
        "vals": vals,
        "image": dict(trace.initial_image),
        "decode": export_decode_columns(trace),
    }


def _trace_from_columns(columns: dict) -> Trace:
    """Rebuild the trace by slot assignment — no validation re-runs
    (the builder validated once, at artifact-build time)."""
    store_new = Store.__new__
    load_new = Load.__new__
    threads = []
    for tid, lens, kinds, addrs, vals in zip(
        columns["tids"],
        columns["tx_lens"],
        columns["kinds"],
        columns["addrs"],
        columns["vals"],
    ):
        i = 0
        transactions = []
        for n in lens:
            ops = []
            append = ops.append
            for j in range(i, i + n):
                if kinds[j]:
                    op = store_new(Store)
                    op.addr = addrs[j]
                    op.value = vals[j]
                else:
                    op = load_new(Load)
                    op.addr = addrs[j]
                append(op)
            i += n
            tx = Transaction.__new__(Transaction)
            tx.ops = ops
            transactions.append(tx)
        thread = ThreadTrace.__new__(ThreadTrace)
        thread.tid = tid
        thread.transactions = transactions
        threads.append(thread)
    trace = Trace.__new__(Trace)
    trace.threads = threads
    trace.initial_image = columns["image"]
    trace.name = columns["name"]
    return trace


class TraceArtifactStore:
    """Sharded pickle store of built+decoded workload traces.

    ``root`` is the *cache* root (the store nests under
    ``<root>/traces/``), so one ``--cache-dir`` governs both stores.
    """

    def __init__(
        self, root: Optional[str] = None, fingerprint: Optional[str] = None
    ) -> None:
        self.root = Path(root if root is not None else default_cache_dir()) / "traces"
        self.fingerprint = (
            fingerprint if fingerprint is not None else trace_source_fingerprint()
        )
        self.hits = 0
        self.misses = 0
        self.builds = 0

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    @staticmethod
    def key(spec: Any) -> str:
        """Canonical JSON of one workload recipe (duck-typed so the
        executor's :class:`WorkloadSpec` needs no import here)."""
        return json.dumps(
            {
                "name": spec.name,
                "threads": spec.threads,
                "transactions": spec.transactions,
                "kwargs": {k: v for k, v in spec.kwargs},
            },
            sort_keys=True,
            default=repr,
        )

    def digest(self, key: str) -> str:
        h = hashlib.sha256()
        h.update(f"v{_FORMAT_VERSION}\0".encode())
        h.update(self.fingerprint.encode())
        h.update(b"\0")
        h.update(key.encode())
        return h.hexdigest()

    def _path(self, digest: str) -> Path:
        return self.root / "objects" / digest[:2] / f"{digest}.pkl"

    # ------------------------------------------------------------------
    # Load / build
    # ------------------------------------------------------------------
    def load(self, spec: Any) -> Optional[Trace]:
        """Load the artifact for ``spec``; ``None`` on miss.

        A truncated or corrupt pickle is quarantined (renamed to
        ``*.corrupt``) and treated as a miss, so the recipe is simply
        rebuilt; a well-formed artifact of a stale format version is a
        plain miss (it is overwritten in place by the rebuild)."""
        path = self._path(self.digest(self.key(spec)))
        columns = load_pickle_hardened(path, label="trace store")
        if columns is MISS:
            self.misses += 1
            return None
        if (
            not isinstance(columns, dict)
            or columns.get("version") != _FORMAT_VERSION
        ):
            self.misses += 1
            return None
        trace = _trace_from_columns(columns)
        seed_decode_columns(trace, columns["decode"])
        self.hits += 1
        return trace

    def put(self, spec: Any, trace: Trace) -> None:
        """Store the artifact (atomic rename, last wins)."""
        path = self._path(self.digest(self.key(spec)))
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(
                    _columns_from_trace(trace),
                    fh,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def ensure(self, spec: Any, trace: Trace) -> None:
        """Serialize an already-built ``trace`` for ``spec`` unless its
        artifact is already on disk (decode columns ride along)."""
        if self._path(self.digest(self.key(spec))).exists():
            return
        self.put(spec, trace)

    def build(self, spec: Any) -> Trace:
        """Load the artifact, or synthesize + decode + store it."""
        trace = self.load(spec)
        if trace is not None:
            return trace
        trace = build_workload(
            spec.name,
            threads=spec.threads,
            transactions=spec.transactions,
            **dict(spec.kwargs),
        )
        precompute_trace(trace)
        self.builds += 1
        self.put(spec, trace)
        return trace

    # ------------------------------------------------------------------
    # Management
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        entries = 0
        total_bytes = 0
        objects = self.root / "objects"
        if objects.is_dir():
            for path in objects.rglob("*.pkl"):
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.builds,
            "fingerprint": self.fingerprint[:16],
        }

    def clear(self) -> int:
        removed = 0
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        for path in objects.rglob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        for path in objects.rglob("*.corrupt"):
            try:
                path.unlink()
            except OSError:
                continue
        for shard in sorted(objects.glob("*"), reverse=True):
            try:
                shard.rmdir()
            except OSError:
                continue
        return removed

    def format_stats(self) -> str:
        s = self.stats()
        requests = s["hits"] + s["misses"]
        rate = f"{s['hits'] / requests:.0%}" if requests else "n/a"
        return (
            f"traces {s['root']}: {s['entries']} artifacts, "
            f"{s['bytes'] / 1024:.1f} KiB, fingerprint {s['fingerprint']} "
            f"(this process: {s['hits']} hits / {s['misses']} misses, "
            f"hit rate {rate}, {s['builds']} built)"
        )
