"""``silo-repro trace``: capture Chrome/Perfetto traces of real runs.

Runs one obs-enabled cell per requested scheme (``--scheme all`` covers
every registered design), writes a Chrome trace-event JSON per run —
loadable in ``chrome://tracing`` or https://ui.perfetto.dev — and
prints a per-phase cycle-attribution profile from the metrics registry.

The cells flow through the shared :class:`Executor`, so traces are
cached, parallelizable and addressed by their obs-enabled spec (which
never collides with the plain cells of the figure campaigns).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.designs.scheme import SchemeRegistry
from repro.harness.executor import (
    CellSpec,
    Executor,
    WorkloadSpec,
    raise_on_failures,
)
from repro.harness.report import format_table
from repro.obs import ObsConfig
from repro.obs.export import format_phase_profile, write_chrome_trace
from repro.sim.results import RunResult

#: Default grid: small enough to trace in seconds, big enough that
#: every event family (stalls, overflows, evictions) actually fires.
DEFAULT_WORKLOAD = "hash"
DEFAULT_TRANSACTIONS = 60
DEFAULT_CORES = 2


@dataclass
class TraceRun:
    """One captured trace: the run plus where its JSON landed."""

    scheme: str
    workload: str
    result: RunResult
    path: str


@dataclass
class TraceCmdResult:
    """Everything ``silo-repro trace`` produced."""

    runs: List[TraceRun]

    def format_report(self) -> str:
        rows = [
            [
                run.scheme,
                run.workload,
                run.result.end_cycle,
                len(run.result.events or ()),
                run.result.events_dropped,
                run.path,
            ]
            for run in self.runs
        ]
        parts = [
            format_table(
                ["scheme", "workload", "end_cycle", "events", "dropped", "trace"],
                rows,
                title="trace — Chrome trace-event captures "
                "(open in chrome://tracing or ui.perfetto.dev)",
            )
        ]
        for run in self.runs:
            if run.result.metrics is None:
                continue
            parts.append(
                format_phase_profile(
                    run.result.metrics,
                    title=f"{run.scheme}/{run.workload} — cycle attribution by phase",
                )
            )
        return "\n\n".join(parts)


def _trace_path(template: str, scheme: str, multiple: bool) -> str:
    """``TRACE.json`` -> ``TRACE_silo.json`` when tracing many schemes."""
    if not multiple:
        return template
    root, ext = os.path.splitext(template)
    return f"{root}_{scheme}{ext or '.json'}"


def run(
    scheme: str = "silo",
    workload: str = DEFAULT_WORKLOAD,
    transactions: int = DEFAULT_TRANSACTIONS,
    cores: int = DEFAULT_CORES,
    output: str = "TRACE.json",
    executor: Optional[Executor] = None,
) -> TraceCmdResult:
    """Capture one trace per scheme (``scheme="all"`` = every design)."""
    schemes: Sequence[str]
    if scheme == "all":
        schemes = SchemeRegistry.names()
    else:
        schemes = [scheme]
    obs = ObsConfig(events=True, metrics=True)
    wspec = WorkloadSpec.make(workload, cores, transactions)
    cells = [
        CellSpec(workload=wspec, scheme=s, cores=cores, obs=obs)
        for s in schemes
    ]
    executor = executor or Executor(jobs=1)
    outcomes = executor.run(cells)
    raise_on_failures(outcomes)
    runs = []
    multiple = len(schemes) > 1
    for outcome in outcomes:
        path = _trace_path(output, outcome.spec.scheme, multiple)
        write_chrome_trace(outcome.result, path)
        runs.append(
            TraceRun(
                scheme=outcome.spec.scheme,
                workload=workload,
                result=outcome.result,
                path=path,
            )
        )
    return TraceCmdResult(runs=runs)
