"""Fig. 12: transaction throughput, normalized to Base.

Expected shape: Base slowest (synchronous per-store log+data
persists); FWB above Base; MorLog above FWB (fewer log writes to wait
for); LAD high (no logs) but paying its Prepare-phase line flushes;
Silo highest, with the gap growing with core count because its commit
path has no persist ordering to queue behind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.harness.executor import Executor
from repro.harness.report import format_grouped_bars, format_normalized
from repro.harness.runner import (
    DEFAULT_SCHEMES,
    DEFAULT_TRANSACTIONS,
    DEFAULT_WORKLOADS,
    GridResult,
    add_average,
    normalize_to,
    run_grids,
)


@dataclass
class Fig12Result:
    """Normalized throughput per core count."""

    grids: Dict[int, GridResult]

    def normalized(self, cores: int) -> Dict[str, Dict[str, float]]:
        return add_average(
            normalize_to(self.grids[cores], "throughput_tx_per_sec")
        )

    def format_report(self) -> str:
        parts: List[str] = []
        for cores in sorted(self.grids):
            parts.append(
                format_normalized(
                    self.normalized(cores),
                    schemes=list(self.grids[cores].schemes()),
                    title=f"Fig. 12 — normalized transaction throughput ({cores} core(s))",
                )
            )
        return "\n\n".join(parts)

    def format_chart(self) -> str:
        """ASCII grouped bars of the cross-workload averages, one group
        per core count (the shape of the paper's figure)."""
        groups = {
            f"{cores} core(s)": self.normalized(cores)["average"]
            for cores in sorted(self.grids)
        }
        return format_grouped_bars(
            groups, title="fig12 — average normalized throughput"
        )


def run(
    core_counts: Sequence[int] = (1, 2, 4, 8),
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    transactions: int = DEFAULT_TRANSACTIONS,
    executor: Optional[Executor] = None,
) -> Fig12Result:
    """Run the full throughput grid as one executor campaign."""
    grids = run_grids(core_counts, schemes, workloads, transactions, executor=executor)
    return Fig12Result(grids=grids)
