"""Fig. 12: transaction throughput, normalized to Base.

Expected shape: Base slowest (synchronous per-store log+data
persists); FWB above Base; MorLog above FWB (fewer log writes to wait
for); LAD high (no logs) but paying its Prepare-phase line flushes;
Silo highest, with the gap growing with core count because its commit
path has no persist ordering to queue behind.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.harness.executor import CellSpec, Executor, WorkloadSpec
from repro.harness.experiments import (
    REGISTRY,
    Axis,
    ExperimentSpec,
    NormalizedGridsResult,
    grids_from_campaign,
    run_experiment,
)
from repro.harness.runner import (
    DEFAULT_SCHEMES,
    DEFAULT_TRANSACTIONS,
    DEFAULT_WORKLOADS,
)


class Fig12Result(NormalizedGridsResult):
    """Normalized throughput per core count."""

    metric = "throughput_tx_per_sec"
    report_title = "Fig. 12 — normalized transaction throughput"
    chart_title = "fig12 — average normalized throughput"


SPEC = REGISTRY.register(
    ExperimentSpec(
        name="fig12",
        figure="Fig. 12",
        description="Transaction throughput, normalized to Base",
        params=dict(
            core_counts=(1, 2, 4, 8),
            schemes=DEFAULT_SCHEMES,
            workloads=DEFAULT_WORKLOADS,
            transactions=DEFAULT_TRANSACTIONS,
        ),
        smoke_params=dict(
            core_counts=(1,),
            schemes=("base", "silo"),
            workloads=("hash",),
            transactions=15,
        ),
        axes=lambda p: (
            Axis("cores", p["core_counts"]),
            Axis("workload", p["workloads"]),
            Axis("scheme", p["schemes"]),
        ),
        cell=lambda p, pt: CellSpec(
            workload=WorkloadSpec.make(
                pt["workload"], threads=pt["cores"], transactions=p["transactions"]
            ),
            scheme=pt["scheme"],
            cores=pt["cores"],
        ),
        assemble=lambda p, c: Fig12Result(grids=grids_from_campaign(c)),
    )
)


def run(
    core_counts: Sequence[int] = (1, 2, 4, 8),
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    transactions: int = DEFAULT_TRANSACTIONS,
    executor: Optional[Executor] = None,
) -> Fig12Result:
    """Run the full throughput grid as one executor campaign."""
    return run_experiment(
        SPEC,
        executor=executor,
        core_counts=tuple(core_counts),
        schemes=tuple(schemes),
        workloads=tuple(workloads),
        transactions=transactions,
    )
