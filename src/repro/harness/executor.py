"""Parallel experiment execution with content-addressed caching.

Every harness in this repo ultimately runs a Cartesian grid of
**cells** — fully specified, independent, deterministic simulations
(workload x scheme x cores x config, optionally a crash plan).  This
module is the one execution service they all share:

* :class:`CellSpec` pins down one cell completely, including the
  workload *recipe* (name + builder kwargs) rather than a built trace,
  so a spec is tiny, hashable and picklable;
* :class:`Executor` fans a list of cells out across ``jobs`` worker
  processes (``jobs=1`` is the exact in-process serial path), streams
  per-cell progress/ETA to stderr, isolates failures (a cell that
  raises is reported with its traceback while the campaign continues)
  and consults a :class:`~repro.harness.resultcache.ResultCache` so
  previously computed cells are served from disk;
* each worker process memoizes trace construction per
  ``(workload, threads, transactions, kwargs)``, so a trace is built
  once and replayed read-only under every scheme — never per cell;
* an optional :class:`~repro.harness.traceartifacts.TraceArtifactStore`
  lifts trace synthesis + columnar decode out of the per-process memo
  entirely: the parent builds each distinct pending recipe once per
  campaign, workers load the serialized flat columns zero-parse;
* small cells are dispatched in **batches** per pool task (auto-sized
  from a cheap cost estimate, or fixed via ``batch=N`` / ``--batch``),
  so litmus-scale campaigns stop paying one IPC round-trip per cell;
* the worker pool persists across ``run()`` calls, so a catalog sweep
  pays interpreter spawn + imports once, not once per campaign;
* the layer is **resilient**: every outcome carries a ``kind``
  (``ok`` / ``error`` / ``timeout`` / ``infra``) that distinguishes "the
  cell raised" from "the infrastructure died under it"; a per-cell
  wall-clock watchdog (``cell_timeout``) kills a hung worker and
  records a ``timeout``; bounded retries (``retries``) with
  deterministic, jitterless exponential backoff respawn a fresh pool
  after a broken one and re-run only the genuinely-unfinished cells —
  survivors are never blanket-failed; a
  :class:`~repro.harness.journal.CampaignJournal` checkpoints every
  completed outcome incrementally so an interrupted campaign resumes
  where it stopped; and SIGINT drains gracefully, raising
  :class:`CampaignInterrupted` with the journal flushed instead of a
  bare stack trace.  None of these options is part of a cell's content
  address: retries and timeouts change *whether and when* a cell runs,
  never what it computes.

Determinism: cells share no mutable state (each gets a fresh
:class:`~repro.sim.system.System`; the engine never mutates the trace;
all workload/crash randomness is seeded ``random.Random``; no
container iteration depends on interpreter hash salting — sets and
dict keys on simulated paths are ints/int-tuples, whose hashes are
unsalted).  A cell's :class:`~repro.sim.results.RunResult` is therefore
bit-identical whatever the jobs count or cache state, which is what
makes the cache sound and ``--jobs N`` a pure wall-clock optimization.
"""

from __future__ import annotations

import json
import os
import sys
import time
import traceback
import weakref
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError, ExecutionError
from repro.designs.scheme import SchemeRegistry
from repro.faults.oracle import FaultVerdict, check_fault_aware_durability
from repro.faults.plan import FaultPlan
from repro.harness.resultcache import MISS, ResultCache
from repro.obs import ObsConfig
from repro.sim.columnar import ColumnarEngine
from repro.sim.crash import CrashPlan
from repro.sim.engine import TransactionEngine
from repro.sim.system import System
from repro.sim.verify import check_atomic_durability
from repro.trace.trace import Trace
from repro.workloads.registry import build_workload


# ----------------------------------------------------------------------
# Cell specification
# ----------------------------------------------------------------------
def _canon_kwarg(value: Any) -> Any:
    """Canonicalize one workload kwarg value for spec identity.

    JSON round-trips turn tuples into lists; a rebuilt spec must be
    *equal and hashable*, so sequence values are normalized to tuples
    (recursively) on the way in.  Scalars pass through untouched.
    """
    if isinstance(value, (list, tuple)):
        return tuple(_canon_kwarg(v) for v in value)
    return value


@dataclass(frozen=True)
class WorkloadSpec:
    """Recipe for one trace: registry name plus builder arguments.

    ``kwargs`` is a sorted tuple of items so the spec stays hashable
    and its canonical encoding is order-independent.
    """

    name: str
    threads: int
    transactions: int
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls, name: str, threads: int, transactions: int, **kwargs: Any
    ) -> "WorkloadSpec":
        return cls(
            name,
            threads,
            transactions,
            tuple(sorted((k, _canon_kwarg(v)) for k, v in kwargs.items())),
        )

    def build(self) -> Trace:
        """Build (or fetch the per-process memoized) trace.

        When a trace-artifact store is active in this process, a memo
        miss consults it before synthesizing: workers of a store-backed
        executor load the parent's prebuilt artifact (flat columns +
        seeded decode) instead of rebuilding the workload.
        """
        trace = _TRACE_MEMO.get(self)
        if trace is None:
            store = _TRACE_STORE
            if store is not None:
                trace = store.build(self)
            else:
                trace = build_workload(
                    self.name,
                    threads=self.threads,
                    transactions=self.transactions,
                    **dict(self.kwargs),
                )
            _TRACE_MEMO[self] = trace
        return trace


#: Per-process trace memo: one build per (workload, threads,
#: transactions, kwargs), shared read-only across every scheme/cell
#: the process executes.  Worker processes persist across cells, so
#: the memo warms exactly like the serial path's.
_TRACE_MEMO: Dict[WorkloadSpec, Trace] = {}

#: Per-process trace-artifact store (L2 behind the memo), installed by
#: the executor in the parent and by :func:`_pool_init` in workers.
_TRACE_STORE = None

#: Per-process chaos plan (test/CI fault injection for the harness
#: itself — see :mod:`repro.harness.chaos`).  ``None`` in production.
_CHAOS = None


def _pool_init(
    store_root: Optional[str],
    fingerprint: Optional[str],
    chaos: Any = None,
) -> None:
    """Worker-process initializer: attach the campaign's trace store
    and (chaos self-tests only) the executor-level fault plan.

    The parent passes the store's *cache root* and its precomputed
    fingerprint, so workers neither rehash the source tree nor rebuild
    traces the parent already serialized.
    """
    global _TRACE_STORE, _CHAOS
    if store_root is not None:
        from repro.harness.traceartifacts import TraceArtifactStore

        _TRACE_STORE = TraceArtifactStore(store_root, fingerprint)
    _CHAOS = chaos


@dataclass(frozen=True)
class CellSpec:
    """One fully-specified experiment cell.

    ``scheme=None`` is a *trace-statistics* cell: no simulation runs,
    the outcome carries a :class:`TraceStats` (Fig. 4 uses this).
    ``config=None`` means the Table II configuration at ``cores``.
    ``verify=True`` additionally runs the atomic-durability oracle on
    the post-run system and stores its mismatches in the outcome —
    the *fault-aware* oracle when the cell carries a ``fault_plan``
    (its unattributed mismatches and silent corruptions are the
    failures), the exact clean oracle otherwise.
    ``repeats`` reruns the identical cell and records every wall time
    (the hot-path benchmark keeps the best).
    ``obs`` enables the observability layer for the cell; it is part
    of the content address (an obs-enabled outcome carries events and
    metrics a plain one does not, so they must not share a cache slot).
    ``engine`` selects the execution engine (``exact`` or the
    bit-identical batched ``columnar``); it is part of the content
    address too — not because the results may differ (they must not),
    but because a columnar outcome carries engine diagnostics and the
    cache must be able to answer "has this cell run under engine X"
    when the equivalence gate compares engines.
    ``capture_image=True`` additionally snapshots the post-recovery PM
    media over the trace's touched words into the outcome — the litmus
    oracle judges recovered images declaratively, outside the cell.
    It joins the content address (only when set, so every pre-existing
    cache entry keeps its address): a captured outcome carries data a
    plain one does not.
    """

    workload: WorkloadSpec
    scheme: Optional[str]
    cores: int
    config: Optional[SystemConfig] = None
    crash_plan: Optional[CrashPlan] = None
    fault_plan: Optional[FaultPlan] = None
    verify: bool = False
    repeats: int = 1
    obs: Optional[ObsConfig] = None
    engine: str = "exact"
    capture_image: bool = False

    def __post_init__(self) -> None:
        # Fail at campaign construction, not inside a worker: a typo'd
        # design name gets the did-you-mean ConfigError before any
        # cell is dispatched.
        if self.scheme is not None and self.scheme not in SchemeRegistry._schemes:
            raise SchemeRegistry.unknown_scheme_error(self.scheme)

    def effective_config(self) -> SystemConfig:
        return self.config if self.config is not None else SystemConfig.table2(self.cores)


@dataclass(frozen=True)
class TraceStats:
    """Lightweight trace metrics for ``scheme=None`` cells."""

    mean_write_size_bytes: float
    total_transactions: int
    total_ops: int


#: Outcome kinds a retry may fix: the infrastructure failed, not the
#: cell.  ``error`` is deterministic (the cell itself raised) and is
#: never retried.
RETRYABLE_KINDS = ("timeout", "infra")


@dataclass
class CellOutcome:
    """What one cell produced.

    Exactly one of ``result`` / ``error`` is set.  ``seconds`` holds
    the per-repeat wall times measured where the cell actually ran
    (cache hits replay the recorded times of the original run).

    ``kind`` classifies the outcome:

    * ``ok`` — the cell completed and ``result`` is set;
    * ``error`` — the cell's own code raised (deterministic; retrying
      would reproduce it bit-for-bit, so it is never retried);
    * ``timeout`` — the cell exceeded its wall-clock allowance and the
      watchdog killed its worker (retries exhausted, if any);
    * ``infra`` — the execution infrastructure died under the cell (a
      broken pool, a killed worker, a cancelled future) with every
      retry exhausted; the cell itself never misbehaved.

    ``attempts`` counts how many times the cell was dispatched;
    ``retry_reasons`` records, in order, why each earlier attempt was
    thrown away.  Resilience metadata never joins the content address:
    a retried cell's ``result`` is bit-identical to a first-try run's.
    """

    spec: CellSpec
    result: Any = None
    seconds: Tuple[float, ...] = ()
    #: Oracle failures: raw mismatches for clean verify cells, the
    #: *unattributed* mismatches for fault cells (damage an injected
    #: and reported fault explains is not a failure).
    mismatches: Optional[list] = None
    #: Full fault-aware oracle verdict, for cells with a fault plan.
    fault_verdict: Optional[FaultVerdict] = None
    error: Optional[str] = None
    cached: bool = False
    #: Engine diagnostics (``ColumnarEngine.engine_stats()``) for
    #: non-exact engines: fused/exact op counts and delegation reason.
    engine_stats: Optional[dict] = None
    #: Post-recovery PM image over the trace's touched words, for
    #: ``capture_image=True`` cells (the litmus oracle's input).
    image: Optional[Dict[int, int]] = None
    #: ``ok`` / ``error`` / ``timeout`` / ``infra`` (see class docs).
    kind: str = "ok"
    #: Times this cell was dispatched (1 = first try succeeded).
    attempts: int = 1
    #: Why each earlier attempt was discarded, oldest first.
    retry_reasons: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.error is None


def spec_key(spec: CellSpec) -> str:
    """Canonical JSON encoding of a cell spec, for content addressing.

    Uses the *effective* configuration so ``config=None`` and an
    explicit ``SystemConfig.table2(cores)`` address the same entry.
    """
    payload = {
        "workload": {
            "name": spec.workload.name,
            "threads": spec.workload.threads,
            "transactions": spec.workload.transactions,
            "kwargs": {k: v for k, v in spec.workload.kwargs},
        },
        "scheme": spec.scheme,
        "cores": spec.cores,
        "config": asdict(spec.effective_config()),
        "crash_plan": asdict(spec.crash_plan) if spec.crash_plan else None,
        "fault_plan": (
            spec.fault_plan.to_json_dict() if spec.fault_plan else None
        ),
        "verify": spec.verify,
        "repeats": spec.repeats,
        "obs": spec.obs.to_json_dict() if spec.obs is not None else None,
    }
    if spec.engine != "exact":
        # Emitted only for non-default engines so every pre-existing
        # cache entry (and golden manifest) keeps its address.
        payload["engine"] = spec.engine
    if spec.capture_image:
        # Same reasoning: default-off, emitted only when set.
        payload["capture_image"] = True
    return json.dumps(payload, sort_keys=True, default=repr)


# ----------------------------------------------------------------------
# Cell execution (runs in workers and on the jobs=1 path alike)
# ----------------------------------------------------------------------
def execute_cell(spec: CellSpec) -> CellOutcome:
    """Run one cell to completion; exceptions propagate to the caller."""
    trace = spec.workload.build()
    if spec.scheme is None:
        stats = TraceStats(
            mean_write_size_bytes=trace.mean_write_size_bytes(),
            total_transactions=trace.total_transactions,
            total_ops=sum(
                len(tx.ops) + 2
                for thread in trace.threads
                for tx in thread.transactions
            ),
        )
        return CellOutcome(spec=spec, result=stats)

    config = spec.effective_config()
    if spec.engine == "exact":
        engine_cls = TransactionEngine
    elif spec.engine == "columnar":
        engine_cls = ColumnarEngine
    else:
        raise ConfigError(
            f"unknown engine {spec.engine!r} (exact or columnar)"
        )
    seconds: List[float] = []
    result = None
    system = None
    engine = None
    for _ in range(max(1, spec.repeats)):
        system = System(config, obs=spec.obs)
        scheme = SchemeRegistry.create(spec.scheme, system)
        engine = engine_cls(
            system,
            scheme,
            trace,
            crash_plan=spec.crash_plan,
            fault_plan=spec.fault_plan,
        )
        started = time.perf_counter()
        result = engine.run()
        seconds.append(time.perf_counter() - started)
    engine_stats = (
        engine.engine_stats() if hasattr(engine, "engine_stats") else None
    )
    mismatches = None
    fault_verdict = None
    if spec.verify:
        if spec.fault_plan is not None:
            fault_verdict = check_fault_aware_durability(system, trace, result)
            mismatches = list(fault_verdict.unattributed)
        else:
            mismatches = check_atomic_durability(system, trace, result.committed)
    image = None
    if spec.capture_image:
        media = system.pm.media
        image = {
            addr: media.read_word(addr)
            for addr in sorted(trace.touched_words())
        }
    return CellOutcome(
        spec=spec,
        result=result,
        seconds=tuple(seconds),
        mismatches=mismatches,
        fault_verdict=fault_verdict,
        engine_stats=engine_stats,
        image=image,
    )


def _execute_safely(spec: CellSpec) -> CellOutcome:
    try:
        return execute_cell(spec)
    except (KeyboardInterrupt, SystemExit):
        # Interrupts drain at the campaign level (graceful SIGINT
        # handling); swallowing them here would mislabel a user's ^C
        # as a failed cell.
        raise
    except BaseException:
        return CellOutcome(
            spec=spec, error=traceback.format_exc(), kind="error"
        )


def _worker_batch(
    items: Sequence[Tuple[int, CellSpec, int]]
) -> List[Tuple[int, CellOutcome]]:
    """Run a batch of cells in one pool task (one IPC round-trip).

    Each item carries its campaign-level attempt number so the chaos
    plan (when one is installed) can target first attempts only —
    injected faults must converge under retry, like real ones.
    """
    results = []
    for index, spec, attempt in items:
        if _CHAOS is not None:
            # May kill this worker, hang, or raise a transient error;
            # raising here (outside _execute_safely) makes the whole
            # task fail, which the parent classifies as ``infra``.
            _CHAOS.preflight(spec_key(spec), attempt)
        results.append((index, _execute_safely(spec)))
    return results


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
#: Hard cap on cells per pool task: keeps a single task's result
#: payload (and the blast radius of a dying worker) bounded.
MAX_BATCH = 32

#: Auto-batching granularity: aim for about this many tasks per
#: worker, so stragglers still load-balance.
BATCHES_PER_WORKER = 4

#: ``cell_timeout="auto"``: a task's allowance is FACTOR x the slowest
#: observed seconds-per-cost-unit x the task's cost estimate, but never
#: below MIN seconds — generous enough that honest variance can't trip
#: it, tight enough that a truly hung worker is reaped within minutes.
AUTO_TIMEOUT_FACTOR = 50.0
AUTO_TIMEOUT_MIN = 30.0


@dataclass
class CampaignStats:
    """Cumulative accounting across every ``run()`` of one executor.

    ``failures`` counts final not-ok outcomes of any kind; ``errors``,
    ``timeouts_final`` and ``infra_final`` break them down.
    ``timeouts`` and ``infra`` count *events* (including ones a retry
    later repaired); ``retries`` counts cell re-dispatches.
    """

    cells: int = 0
    executed: int = 0
    cache_hits: int = 0
    journal_hits: int = 0
    failures: int = 0
    errors: int = 0
    timeouts: int = 0
    timeouts_final: int = 0
    infra: int = 0
    infra_final: int = 0
    retries: int = 0
    elapsed_seconds: float = 0.0


class CampaignInterrupted(ExecutionError):
    """Raised when a campaign drains after SIGINT.

    Carries everything the caller needs to report a *graceful* partial
    stop: the completed outcomes (all journaled/cached where stores are
    attached), the total cell count, and the journal that checkpoints
    them for ``--resume``.
    """

    def __init__(self, outcomes: List[CellOutcome], total: int, journal=None):
        self.outcomes = outcomes
        self.total = total
        self.journal = journal
        super().__init__(
            f"campaign interrupted: {len(outcomes)} of {total} cells "
            "completed (journal flushed — re-run with --resume to "
            "continue where it stopped)"
        )


class Executor:
    """Process-pool execution service for experiment cells.

    ``jobs=None`` uses :func:`os.cpu_count`; ``jobs=1`` runs every
    cell in the calling process, in order — the exact historical
    serial path (same trace memo, same per-cell code).  ``cache`` is a
    :class:`ResultCache` or ``None`` (no reads, no writes); ``fresh``
    recomputes every cell but still writes the cache.  ``progress``
    streams ``done/total`` + ETA lines to stderr.

    ``batch`` sets how many cells ride one pool task: ``None``
    auto-sizes batches from a cheap per-cell cost estimate (targeting
    a few tasks per worker, capped at :data:`MAX_BATCH` cells), an
    explicit ``N`` fixes the chunk size (``1`` restores one task per
    cell).  Batching only changes dispatch packaging — per-cell
    results, cache entries and outcome order are identical.

    ``trace_store`` attaches a
    :class:`~repro.harness.traceartifacts.TraceArtifactStore`: the
    parent prebuilds every distinct pending workload recipe once per
    ``run()``, and worker processes load the serialized artifacts
    instead of re-synthesizing traces.

    The worker pool **persists across** ``run()`` **calls**: a catalog
    sweep (``exp run --all``) reuses one set of warm worker processes
    instead of paying interpreter spawn + imports per campaign, and
    the workers' trace memos stay warm with them.  ``close()`` (or the
    context-manager form) shuts the pool down symmetrically — queued
    futures cancelled, worker processes reaped — and an executor that
    is garbage-collected or a pool whose worker died are cleaned up
    automatically.

    Resilience options (none joins a cell's content address):

    ``cell_timeout`` arms a wall-clock watchdog per pool task: a task
    running longer than ``cell_timeout x cells-in-task`` seconds has
    its worker killed and its cells recorded as ``timeout`` (or
    retried).  The string ``"auto"`` calibrates the allowance from the
    slowest completion observed this run (see :meth:`_batch_allowance`).
    Timeouts need process isolation, so ``jobs=1`` ignores them.

    ``retries`` re-dispatches cells whose outcome kind is retryable
    (``timeout``/``infra``) up to N extra times, with deterministic
    jitterless exponential backoff (``retry_backoff * 2**attempt``
    seconds) between rounds.  A broken pool is respawned fresh; cells
    that already finished are never re-run or blanket-failed.

    ``journal`` attaches a
    :class:`~repro.harness.journal.CampaignJournal`: completed
    outcomes (kinds ``ok``/``error``) are checkpointed incrementally
    and served back on a resumed run.

    ``chaos`` installs a :class:`~repro.harness.chaos.ChaosPlan` in
    every worker (self-test only: injected kills/hangs/transient
    raises must be invisible in final results).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        fresh: bool = False,
        progress: bool = False,
        batch: Optional[int] = None,
        trace_store=None,
        cell_timeout=None,
        retries: int = 0,
        retry_backoff: float = 0.5,
        journal=None,
        chaos=None,
    ) -> None:
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.cache = cache
        self.fresh = fresh
        self.progress = progress
        self.batch = batch
        self.trace_store = trace_store
        if cell_timeout is not None and cell_timeout != "auto":
            cell_timeout = float(cell_timeout)
            if cell_timeout <= 0:
                cell_timeout = None
        self.cell_timeout = cell_timeout
        self.retries = max(0, int(retries))
        self.retry_backoff = max(0.0, float(retry_backoff))
        self.journal = journal
        self.chaos = chaos
        self.stats = CampaignStats()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_finalizer = None
        #: Slowest observed seconds-per-cost-unit, for "auto" timeouts.
        self._auto_rate: Optional[float] = None

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent).

        Teardown is symmetric with startup: queued futures are
        cancelled *and* worker processes are joined, so no child ever
        outlives a ``with Executor(...)`` block."""
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def _kill_pool_workers(self) -> None:
        """Forcibly kill every worker, then reap the pool.

        Used by the watchdog (a hung cell cannot be cancelled, only
        killed) and the SIGINT drain.  The kill makes the subsequent
        ``shutdown(wait=True)`` return promptly."""
        pool = self._pool
        if pool is None:
            return
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.kill()
            except Exception:
                pass
        self.close()

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _get_pool(self) -> ProcessPoolExecutor:
        """The persistent pool, created lazily.  Worker processes are
        spawned on demand up to ``jobs``, initialized once with this
        executor's trace-store coordinates (and chaos plan, if any)."""
        if self._pool is None:
            store = self.trace_store
            initargs = (
                (str(store.root.parent), store.fingerprint)
                if store is not None
                else (None, None)
            ) + (self.chaos,)
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_pool_init,
                initargs=initargs,
            )
            self._pool_finalizer = weakref.finalize(
                self, self._pool.shutdown, wait=True, cancel_futures=True
            )
        return self._pool

    # ------------------------------------------------------------------
    def run(self, cells: Sequence[CellSpec]) -> List[CellOutcome]:
        """Execute every cell; outcomes are returned in input order.

        Raises :class:`CampaignInterrupted` on SIGINT/``^C``: the pool
        is torn down, completed outcomes stay checkpointed in the
        attached journal/cache, and the exception carries them for a
        graceful partial report instead of a bare stack trace.
        """
        started = time.monotonic()
        outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
        pending: List[int] = []
        journal = self.journal

        for index, spec in enumerate(cells):
            if self.fresh:
                pending.append(index)
                continue
            key = (
                spec_key(spec)
                if self.cache is not None or journal is not None
                else None
            )
            if self.cache is not None:
                hit = self.cache.get(key)
                if hit is not MISS and isinstance(hit, CellOutcome):
                    hit.cached = True
                    outcomes[index] = hit
                    self.stats.cache_hits += 1
                    continue
            if journal is not None:
                hit = journal.get(key)
                if hit is not MISS and isinstance(hit, CellOutcome):
                    hit.cached = True
                    outcomes[index] = hit
                    self.stats.journal_hits += 1
                    if not hit.ok:
                        self.stats.failures += 1
                    continue
            pending.append(index)

        served = len(cells) - len(pending)
        self.stats.cells += len(cells)
        done_live = 0

        if self.trace_store is not None and pending:
            self._prebuild_traces(cells, pending)

        #: index -> why each earlier attempt was discarded, in order.
        reasons: Dict[int, List[str]] = {}

        def finish(index: int, outcome: CellOutcome, attempt: int) -> None:
            nonlocal done_live
            outcome.attempts = attempt + 1
            outcome.retry_reasons = tuple(reasons.get(index, ()))
            outcomes[index] = outcome
            done_live += 1
            self.stats.executed += 1
            if not outcome.ok:
                self.stats.failures += 1
                if outcome.kind == "timeout":
                    self.stats.timeouts_final += 1
                elif outcome.kind == "infra":
                    self.stats.infra_final += 1
                else:
                    self.stats.errors += 1
            if outcome.ok and self.cache is not None:
                self.cache.put(spec_key(outcome.spec), outcome)
            if journal is not None and outcome.kind in ("ok", "error"):
                # Deterministic outcomes checkpoint; timeout/infra
                # describe the infrastructure and must re-run on resume.
                journal.put(spec_key(outcome.spec), outcome)
            self._report(
                served + done_live, len(cells), served, started, done_live, len(pending)
            )
            interrupt_after = getattr(self.chaos, "interrupt_after", None)
            if interrupt_after is not None and done_live >= interrupt_after:
                # Parent-side chaos: simulate a SIGINT landing mid-
                # campaign, after N completions (drain-path self-test).
                raise KeyboardInterrupt

        try:
            attempt = 0
            unfinished = list(pending)
            while unfinished:
                retryable: List[Tuple[int, str, str]] = []

                def defer(index: int, kind: str, reason: str) -> None:
                    """Record a retry candidate: this attempt produced
                    no deterministic outcome for the cell."""
                    retryable.append((index, kind, reason))
                    if kind == "timeout":
                        self.stats.timeouts += 1
                    else:
                        self.stats.infra += 1

                if self.jobs == 1 or len(unfinished) <= 1:
                    for index in unfinished:
                        finish(index, _execute_safely(cells[index]), attempt)
                else:
                    self._run_attempt(cells, unfinished, attempt, finish, defer)

                if not retryable:
                    break
                if attempt >= self.retries:
                    # Out of budget: the retryable kinds become final
                    # outcomes, attributed with every failed attempt.
                    for index, kind, reason in retryable:
                        finish(
                            index,
                            CellOutcome(
                                spec=cells[index], error=reason, kind=kind
                            ),
                            attempt,
                        )
                    break
                for index, kind, reason in retryable:
                    reasons.setdefault(index, []).append(
                        f"attempt {attempt + 1} {kind}: "
                        f"{reason.strip().splitlines()[-1]}"
                    )
                self.stats.retries += len(retryable)
                attempt += 1
                if self.retry_backoff:
                    # Deterministic, jitterless exponential backoff:
                    # identical schedules on identical campaigns.
                    time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
                unfinished = [index for index, _, _ in retryable]
        except KeyboardInterrupt:
            # Graceful drain: kill the workers (a second ^C must not be
            # needed), keep every completed outcome — all checkpointed
            # already — and hand the caller a partial campaign.
            self._kill_pool_workers()
            self.stats.elapsed_seconds += time.monotonic() - started
            completed = [o for o in outcomes if o is not None]
            raise CampaignInterrupted(
                completed, len(cells), journal=journal
            ) from None

        self.stats.elapsed_seconds += time.monotonic() - started
        self._report(
            len(cells), len(cells), served, started, done_live, len(pending), final=True
        )
        return [o for o in outcomes if o is not None]

    # ------------------------------------------------------------------
    def _prebuild_traces(self, cells, pending) -> None:
        """Build every distinct pending workload recipe once, in the
        parent, so workers (and the serial path) only ever load
        artifacts.  Installs the store as this process's L2 too."""
        global _TRACE_STORE
        _TRACE_STORE = store = self.trace_store
        seen = set()
        for index in pending:
            wspec = cells[index].workload
            if wspec in seen:
                continue
            seen.add(wspec)
            memo = _TRACE_MEMO.get(wspec)
            if memo is not None:
                # Already built in this process (e.g. an earlier plain
                # run): serialize it so workers can still load it.
                store.ensure(wspec, memo)
            else:
                _TRACE_MEMO[wspec] = store.build(wspec)

    # ------------------------------------------------------------------
    def _cell_cost(self, spec: CellSpec) -> int:
        """Cheap relative cost estimate: ops scale with threads x
        transactions, wall time with repeats."""
        w = spec.workload
        return max(1, w.threads * w.transactions * max(1, spec.repeats))

    def _plan_batches(self, cells, pending) -> List[List[int]]:
        """Chunk pending cell indices into per-task batches.

        Auto mode packs consecutive cells until a batch carries about
        ``total_cost / (workers * BATCHES_PER_WORKER)`` — big cells get
        their own task, litmus-sized cells share one — so every worker
        still sees several tasks for load balancing.
        """
        if self.batch is not None:
            size = max(1, self.batch)
            return [
                list(pending[i : i + size])
                for i in range(0, len(pending), size)
            ]
        costs = [self._cell_cost(cells[index]) for index in pending]
        workers = max(1, min(self.jobs, len(pending)))
        target = max(1, sum(costs) // (workers * BATCHES_PER_WORKER))
        batches: List[List[int]] = []
        current: List[int] = []
        current_cost = 0
        for index, cost in zip(pending, costs):
            current.append(index)
            current_cost += cost
            if current_cost >= target or len(current) >= MAX_BATCH:
                batches.append(current)
                current = []
                current_cost = 0
        if current:
            batches.append(current)
        return batches

    # ------------------------------------------------------------------
    def _batch_allowance(self, cost: int, count: int) -> Optional[float]:
        """Wall-clock allowance for one pool task, or ``None`` when the
        watchdog has nothing to compare against yet (auto mode before
        the first completion calibrates it)."""
        if self.cell_timeout == "auto":
            if self._auto_rate is None:
                return None
            return max(
                AUTO_TIMEOUT_MIN,
                AUTO_TIMEOUT_FACTOR * self._auto_rate * cost,
            )
        return float(self.cell_timeout) * count

    def _run_attempt(self, cells, unfinished, attempt, finish, defer) -> None:
        """One pool dispatch round over ``unfinished`` cell indices.

        Completed cells flow to ``finish``; cells whose task timed out
        or whose infrastructure failed flow to ``defer`` (the caller's
        retry loop decides their fate).  Exactly one of the two is
        called per index, every round.
        """
        batches = self._plan_batches(cells, unfinished)
        pool = self._get_pool()
        broken = False
        watchdog = self.cell_timeout is not None
        futures: Dict[Any, List[int]] = {}
        meta: Dict[Any, Dict[str, Any]] = {}
        for batch in batches:
            try:
                future = pool.submit(
                    _worker_batch,
                    [(index, cells[index], attempt) for index in batch],
                )
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException:
                # The pool itself is unusable (a worker died and broke
                # it mid-campaign): infrastructure, hence retryable.
                broken = True
                reason = traceback.format_exc()
                for index in batch:
                    defer(index, "infra", reason)
                continue
            futures[future] = batch
            meta[future] = {
                "started": None,
                "cost": sum(self._cell_cost(cells[i]) for i in batch),
                "count": len(batch),
            }
        remaining = set(futures)
        timed_out = set()
        while remaining:
            tick = 0.1 if watchdog else None
            done, _ = wait(remaining, timeout=tick, return_when=FIRST_COMPLETED)
            now = time.monotonic()
            for future in done:
                remaining.discard(future)
                batch = futures[future]
                task = meta[future]
                if future in timed_out:
                    # Already deferred as timeout when its worker was
                    # killed; its BrokenProcessPool echo is expected.
                    continue
                try:
                    results = future.result()
                except (KeyboardInterrupt, SystemExit):
                    raise
                except CancelledError:
                    broken = True
                    for index in batch:
                        defer(
                            index,
                            "infra",
                            "task cancelled while the pool was torn down",
                        )
                except BrokenExecutor:
                    broken = True
                    reason = traceback.format_exc()
                    for index in batch:
                        defer(index, "infra", reason)
                except BaseException:
                    # Anything else a pool task can raise (an unpickl-
                    # able payload, a chaos-injected transient) is an
                    # infrastructure event too: the cell never produced
                    # a deterministic outcome.
                    reason = traceback.format_exc()
                    for index in batch:
                        defer(index, "infra", reason)
                else:
                    if task["started"] is not None:
                        rate = (now - task["started"]) / max(1, task["cost"])
                        if rate > (self._auto_rate or 0.0):
                            self._auto_rate = rate
                    for index, outcome in results:
                        finish(index, outcome, attempt)
            if watchdog and remaining:
                hung = []
                for future in remaining:
                    task = meta[future]
                    if task["started"] is None:
                        if future.running():
                            task["started"] = now
                        continue
                    allowance = self._batch_allowance(
                        task["cost"], task["count"]
                    )
                    if (
                        allowance is not None
                        and now - task["started"] > allowance
                    ):
                        hung.append((future, allowance))
                if hung:
                    broken = True
                    for future, allowance in hung:
                        timed_out.add(future)
                        for index in futures[future]:
                            defer(
                                index,
                                "timeout",
                                f"cell exceeded its {allowance:.1f}s "
                                "wall-clock allowance; worker killed",
                            )
                    # A hung task cannot be cancelled, only killed.
                    # Killing the workers breaks every other in-flight
                    # future; they resolve on the next loop passes and
                    # are deferred as ``infra`` (retryable) above.
                    self._kill_pool_workers()
        if broken:
            # Never reuse a pool that lost a worker: the next attempt
            # (or the next run()) lazily spawns a fresh one.
            self.close()

    # ------------------------------------------------------------------
    def _report(
        self,
        done: int,
        total: int,
        hits: int,
        started: float,
        done_live: int,
        total_live: int,
        final: bool = False,
    ) -> None:
        if not self.progress:
            return
        now = time.monotonic()
        if not final and now - getattr(self, "_last_report", 0.0) < 0.5:
            return
        if final and getattr(self, "_last_done", None) == (started, done):
            return
        self._last_report = now
        self._last_done = (started, done)
        elapsed = now - started
        if done_live and total_live > done_live:
            eta = elapsed / done_live * (total_live - done_live)
            eta_text = f" | eta {eta:5.1f}s"
        else:
            eta_text = ""
        failures = self.stats.failures
        fail_text = f" | {failures} FAILED" if failures else ""
        print(
            f"[executor] {done}/{total} cells | {hits} cached | "
            f"{self.jobs} jobs | {elapsed:5.1f}s{eta_text}{fail_text}",
            file=sys.stderr,
            flush=True,
        )


def run_cells(
    cells: Sequence[CellSpec],
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    fresh: bool = False,
    progress: bool = False,
) -> List[CellOutcome]:
    """One-shot convenience wrapper around :class:`Executor`."""
    return Executor(jobs=jobs, cache=cache, fresh=fresh, progress=progress).run(cells)


def aggregate_outcome_metrics(outcomes: Sequence[CellOutcome]):
    """Merge the obs metrics of every successful outcome in a campaign.

    Returns one :class:`~repro.obs.MetricsRegistry` (histograms merged
    key-wise, phase cycles summed) or ``None`` when no outcome carried
    metrics — cells run without ``obs`` contribute nothing.
    """
    from repro.obs import aggregate_metrics

    return aggregate_metrics(
        getattr(o.result, "metrics", None) for o in outcomes if o.ok
    )


def raise_on_failures(outcomes: Sequence[CellOutcome]) -> None:
    """Raise :class:`ExecutionError` if any cell failed.

    The message names every failed cell and includes the first few
    tracebacks verbatim, so a campaign failure is actionable without
    rerunning serially.
    """
    failed = [o for o in outcomes if not o.ok]
    if not failed:
        return
    lines = [f"{len(failed)} of {len(outcomes)} cells failed:"]
    for outcome in failed:
        spec = outcome.spec
        lines.append(
            f"  - {spec.workload.name}/{spec.scheme} @ {spec.cores} core(s)"
            f" [{outcome.kind}]"
        )
    for outcome in failed[:3]:
        lines.append("")
        lines.append(outcome.error.rstrip())
    raise ExecutionError("\n".join(lines))


# ----------------------------------------------------------------------
# Cell-spec serialization and one-line repro commands
# ----------------------------------------------------------------------
def cell_spec_to_json(spec: CellSpec) -> str:
    """Serialize one cell to a compact JSON string that
    :func:`cell_spec_from_json` reconstructs exactly.

    Only cells with the default (Table II) configuration are
    serializable — the crash harnesses only ever emit those, and it
    keeps the repro command a single self-contained line.
    """
    if spec.config is not None:
        raise ConfigError(
            "only default-config cells serialize to a repro command"
        )
    payload = {
        "workload": {
            "name": spec.workload.name,
            "threads": spec.workload.threads,
            "transactions": spec.workload.transactions,
            "kwargs": {k: v for k, v in spec.workload.kwargs},
        },
        "scheme": spec.scheme,
        "cores": spec.cores,
        "crash_plan": asdict(spec.crash_plan) if spec.crash_plan else None,
        "fault_plan": (
            spec.fault_plan.to_json_dict() if spec.fault_plan else None
        ),
        "verify": spec.verify,
        "repeats": spec.repeats,
        "obs": spec.obs.to_json_dict() if spec.obs is not None else None,
    }
    # Non-default fields are emitted only when set, keeping historical
    # replay commands parseable and byte-stable.
    if spec.engine != "exact":
        payload["engine"] = spec.engine
    if spec.capture_image:
        payload["capture_image"] = True
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cell_spec_from_json(text: str) -> CellSpec:
    """Rebuild the cell a repro command names."""
    data = json.loads(text)
    w = data["workload"]
    crash = data.get("crash_plan")
    fault = data.get("fault_plan")
    return CellSpec(
        workload=WorkloadSpec.make(
            w["name"], w["threads"], w["transactions"], **w.get("kwargs", {})
        ),
        scheme=data["scheme"],
        cores=data["cores"],
        crash_plan=(
            CrashPlan(
                at_op=crash.get("at_op"),
                at_commit_of=(
                    tuple(crash["at_commit_of"])
                    if crash.get("at_commit_of") is not None
                    else None
                ),
            )
            if crash
            else None
        ),
        fault_plan=FaultPlan.from_json_dict(fault) if fault else None,
        verify=data.get("verify", False),
        repeats=data.get("repeats", 1),
        obs=ObsConfig.from_json_dict(data.get("obs")),
        engine=data.get("engine", "exact"),
        capture_image=data.get("capture_image", False),
    )


def repro_command(spec: CellSpec) -> str:
    """The copy-pasteable command replaying one cell in isolation.

    Printed whenever a randomized crashtest/faultsweep cell fails, so
    the failure is debuggable without re-running the whole campaign:
    the command re-executes exactly that (workload, scheme, crash
    point, fault plan) with ``--jobs 1`` and prints the verdict.
    """
    encoded = cell_spec_to_json(spec).replace("'", "'\\''")
    return (
        "PYTHONPATH=src python -m repro.harness replay "
        f"--jobs 1 --spec '{encoded}'"
    )
