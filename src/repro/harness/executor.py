"""Parallel experiment execution with content-addressed caching.

Every harness in this repo ultimately runs a Cartesian grid of
**cells** — fully specified, independent, deterministic simulations
(workload x scheme x cores x config, optionally a crash plan).  This
module is the one execution service they all share:

* :class:`CellSpec` pins down one cell completely, including the
  workload *recipe* (name + builder kwargs) rather than a built trace,
  so a spec is tiny, hashable and picklable;
* :class:`Executor` fans a list of cells out across ``jobs`` worker
  processes (``jobs=1`` is the exact in-process serial path), streams
  per-cell progress/ETA to stderr, isolates failures (a cell that
  raises is reported with its traceback while the campaign continues)
  and consults a :class:`~repro.harness.resultcache.ResultCache` so
  previously computed cells are served from disk;
* each worker process memoizes trace construction per
  ``(workload, threads, transactions, kwargs)``, so a trace is built
  once and replayed read-only under every scheme — never per cell;
* an optional :class:`~repro.harness.traceartifacts.TraceArtifactStore`
  lifts trace synthesis + columnar decode out of the per-process memo
  entirely: the parent builds each distinct pending recipe once per
  campaign, workers load the serialized flat columns zero-parse;
* small cells are dispatched in **batches** per pool task (auto-sized
  from a cheap cost estimate, or fixed via ``batch=N`` / ``--batch``),
  so litmus-scale campaigns stop paying one IPC round-trip per cell;
* the worker pool persists across ``run()`` calls, so a catalog sweep
  pays interpreter spawn + imports once, not once per campaign.

Determinism: cells share no mutable state (each gets a fresh
:class:`~repro.sim.system.System`; the engine never mutates the trace;
all workload/crash randomness is seeded ``random.Random``; no
container iteration depends on interpreter hash salting — sets and
dict keys on simulated paths are ints/int-tuples, whose hashes are
unsalted).  A cell's :class:`~repro.sim.results.RunResult` is therefore
bit-identical whatever the jobs count or cache state, which is what
makes the cache sound and ``--jobs N`` a pure wall-clock optimization.
"""

from __future__ import annotations

import json
import os
import sys
import time
import traceback
import weakref
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError, ExecutionError
from repro.designs.scheme import SchemeRegistry
from repro.faults.oracle import FaultVerdict, check_fault_aware_durability
from repro.faults.plan import FaultPlan
from repro.harness.resultcache import MISS, ResultCache
from repro.obs import ObsConfig
from repro.sim.columnar import ColumnarEngine
from repro.sim.crash import CrashPlan
from repro.sim.engine import TransactionEngine
from repro.sim.system import System
from repro.sim.verify import check_atomic_durability
from repro.trace.trace import Trace
from repro.workloads.registry import build_workload


# ----------------------------------------------------------------------
# Cell specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """Recipe for one trace: registry name plus builder arguments.

    ``kwargs`` is a sorted tuple of items so the spec stays hashable
    and its canonical encoding is order-independent.
    """

    name: str
    threads: int
    transactions: int
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls, name: str, threads: int, transactions: int, **kwargs: Any
    ) -> "WorkloadSpec":
        return cls(name, threads, transactions, tuple(sorted(kwargs.items())))

    def build(self) -> Trace:
        """Build (or fetch the per-process memoized) trace.

        When a trace-artifact store is active in this process, a memo
        miss consults it before synthesizing: workers of a store-backed
        executor load the parent's prebuilt artifact (flat columns +
        seeded decode) instead of rebuilding the workload.
        """
        trace = _TRACE_MEMO.get(self)
        if trace is None:
            store = _TRACE_STORE
            if store is not None:
                trace = store.build(self)
            else:
                trace = build_workload(
                    self.name,
                    threads=self.threads,
                    transactions=self.transactions,
                    **dict(self.kwargs),
                )
            _TRACE_MEMO[self] = trace
        return trace


#: Per-process trace memo: one build per (workload, threads,
#: transactions, kwargs), shared read-only across every scheme/cell
#: the process executes.  Worker processes persist across cells, so
#: the memo warms exactly like the serial path's.
_TRACE_MEMO: Dict[WorkloadSpec, Trace] = {}

#: Per-process trace-artifact store (L2 behind the memo), installed by
#: the executor in the parent and by :func:`_pool_init` in workers.
_TRACE_STORE = None


def _pool_init(store_root: Optional[str], fingerprint: Optional[str]) -> None:
    """Worker-process initializer: attach the campaign's trace store.

    The parent passes the store's *cache root* and its precomputed
    fingerprint, so workers neither rehash the source tree nor rebuild
    traces the parent already serialized.
    """
    global _TRACE_STORE
    if store_root is not None:
        from repro.harness.traceartifacts import TraceArtifactStore

        _TRACE_STORE = TraceArtifactStore(store_root, fingerprint)


@dataclass(frozen=True)
class CellSpec:
    """One fully-specified experiment cell.

    ``scheme=None`` is a *trace-statistics* cell: no simulation runs,
    the outcome carries a :class:`TraceStats` (Fig. 4 uses this).
    ``config=None`` means the Table II configuration at ``cores``.
    ``verify=True`` additionally runs the atomic-durability oracle on
    the post-run system and stores its mismatches in the outcome —
    the *fault-aware* oracle when the cell carries a ``fault_plan``
    (its unattributed mismatches and silent corruptions are the
    failures), the exact clean oracle otherwise.
    ``repeats`` reruns the identical cell and records every wall time
    (the hot-path benchmark keeps the best).
    ``obs`` enables the observability layer for the cell; it is part
    of the content address (an obs-enabled outcome carries events and
    metrics a plain one does not, so they must not share a cache slot).
    ``engine`` selects the execution engine (``exact`` or the
    bit-identical batched ``columnar``); it is part of the content
    address too — not because the results may differ (they must not),
    but because a columnar outcome carries engine diagnostics and the
    cache must be able to answer "has this cell run under engine X"
    when the equivalence gate compares engines.
    """

    workload: WorkloadSpec
    scheme: Optional[str]
    cores: int
    config: Optional[SystemConfig] = None
    crash_plan: Optional[CrashPlan] = None
    fault_plan: Optional[FaultPlan] = None
    verify: bool = False
    repeats: int = 1
    obs: Optional[ObsConfig] = None
    engine: str = "exact"

    def effective_config(self) -> SystemConfig:
        return self.config if self.config is not None else SystemConfig.table2(self.cores)


@dataclass(frozen=True)
class TraceStats:
    """Lightweight trace metrics for ``scheme=None`` cells."""

    mean_write_size_bytes: float
    total_transactions: int
    total_ops: int


@dataclass
class CellOutcome:
    """What one cell produced.

    Exactly one of ``result`` / ``error`` is set.  ``seconds`` holds
    the per-repeat wall times measured where the cell actually ran
    (cache hits replay the recorded times of the original run).
    """

    spec: CellSpec
    result: Any = None
    seconds: Tuple[float, ...] = ()
    #: Oracle failures: raw mismatches for clean verify cells, the
    #: *unattributed* mismatches for fault cells (damage an injected
    #: and reported fault explains is not a failure).
    mismatches: Optional[list] = None
    #: Full fault-aware oracle verdict, for cells with a fault plan.
    fault_verdict: Optional[FaultVerdict] = None
    error: Optional[str] = None
    cached: bool = False
    #: Engine diagnostics (``ColumnarEngine.engine_stats()``) for
    #: non-exact engines: fused/exact op counts and delegation reason.
    engine_stats: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def spec_key(spec: CellSpec) -> str:
    """Canonical JSON encoding of a cell spec, for content addressing.

    Uses the *effective* configuration so ``config=None`` and an
    explicit ``SystemConfig.table2(cores)`` address the same entry.
    """
    payload = {
        "workload": {
            "name": spec.workload.name,
            "threads": spec.workload.threads,
            "transactions": spec.workload.transactions,
            "kwargs": {k: v for k, v in spec.workload.kwargs},
        },
        "scheme": spec.scheme,
        "cores": spec.cores,
        "config": asdict(spec.effective_config()),
        "crash_plan": asdict(spec.crash_plan) if spec.crash_plan else None,
        "fault_plan": (
            spec.fault_plan.to_json_dict() if spec.fault_plan else None
        ),
        "verify": spec.verify,
        "repeats": spec.repeats,
        "obs": spec.obs.to_json_dict() if spec.obs is not None else None,
    }
    if spec.engine != "exact":
        # Emitted only for non-default engines so every pre-existing
        # cache entry (and golden manifest) keeps its address.
        payload["engine"] = spec.engine
    return json.dumps(payload, sort_keys=True, default=repr)


# ----------------------------------------------------------------------
# Cell execution (runs in workers and on the jobs=1 path alike)
# ----------------------------------------------------------------------
def execute_cell(spec: CellSpec) -> CellOutcome:
    """Run one cell to completion; exceptions propagate to the caller."""
    trace = spec.workload.build()
    if spec.scheme is None:
        stats = TraceStats(
            mean_write_size_bytes=trace.mean_write_size_bytes(),
            total_transactions=trace.total_transactions,
            total_ops=sum(
                len(tx.ops) + 2
                for thread in trace.threads
                for tx in thread.transactions
            ),
        )
        return CellOutcome(spec=spec, result=stats)

    config = spec.effective_config()
    if spec.engine == "exact":
        engine_cls = TransactionEngine
    elif spec.engine == "columnar":
        engine_cls = ColumnarEngine
    else:
        raise ConfigError(
            f"unknown engine {spec.engine!r} (exact or columnar)"
        )
    seconds: List[float] = []
    result = None
    system = None
    engine = None
    for _ in range(max(1, spec.repeats)):
        system = System(config, obs=spec.obs)
        scheme = SchemeRegistry.create(spec.scheme, system)
        engine = engine_cls(
            system,
            scheme,
            trace,
            crash_plan=spec.crash_plan,
            fault_plan=spec.fault_plan,
        )
        started = time.perf_counter()
        result = engine.run()
        seconds.append(time.perf_counter() - started)
    engine_stats = (
        engine.engine_stats() if hasattr(engine, "engine_stats") else None
    )
    mismatches = None
    fault_verdict = None
    if spec.verify:
        if spec.fault_plan is not None:
            fault_verdict = check_fault_aware_durability(system, trace, result)
            mismatches = list(fault_verdict.unattributed)
        else:
            mismatches = check_atomic_durability(system, trace, result.committed)
    return CellOutcome(
        spec=spec,
        result=result,
        seconds=tuple(seconds),
        mismatches=mismatches,
        fault_verdict=fault_verdict,
        engine_stats=engine_stats,
    )


def _execute_safely(spec: CellSpec) -> CellOutcome:
    try:
        return execute_cell(spec)
    except BaseException:
        return CellOutcome(spec=spec, error=traceback.format_exc())


def _worker(item: Tuple[int, CellSpec]) -> Tuple[int, CellOutcome]:
    index, spec = item
    return index, _execute_safely(spec)


def _worker_batch(
    items: Sequence[Tuple[int, CellSpec]]
) -> List[Tuple[int, CellOutcome]]:
    """Run a batch of cells in one pool task (one IPC round-trip)."""
    return [(index, _execute_safely(spec)) for index, spec in items]


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
#: Hard cap on cells per pool task: keeps a single task's result
#: payload (and the blast radius of a dying worker) bounded.
MAX_BATCH = 32

#: Auto-batching granularity: aim for about this many tasks per
#: worker, so stragglers still load-balance.
BATCHES_PER_WORKER = 4


@dataclass
class CampaignStats:
    """Cumulative accounting across every ``run()`` of one executor."""

    cells: int = 0
    executed: int = 0
    cache_hits: int = 0
    failures: int = 0
    elapsed_seconds: float = 0.0


class Executor:
    """Process-pool execution service for experiment cells.

    ``jobs=None`` uses :func:`os.cpu_count`; ``jobs=1`` runs every
    cell in the calling process, in order — the exact historical
    serial path (same trace memo, same per-cell code).  ``cache`` is a
    :class:`ResultCache` or ``None`` (no reads, no writes); ``fresh``
    recomputes every cell but still writes the cache.  ``progress``
    streams ``done/total`` + ETA lines to stderr.

    ``batch`` sets how many cells ride one pool task: ``None``
    auto-sizes batches from a cheap per-cell cost estimate (targeting
    a few tasks per worker, capped at :data:`MAX_BATCH` cells), an
    explicit ``N`` fixes the chunk size (``1`` restores one task per
    cell).  Batching only changes dispatch packaging — per-cell
    results, cache entries and outcome order are identical.

    ``trace_store`` attaches a
    :class:`~repro.harness.traceartifacts.TraceArtifactStore`: the
    parent prebuilds every distinct pending workload recipe once per
    ``run()``, and worker processes load the serialized artifacts
    instead of re-synthesizing traces.

    The worker pool **persists across** ``run()`` **calls**: a catalog
    sweep (``exp run --all``) reuses one set of warm worker processes
    instead of paying interpreter spawn + imports per campaign, and
    the workers' trace memos stay warm with them.  ``close()`` (or the
    context-manager form) shuts the pool down; an executor that is
    garbage-collected or a pool whose worker died are cleaned up
    automatically.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        fresh: bool = False,
        progress: bool = False,
        batch: Optional[int] = None,
        trace_store=None,
    ) -> None:
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.cache = cache
        self.fresh = fresh
        self.progress = progress
        self.batch = batch
        self.trace_store = trace_store
        self.stats = CampaignStats()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_finalizer = None

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _get_pool(self) -> ProcessPoolExecutor:
        """The persistent pool, created lazily.  Worker processes are
        spawned on demand up to ``jobs``, initialized once with this
        executor's trace-store coordinates."""
        if self._pool is None:
            store = self.trace_store
            initargs = (
                (str(store.root.parent), store.fingerprint)
                if store is not None
                else (None, None)
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_pool_init,
                initargs=initargs,
            )
            self._pool_finalizer = weakref.finalize(
                self, self._pool.shutdown, wait=False
            )
        return self._pool

    # ------------------------------------------------------------------
    def run(self, cells: Sequence[CellSpec]) -> List[CellOutcome]:
        """Execute every cell; outcomes are returned in input order."""
        started = time.monotonic()
        outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
        pending: List[int] = []

        for index, spec in enumerate(cells):
            if self.cache is not None and not self.fresh:
                hit = self.cache.get(spec_key(spec))
                if hit is not MISS and isinstance(hit, CellOutcome):
                    hit.cached = True
                    outcomes[index] = hit
                    continue
            pending.append(index)

        hits = len(cells) - len(pending)
        self.stats.cells += len(cells)
        self.stats.cache_hits += hits
        done_live = 0

        if self.trace_store is not None and pending:
            self._prebuild_traces(cells, pending)

        def finish(index: int, outcome: CellOutcome) -> None:
            nonlocal done_live
            outcomes[index] = outcome
            done_live += 1
            self.stats.executed += 1
            if not outcome.ok:
                self.stats.failures += 1
            elif self.cache is not None:
                self.cache.put(spec_key(outcome.spec), outcome)
            self._report(hits + done_live, len(cells), hits, started, done_live, len(pending))

        if self.jobs == 1 or len(pending) <= 1:
            for index in pending:
                finish(index, _execute_safely(cells[index]))
        else:
            self._run_pool(cells, pending, finish)

        self.stats.elapsed_seconds += time.monotonic() - started
        self._report(
            len(cells), len(cells), hits, started, done_live, len(pending), final=True
        )
        return [o for o in outcomes if o is not None]

    # ------------------------------------------------------------------
    def _prebuild_traces(self, cells, pending) -> None:
        """Build every distinct pending workload recipe once, in the
        parent, so workers (and the serial path) only ever load
        artifacts.  Installs the store as this process's L2 too."""
        global _TRACE_STORE
        _TRACE_STORE = store = self.trace_store
        seen = set()
        for index in pending:
            wspec = cells[index].workload
            if wspec in seen:
                continue
            seen.add(wspec)
            memo = _TRACE_MEMO.get(wspec)
            if memo is not None:
                # Already built in this process (e.g. an earlier plain
                # run): serialize it so workers can still load it.
                store.ensure(wspec, memo)
            else:
                _TRACE_MEMO[wspec] = store.build(wspec)

    # ------------------------------------------------------------------
    def _cell_cost(self, spec: CellSpec) -> int:
        """Cheap relative cost estimate: ops scale with threads x
        transactions, wall time with repeats."""
        w = spec.workload
        return max(1, w.threads * w.transactions * max(1, spec.repeats))

    def _plan_batches(self, cells, pending) -> List[List[int]]:
        """Chunk pending cell indices into per-task batches.

        Auto mode packs consecutive cells until a batch carries about
        ``total_cost / (workers * BATCHES_PER_WORKER)`` — big cells get
        their own task, litmus-sized cells share one — so every worker
        still sees several tasks for load balancing.
        """
        if self.batch is not None:
            size = max(1, self.batch)
            return [
                list(pending[i : i + size])
                for i in range(0, len(pending), size)
            ]
        costs = [self._cell_cost(cells[index]) for index in pending]
        workers = max(1, min(self.jobs, len(pending)))
        target = max(1, sum(costs) // (workers * BATCHES_PER_WORKER))
        batches: List[List[int]] = []
        current: List[int] = []
        current_cost = 0
        for index, cost in zip(pending, costs):
            current.append(index)
            current_cost += cost
            if current_cost >= target or len(current) >= MAX_BATCH:
                batches.append(current)
                current = []
                current_cost = 0
        if current:
            batches.append(current)
        return batches

    # ------------------------------------------------------------------
    def _run_pool(self, cells, pending, finish) -> None:
        batches = self._plan_batches(cells, pending)
        pool = self._get_pool()
        broken = False
        futures = {}
        for batch in batches:
            try:
                future = pool.submit(
                    _worker_batch, [(index, cells[index]) for index in batch]
                )
            except BaseException:
                # The pool itself is unusable (a worker died and broke
                # it mid-campaign): report against the batch's cells
                # and keep going so every cell gets an outcome.
                broken = True
                tb = traceback.format_exc()
                for index in batch:
                    finish(index, CellOutcome(spec=cells[index], error=tb))
                continue
            futures[future] = batch
        remaining = set(futures)
        while remaining:
            done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for future in done:
                batch = futures[future]
                try:
                    results = future.result()
                except BaseException:
                    # The worker process died (not a Python-level cell
                    # failure): report it against every cell of this
                    # batch and keep draining the rest.
                    broken = True
                    tb = traceback.format_exc()
                    results = [
                        (index, CellOutcome(spec=cells[index], error=tb))
                        for index in batch
                    ]
                for index, outcome in results:
                    finish(index, outcome)
        if broken:
            # Never reuse a pool that lost a worker: the next run()
            # lazily spawns a fresh one.
            self.close()

    # ------------------------------------------------------------------
    def _report(
        self,
        done: int,
        total: int,
        hits: int,
        started: float,
        done_live: int,
        total_live: int,
        final: bool = False,
    ) -> None:
        if not self.progress:
            return
        now = time.monotonic()
        if not final and now - getattr(self, "_last_report", 0.0) < 0.5:
            return
        if final and getattr(self, "_last_done", None) == (started, done):
            return
        self._last_report = now
        self._last_done = (started, done)
        elapsed = now - started
        if done_live and total_live > done_live:
            eta = elapsed / done_live * (total_live - done_live)
            eta_text = f" | eta {eta:5.1f}s"
        else:
            eta_text = ""
        failures = self.stats.failures
        fail_text = f" | {failures} FAILED" if failures else ""
        print(
            f"[executor] {done}/{total} cells | {hits} cached | "
            f"{self.jobs} jobs | {elapsed:5.1f}s{eta_text}{fail_text}",
            file=sys.stderr,
            flush=True,
        )


def run_cells(
    cells: Sequence[CellSpec],
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    fresh: bool = False,
    progress: bool = False,
) -> List[CellOutcome]:
    """One-shot convenience wrapper around :class:`Executor`."""
    return Executor(jobs=jobs, cache=cache, fresh=fresh, progress=progress).run(cells)


def aggregate_outcome_metrics(outcomes: Sequence[CellOutcome]):
    """Merge the obs metrics of every successful outcome in a campaign.

    Returns one :class:`~repro.obs.MetricsRegistry` (histograms merged
    key-wise, phase cycles summed) or ``None`` when no outcome carried
    metrics — cells run without ``obs`` contribute nothing.
    """
    from repro.obs import aggregate_metrics

    return aggregate_metrics(
        getattr(o.result, "metrics", None) for o in outcomes if o.ok
    )


def raise_on_failures(outcomes: Sequence[CellOutcome]) -> None:
    """Raise :class:`ExecutionError` if any cell failed.

    The message names every failed cell and includes the first few
    tracebacks verbatim, so a campaign failure is actionable without
    rerunning serially.
    """
    failed = [o for o in outcomes if not o.ok]
    if not failed:
        return
    lines = [f"{len(failed)} of {len(outcomes)} cells failed:"]
    for outcome in failed:
        spec = outcome.spec
        lines.append(
            f"  - {spec.workload.name}/{spec.scheme} @ {spec.cores} core(s)"
        )
    for outcome in failed[:3]:
        lines.append("")
        lines.append(outcome.error.rstrip())
    raise ExecutionError("\n".join(lines))


# ----------------------------------------------------------------------
# Cell-spec serialization and one-line repro commands
# ----------------------------------------------------------------------
def cell_spec_to_json(spec: CellSpec) -> str:
    """Serialize one cell to a compact JSON string that
    :func:`cell_spec_from_json` reconstructs exactly.

    Only cells with the default (Table II) configuration are
    serializable — the crash harnesses only ever emit those, and it
    keeps the repro command a single self-contained line.
    """
    if spec.config is not None:
        raise ConfigError(
            "only default-config cells serialize to a repro command"
        )
    payload = {
        "workload": {
            "name": spec.workload.name,
            "threads": spec.workload.threads,
            "transactions": spec.workload.transactions,
            "kwargs": {k: v for k, v in spec.workload.kwargs},
        },
        "scheme": spec.scheme,
        "cores": spec.cores,
        "crash_plan": asdict(spec.crash_plan) if spec.crash_plan else None,
        "fault_plan": (
            spec.fault_plan.to_json_dict() if spec.fault_plan else None
        ),
        "verify": spec.verify,
        "repeats": spec.repeats,
        "obs": spec.obs.to_json_dict() if spec.obs is not None else None,
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cell_spec_from_json(text: str) -> CellSpec:
    """Rebuild the cell a repro command names."""
    data = json.loads(text)
    w = data["workload"]
    crash = data.get("crash_plan")
    fault = data.get("fault_plan")
    return CellSpec(
        workload=WorkloadSpec.make(
            w["name"], w["threads"], w["transactions"], **w.get("kwargs", {})
        ),
        scheme=data["scheme"],
        cores=data["cores"],
        crash_plan=(
            CrashPlan(
                at_op=crash.get("at_op"),
                at_commit_of=(
                    tuple(crash["at_commit_of"])
                    if crash.get("at_commit_of") is not None
                    else None
                ),
            )
            if crash
            else None
        ),
        fault_plan=FaultPlan.from_json_dict(fault) if fault else None,
        verify=data.get("verify", False),
        repeats=data.get("repeats", 1),
        obs=ObsConfig.from_json_dict(data.get("obs")),
    )


def repro_command(spec: CellSpec) -> str:
    """The copy-pasteable command replaying one cell in isolation.

    Printed whenever a randomized crashtest/faultsweep cell fails, so
    the failure is debuggable without re-running the whole campaign:
    the command re-executes exactly that (workload, scheme, crash
    point, fault plan) with ``--jobs 1`` and prints the verdict.
    """
    encoded = cell_spec_to_json(spec).replace("'", "'\\''")
    return (
        "PYTHONPATH=src python -m repro.harness replay "
        f"--jobs 1 --spec '{encoded}'"
    )
