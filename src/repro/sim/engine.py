"""The trace-driven execution engine.

Cores advance private cycle clocks; the engine always steps the core
with the smallest local time, which serializes shared-resource access
(memory controller bandwidth, WPQ slots, the shared L3) in a
deterministic, contention-faithful order.  Each step executes one
trace operation:

* ``Tx_begin`` / ``Tx_end`` drive the active scheme's transaction
  hooks (commit stalls come back from ``on_tx_end``);
* ``Store`` updates the cache hierarchy, lets the scheme observe the
  store (log generation) and any dirty L3 victims it pushed out
  (eviction handling differs per design);
* ``Load`` is timing-only.

Crash injection replaces the operation at the plan's global index with
a power failure, after which the engine models the ADR drain, the
scheme's battery-backed flushes, the loss of the volatile caches and
finally runs the scheme's recovery.  Both boundaries are well-defined:
``at_op=0`` fires before any operation executes (recovery sees the
initial image), and ``at_op == total_ops`` fires after the last
operation retires but before the clean end-of-run drain (every
transaction committed; recovery must reproduce all of them).  A crash
plan that can never fire (an ``at_op`` strictly past ``total_ops``, or
an ``at_commit_of`` that matches no transaction) raises
:class:`SimulationError` instead of silently completing, so crash
sweeps cannot validate nothing.

Scheduling is a binary heap of ``(core_time, core_index)`` pairs: each
step pops the minimum, executes one operation and pushes the core back
with its advanced clock.  Ties break toward the lowest core index,
matching a linear minimum scan, so the schedule (and therefore every
cycle count) is identical to the O(cores)-per-op implementation it
replaced — just O(log cores) on the hottest loop in the simulator.
"""

from __future__ import annotations

import gc
from heapq import heapify, heappop, heappush
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError, SimulationError
from repro.designs.scheme import LoggingScheme, SchemeRegistry
from repro.sim.crash import CrashPlan
from repro.sim.results import RunResult
from repro.sim.system import System
from repro.trace.ops import Load, Store, TxBegin, TxEnd
from repro.trace.trace import Trace

_TXID_WRAP = 1 << 16


class _CoreState:
    """Program counter and clock of one core running one thread."""

    __slots__ = ("tid", "ops", "n_ops", "pc", "time", "tx_index", "in_tx", "txid")

    def __init__(self, tid: int, ops: List) -> None:
        self.tid = tid
        self.ops = ops
        self.n_ops = len(ops)
        self.pc = 0
        self.time = 0
        self.tx_index = -1
        self.in_tx = False
        self.txid = 0

    @property
    def done(self) -> bool:
        return self.pc >= self.n_ops


def _flatten(trace: Trace) -> List[List]:
    """Expand each thread's transactions into a flat op stream with
    explicit markers."""
    streams = []
    for thread in trace.threads:
        ops: List = []
        for tx in thread.transactions:
            ops.append(TxBegin())
            ops.extend(tx.ops)
            ops.append(TxEnd())
        streams.append(ops)
    return streams


class TransactionEngine:
    """Runs one trace under one scheme on one system."""

    def __init__(
        self,
        system: System,
        scheme: LoggingScheme,
        trace: Trace,
        crash_plan: Optional[CrashPlan] = None,
        fault_plan=None,
    ) -> None:
        if len(trace.threads) > system.config.cores:
            raise ConfigError(
                f"trace has {len(trace.threads)} threads but the system "
                f"only has {system.config.cores} cores"
            )
        if fault_plan is not None and crash_plan is None:
            raise ConfigError(
                "a fault plan needs a crash plan: faults are injected "
                "at the crash point"
            )
        self.system = system
        self.scheme = scheme
        self.trace = trace
        self.crash_plan = crash_plan
        self.fault_plan = fault_plan
        self.fault_ledger = None
        self._cores = [
            _CoreState(thread.tid, ops)
            for thread, ops in zip(trace.threads, _flatten(trace))
        ]
        #: Architectural (crash-free) value of every word.
        self._current: Dict[int, int] = dict(trace.initial_image)
        self._committed: set = set()
        self._global_op = 0
        # Hot-loop caches: every _step resolves these, so one attribute
        # hop instead of two or three.
        self._obs = system.obs
        self._stats = system.stats
        self._hierarchy = system.hierarchy
        self._mc = system.mc
        self._op_overhead = system.config.op_overhead_cycles
        self._pm_read_cycles = system.config.pm_read_cycles
        # Bound-method caches for the per-op fast path.
        self._hier_store = system.hierarchy.store
        self._hier_load = system.hierarchy.load
        self._scheme_on_store = scheme.on_store
        self._scheme_on_evictions = scheme.on_evictions
        self._mc_submit_read = system.mc.submit_read

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        # The hot loop allocates millions of short-lived, acyclic
        # objects (cache lines, log entries, word dicts); generational
        # collections find nothing to free and cost double-digit
        # percent of the run.  Reference counting alone reclaims
        # everything we create, so pause the collector for the run.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._run()
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run(self) -> RunResult:
        self.system.install_image(self.trace.initial_image)
        crashed = False

        cores = self._cores
        heap: List[Tuple[int, int]] = [
            (c.time, i) for i, c in enumerate(cores) if not c.done
        ]
        heapify(heap)

        # The observed step wraps (never alters) the plain step, so the
        # disabled path's inner loop is byte-for-byte the historical
        # one — observability cannot perturb timing.
        step = self._step if self._obs is None else self._step_observed
        if self.crash_plan is None:
            # Fast path: no per-op crash check on the inner loop.
            executed = 0
            while heap:
                _, idx = heappop(heap)
                core = cores[idx]
                step(idx, core)
                executed += 1
                if core.pc < core.n_ops:
                    heappush(heap, (core.time, idx))
            self._global_op += executed
        else:
            while heap:
                _, idx = heappop(heap)
                core = cores[idx]
                if self._should_crash(core):
                    crashed = True
                    self._crash(idx, core)
                    break
                step(idx, core)
                self._global_op += 1
                if core.pc < core.n_ops:
                    heappush(heap, (core.time, idx))
            if not crashed:
                plan = self.crash_plan
                if (
                    plan.at_op is not None
                    and plan.at_op == self._global_op
                    and self._cores
                ):
                    # End-boundary crash (``at_op == total_ops``): power
                    # fails after the last operation retires but before
                    # the clean end-of-run drain/finalize.  Every
                    # transaction committed; the ADR drain and recovery
                    # must reproduce all of them.  This is a distinct
                    # point from ``at_op == total_ops - 1`` (which fires
                    # *instead of* the final ``Tx_end``) and is pinned,
                    # on both engines, by the equivalence gate's
                    # boundary cells.
                    crashed = True
                    self._crash(0, self._cores[0])
                else:
                    raise SimulationError(
                        f"crash plan {self.crash_plan} never fired: the trace "
                        f"ended after {self._global_op} operations with no "
                        "matching op/commit — the sweep would silently "
                        "validate nothing"
                    )

        return self._finish(crashed)

    def _finish(self, crashed: bool) -> RunResult:
        """Post-loop drain, recovery and result assembly.

        Split out of :meth:`_run` so the columnar engine — which drives
        this engine's core/scheme/system state through a different
        scheduler — produces its :class:`RunResult` through the exact
        same code path.  A crashed run's ``end`` deliberately omits the
        MC/PM drain the clean path folds in: the ADR drain after a
        power failure is recovery work, not part of the measured run
        (``pm.drain()`` below still retires it for the image checks).
        """
        recovery = None
        obs = self._obs
        if crashed:
            recovery = self.scheme.recover()
            end = max(c.time for c in self._cores)
            if obs is not None:
                obs.recovery_done(end, self.scheme.name)
        else:
            end = max(c.time for c in self._cores)
            end = max(end, self.scheme.finalize(end))
            end = max(end, self.system.mc.drain_completion())
        self.system.pm.drain()

        result = RunResult(
            scheme=self.scheme.name,
            trace_name=self.trace.name,
            config=self.system.config,
            stats=self.system.stats,
            committed=set(self._committed),
            end_cycle=end,
            total_transactions=self.trace.total_transactions,
            crashed=crashed,
            recovery=recovery,
            faults=self.fault_ledger,
            tx_log_counts=list(getattr(self.scheme, "tx_log_counts", [])),
        )
        if obs is not None:
            result.metrics = obs.metrics
            trace = obs.trace
            if trace is not None:
                result.events = trace.events
                result.events_dropped = trace.dropped
        return result

    def _should_crash(self, core: _CoreState) -> bool:
        plan = self.crash_plan
        if plan is None:
            return False
        if plan.at_op is not None:
            return self._global_op == plan.at_op
        if not core.in_tx and type(core.ops[core.pc]) is not TxEnd:
            return False
        next_op = core.ops[core.pc]
        return (
            type(next_op) is TxEnd
            and (core.tid, core.tx_index) == plan.at_commit_of
        )

    # ------------------------------------------------------------------
    # One operation
    # ------------------------------------------------------------------
    def _step(self, core_idx: int, core: _CoreState) -> None:
        op = core.ops[core.pc]
        core.pc += 1
        now = core.time
        cost = self._op_overhead
        op_type = type(op)

        if op_type is Store:
            # _do_store(), inlined: one call frame per simulated store
            # is measurable at this op rate.
            if not core.in_tx:
                raise SimulationError("store outside a transaction in trace")
            current = self._current
            addr = op.addr
            value = op.value
            old = current.get(addr)
            if old is None:
                # Not covered by the trace's image: the architectural
                # value is whatever PM holds (restart runs continue on
                # a recovered image).
                old = self.system.pm.media.read_word(addr)
                current[addr] = old
            access = self._hier_store(core_idx, addr, value)
            cost += access.latency
            if access.hit_level == "pm":  # rare: only true L3 misses
                cost += self._read_contention(addr, now, core_idx)
            writebacks = access.writebacks
            if writebacks:
                cost += self._scheme_on_evictions(core_idx, now, writebacks)
            cost += self._scheme_on_store(
                core_idx, core.tid, core.txid, addr, old, value, now, access
            )
            current[addr] = value
        elif op_type is Load:
            addr = op.addr
            access = self._hier_load(core_idx, addr)
            cost += access.latency
            if access.hit_level == "pm":
                cost += self._read_contention(addr, now, core_idx)
            writebacks = access.writebacks
            if writebacks:
                cost += self._scheme_on_evictions(core_idx, now, writebacks)
        elif op_type is TxBegin:
            core.tx_index += 1
            # txid 0 is the idle sentinel (_CoreState.txid at reset), so
            # the 16-bit wrap must skip it: 1..65535, then back to 1.
            core.txid = (core.tx_index % (_TXID_WRAP - 1)) + 1
            core.in_tx = True
            cost += self.scheme.on_tx_begin(core_idx, core.tid, core.txid, now)
        elif op_type is TxEnd:
            cost += self.scheme.on_tx_end(core_idx, core.tid, core.txid, now)
            core.in_tx = False
            self._committed.add((core.tid, core.tx_index))
            self._stats.add("engine.committed")
        else:  # pragma: no cover - trace construction guards this
            raise SimulationError(f"unknown op {op!r}")

        core.time = now + cost

    def _step_observed(self, core_idx: int, core: _CoreState) -> None:
        """One operation with observability hooks around the plain
        :meth:`_step`: refresh the ambient cycle stamp, then attribute
        the core's advance to the op's phase (and, at transaction
        boundaries, emit tx/commit spans).  Timing state is read, never
        written, so the schedule is untouched."""
        obs = self._obs
        op_name = type(core.ops[core.pc]).__name__
        start = core.time
        obs.cycle = start
        self._step(core_idx, core)
        obs.op_done(op_name, core_idx, start, core.time - start)

    def _read_contention(self, addr: int, now: int, core_idx: int = 0) -> int:
        """Demand misses to PM queue at the memory controller; the read
        carries the miss's real line address so the MC can account and
        schedule it like any other request."""
        completion = self._mc_submit_read(now, addr, channel=core_idx)
        queueing = completion - now - self._pm_read_cycles
        return queueing if queueing > 0 else 0

    # ------------------------------------------------------------------
    # Crash path
    # ------------------------------------------------------------------
    def _crash(self, victim_idx: int, victim: _CoreState) -> None:
        now = max(c.time for c in self._cores)
        doomed_op = victim.ops[victim.pc] if not victim.done else None
        obs = self._obs
        if obs is not None:
            obs.cycle = now
            obs.crash(now)

        # Everything persisted from here on rides the crash drain —
        # the fault injector's tear/drop window starts now.
        self.system.region.begin_crash_drain()

        if type(doomed_op) is TxEnd:
            # The crash strikes during this core's commit.
            counts = self.scheme.interrupted_commit(
                victim_idx, victim.tid, victim.txid, victim.time
            )
            victim.in_tx = False
            if counts:
                self._committed.add((victim.tid, victim.tx_index))
                self.system.stats.add("engine.committed")

        core_in_tx: Dict[int, Tuple[int, int]] = {
            i: (c.tid, c.txid)
            for i, c in enumerate(self._cores)
            if c.in_tx
        }
        self.scheme.on_crash(core_in_tx, now)
        # ADR drains the WPQ and the on-PM buffer; caches are lost.
        self.system.pm.drain()
        self.system.hierarchy.drop_all()
        if self.fault_plan is not None:
            # Imported lazily: the crash path is cold, and repro.faults
            # pulls in oracle machinery the clean path never needs.
            from repro.faults.inject import inject_faults

            self.fault_ledger = inject_faults(self.system, self.fault_plan)


def run_trace(
    trace: Trace,
    scheme: str = "silo",
    config=None,
    crash_plan: Optional[CrashPlan] = None,
    fault_plan=None,
    system_factory: Optional[Callable[[], System]] = None,
    obs=None,
    engine: str = "exact",
) -> RunResult:
    """Convenience entry point: build a system, run a trace, return the
    result.  ``scheme`` is a registry name (``base``, ``fwb``,
    ``morlog``, ``lad``, ``silo``); ``obs`` an optional
    :class:`~repro.obs.ObsConfig` enabling the observability layer;
    ``engine`` selects the execution engine (``exact`` or the
    bit-identical batched ``columnar`` one)."""
    if system_factory is not None:
        system = system_factory()
    else:
        system = System(config, obs=obs)
    scheme_obj = SchemeRegistry.create(scheme, system)
    if engine == "exact":
        runner = TransactionEngine(
            system, scheme_obj, trace, crash_plan=crash_plan, fault_plan=fault_plan
        )
    elif engine == "columnar":
        # Imported lazily: repro.sim.columnar imports the design
        # modules for kernel dispatch, which import this module.
        from repro.sim.columnar import ColumnarEngine

        runner = ColumnarEngine(
            system, scheme_obj, trace, crash_plan=crash_plan, fault_plan=fault_plan
        )
    else:
        raise ConfigError(f"unknown engine {engine!r} (exact or columnar)")
    return runner.run()
