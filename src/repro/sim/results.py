"""Results of one simulated run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.common.config import SystemConfig
from repro.common.stats import Stats
from repro.core.recovery import RecoveryReport
from repro.faults.inject import FaultLedger
from repro.obs.events import TraceEvent
from repro.obs.metrics import MetricsRegistry


@dataclass
class RunResult:
    """Everything the experiments read after a run."""

    scheme: str
    trace_name: str
    config: SystemConfig
    stats: Stats
    #: Transactions that committed, as ``(tid, tx_index)`` with
    #: ``tx_index`` the 0-based position in the thread's trace.
    committed: Set[Tuple[int, int]] = field(default_factory=set)
    end_cycle: int = 0
    total_transactions: int = 0
    crashed: bool = False
    recovery: Optional[RecoveryReport] = None
    #: The fault injector's ledger, when the run carried a fault plan.
    faults: Optional[FaultLedger] = None
    #: Per-transaction (total, remaining) on-chip log counts (Silo).
    tx_log_counts: List[Tuple[int, int]] = field(default_factory=list)
    #: Observability channels, populated only when the run enabled
    #: them (``None`` otherwise — the default, bit-identical path).
    metrics: Optional[MetricsRegistry] = None
    events: Optional[List[TraceEvent]] = None
    events_dropped: int = 0

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def committed_count(self) -> int:
        return len(self.committed)

    @property
    def media_writes(self) -> int:
        """Write requests reaching the PM physical media (Fig. 11)."""
        return int(self.stats.get("media.sector_writes"))

    @property
    def runtime_seconds(self) -> float:
        return self.end_cycle / (self.config.freq_ghz * 1e9)

    @property
    def throughput_tx_per_sec(self) -> float:
        """Committed transactions per second (Fig. 12)."""
        if self.end_cycle <= 0:
            return 0.0
        return self.committed_count / self.runtime_seconds

    @property
    def writes_per_transaction(self) -> float:
        """Media writes per committed transaction.

        With zero commits the ratio is undefined: crash/fault runs can
        have media traffic but nothing committed, and reporting ``0.0``
        there silently masks that traffic.  Such runs yield ``NaN``
        (consumers render it as ``n/a``); only a run with no commits
        *and* no media writes is a true zero.
        """
        if not self.committed_count:
            return float("nan") if self.media_writes else 0.0
        return self.media_writes / self.committed_count

    @property
    def log_bytes(self) -> int:
        """Bytes of log traffic submitted to the PM device."""
        return int(self.stats.get("pm.request_bytes.log"))

    @property
    def data_bytes(self) -> int:
        """Bytes of data traffic submitted to the PM device."""
        return int(self.stats.get("pm.request_bytes.data"))

    @property
    def media_waf(self) -> float:
        """Log write amplification: log bytes per dirty data byte.

        The granularity axis's figure of merit — word entries cost
        16 B per logged word where coarse run records cost 8 + 8·n B
        per n-word run, and this ratio is where the difference lands.
        Same NaN convention as :attr:`writes_per_transaction`: log
        traffic with zero data bytes (a crash before any data drained)
        is undefined rather than silently ``0.0``; no traffic at all
        is a true zero.
        """
        if not self.data_bytes:
            return float("nan") if self.log_bytes else 0.0
        return self.log_bytes / self.data_bytes

    def traffic_breakdown(self) -> dict:
        """MC write requests by source kind.

        Kind names are normalized (no dots) at the ``submit_write``
        boundary, so stripping the ``mc.writes.`` prefix always
        recovers exactly the per-kind name.
        """
        prefix = "mc.writes."
        start = len(prefix)
        return {
            key[start:]: int(value)
            for key, value in self.stats.items()
            if key.startswith(prefix)
        }

    def __repr__(self) -> str:
        return (
            f"RunResult({self.scheme!r}, {self.trace_name!r}, "
            f"{self.committed_count}/{self.total_transactions} committed, "
            f"{self.end_cycle} cycles, {self.media_writes} media writes)"
        )
