"""The simulated machine: cores' caches, memory controller, PM, logs."""

from __future__ import annotations

from typing import Dict, Optional

from repro.cache.hierarchy import CacheHierarchy
from repro.common.config import SystemConfig
from repro.common.stats import Stats
from repro.hwlog.region import LogRegion
from repro.mc.memctrl import MemoryController
from repro.mem.pm import PMDevice, RegionLayout
from repro.obs import Observability, ObsConfig


class System:
    """Everything of Table II wired together, shared by all designs.

    ``obs`` optionally enables the observability layer for the run
    (an :class:`~repro.obs.ObsConfig`); by default it is off and every
    component holds ``obs = None`` — the bit-identical fast path.
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        obs: Optional[ObsConfig] = None,
    ) -> None:
        self.config = config if config is not None else SystemConfig.table2()
        self.stats = Stats()
        self.obs = Observability.create(obs)
        layout = RegionLayout(threads=max(self.config.cores, 1))
        self.pm = PMDevice(
            self.config.pm, layout=layout, stats=self.stats, obs=self.obs
        )
        self.mc = MemoryController(
            self.config,
            self.pm,
            stats=self.stats,
            channels=self.config.memory_channels,
            obs=self.obs,
        )
        self.hierarchy = CacheHierarchy(self.config, stats=self.stats, obs=self.obs)
        self.region = LogRegion(layout, stats=self.stats)

    def install_image(self, image: Dict[int, int]) -> None:
        """Install the workload's initial data directly into the media
        (setup is not part of the measured run)."""
        self.pm.media.load_image(image)

    def reset_stats(self) -> None:
        self.stats.reset()
