"""Crash injection.

A :class:`CrashPlan` names the single point at which power fails, in
one of two ways:

* ``at_op`` — the global operation index (in deterministic engine
  scheduling order) whose execution the failure replaces;
* ``at_commit_of=(tid, tx_index)`` — the failure strikes exactly when
  that thread's ``tx_index``-th transaction executes ``Tx_end``.

Two situations arise:

* the doomed operation is a plain memory op or ``Tx_begin`` — the
  machine dies with that core (and possibly others) mid-transaction;
* the doomed operation is ``Tx_end`` — the crash strikes *during
  commit*: the scheme's :meth:`interrupted_commit` decides whether the
  transaction still counts (designs guaranteeing durability at commit
  must make it recoverable; Silo flushes redo logs + the ID tuple,
  Fig. 10f).

Boundary semantics (identical on both engines, pinned by the
equivalence gate's boundary cells):

* ``at_op=0`` fires before the first operation executes — nothing ran,
  recovery walks an empty log and the data region holds the initial
  image;
* ``at_op == total_ops`` fires after the last operation retires but
  *before* the clean end-of-run drain/finalize — every transaction
  committed and recovery must reproduce all of them;
* ``at_op > total_ops`` (and an ``at_commit_of`` matching no
  transaction) can never fire and raises ``SimulationError``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class CrashPlan:
    """Power fails at one precisely-defined point."""

    at_op: Optional[int] = None
    at_commit_of: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if (self.at_op is None) == (self.at_commit_of is None):
            raise ConfigError(
                "specify exactly one of at_op / at_commit_of"
            )
        if self.at_op is not None and self.at_op < 0:
            raise ConfigError("crash point must be non-negative")
