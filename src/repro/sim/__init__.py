"""Trace-driven system simulator: wiring, engine, crash injection."""

from repro.sim.system import System
from repro.sim.crash import CrashPlan
from repro.sim.results import RunResult
from repro.sim.engine import TransactionEngine, run_trace
from repro.sim.columnar import ColumnarEngine
from repro.sim.restart import continuation_trace, resume_trace
from repro.sim.verify import check_atomic_durability, expected_image

__all__ = [
    "System",
    "CrashPlan",
    "RunResult",
    "TransactionEngine",
    "ColumnarEngine",
    "run_trace",
    "continuation_trace",
    "resume_trace",
    "check_atomic_durability",
    "expected_image",
]
