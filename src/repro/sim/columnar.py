"""The batched columnar epoch engine (bit-identical fast path).

:class:`ColumnarEngine` runs the same trace/scheme/system as
:class:`~repro.sim.engine.TransactionEngine` but replaces the
one-op-per-heap-pop scheduler with *epoch batching*: it decodes each
core's op stream into flat columns (op kind / address / value) once,
then advances a whole run of one core's operations in a single fused
kernel call, yielding only when the core's clock crosses the next
core's scheduled time.

Epoch rule.  The exact engine's schedule is a min-heap of
``(core_time, core_index)`` with ties toward the lowest index.  After
core ``i`` executes one op at time ``t`` and advances to ``now``, the
exact engine re-runs core ``i`` next if and only if

    ``now < limit_t  or  (now == limit_t and i < limit_i)``

where ``(limit_t, limit_i)`` is the heap minimum among the *other*
cores — which cannot change while core ``i`` runs, because only the
running core's clock moves.  The columnar engine therefore executes
core ``i``'s ops back-to-back while that predicate holds and pushes
the core back into the heap when it fails.  The resulting global op
order is *identical* to the exact engine's, so every timestamped
side effect (WPQ admission, bank scheduling, on-PM buffer LRU, cache
evictions, scheme state) is reproduced bit-for-bit.

Fused kernels.  Per core, a scheme-specialized stepper executes the
Store/Load/TxBegin/TxEnd hot paths with the per-op call tree of the
exact engine flattened into straight-line code over hoisted locals:
the L1-hit probe, the MC write path (WPQ prune/admit, channel bus,
bank heap), the on-PM buffer fast paths and the media's
data-comparison-write run inline against the *live* simulator state.
Cacheline eviction storms (dirty L3 victims surfacing mid-epoch) run
through a per-scheme fused eviction kernel instead of the exact
``on_evictions`` hook, and the morlog/fwb end-of-run ``finalize``
data flushes run through :func:`_fused_finalize` before
``TransactionEngine._finish`` (leaving the schemes' own finalize a
natural no-op over already-cleared state).
Counter increments are accumulated in closure integers and flushed
once at the end of the run; every flush is value-guarded so the final
counter key set matches the exact engine's exactly (a
``collections.Counter`` creates a key even for ``+= 0``).

Exact-engine fallback.  Three levels:

* **Run delegation** — a crash plan, fault plan, enabled observability
  layer or poisoned media delegates the entire run to the wrapped
  exact engine (``delegated_reason`` records why).  Crash/fault
  windows and observability hooks are timing-sensitive rare paths
  that batching must not touch.
* **Core fallback** — a core whose scheme is not one of the seven
  fused designs (base, fwb, silo, morlog, lad, swlog, wrap), whose
  silo ablation flags are non-default, or whose thread id has no
  valid log area runs entirely through ``TransactionEngine._step``
  (same global order, same results, no speedup).
* **Op fallback** — a fused stepper returns the op to
  ``TransactionEngine._step`` unconsumed when it cannot prove the
  fast path identical (op outside a transaction, address outside the
  48-bit log-entry field, a write-through request whose on-PM buffer
  line is already resident and must coalesce, unknown op kinds).
  Paths where the exact engine would raise are also routed here so
  the exception (and its message) comes from the exact code.

Every fallback is tallied under a reason tag — ``core:<why>`` when a
whole core runs generic (the stepper factories return the reason
string instead of a kernel), ``op:<why>`` keyed off the op kind for
mid-epoch per-op fallbacks — exposed as ``fallback_reasons`` in
:meth:`ColumnarEngine.engine_stats` so kernel-coverage regressions
are visible in benchmarks and CI.

Determinism argument.  The fused kernels mutate the same objects the
exact engine would (media image, on-PM buffer, WPQ/bank heaps, cache
hierarchy, region cursors/sequence, scheme state) in the same global
op order with the same arithmetic; accumulated counters commute with
live increments because counter addition is associative.  The only
state intentionally skipped is the region's structured recovery
*records* for fused designs — they are observable only through crash
and recovery paths, which always delegate to the exact engine — with
the thread's (empty) record bucket recreated at flush time to match
the exact engine's post-truncation end state.
"""

from __future__ import annotations

import gc
from heapq import heapify, heappop, heappush, heapreplace
from typing import Optional
from weakref import WeakKeyDictionary

from repro.common.constants import ONPM_LINE_SIZE, OVERFLOW_BATCH_ENTRIES, WORD_MASK
from repro.common.errors import AddressError
from repro.core.silo import _CONTROLLER_QUEUE_CYCLES
from repro.designs.fwb import FWB_INTERVAL_CYCLES, FWBScheme
from repro.designs.lad import CAPTURE_LINES, PREPARE_CYCLES_PER_LINE
from repro.designs.morlog import MORPH_BUFFER_ENTRIES, MorLogScheme
from repro.designs.policy import PolicyScheme
from repro.designs.swlog import FENCE_CYCLES, LOG_BUILD_CYCLES
from repro.hwlog.entry import LogEntry
from repro.sim.engine import TransactionEngine
from repro.trace.ops import Load, Store, TxBegin, TxEnd

#: Payload-mix constants of :meth:`LogRegion.persist_word_log`.
_K1 = 0x9E3779B97F4A7C15
_K2 = 0xC2B2AE3D27D4EB4F
#: Largest address fitting the log entry's 48-bit field.
_A48 = (1 << 48) - 1
_M = WORD_MASK

# Stepper statuses.
_DONE = 0  #: the core has no ops left
_YIELD = 1  #: the core's clock crossed the epoch horizon
_EXACT = 2  #: current op NOT consumed; run it through the exact engine

_INF = float("inf")


# Static op kinds.  The trace analysis folds the transaction state
# machine and the old-value analysis into the kind column:
#   0 TxBegin             5 Store, address outside the 48-bit field
#   1 TxEnd               6 nested TxBegin (in_tx already set)
#   2 Store, static old   7 unmatched TxEnd (in_tx clear)
#   3 Load                8 exact-engine op (store outside tx /
#   4 Store, dynamic old     unknown op kind; the exact engine raises)

#: Fallback-reason tag per op kind, for ops a fused stepper hands back
#: to the exact engine mid-epoch (indexed by the kind column above).
_OP_REASON = (
    "op:tx_state",  # 0 TxBegin (silo regeneration guard)
    "op:tx_state",  # 1 TxEnd (silo commit without an open tx)
    "op:conflict",  # 2 store merging onto another tx's buffered entry
    "op:load",      # 3 loads are never handed back (placeholder)
    "op:conflict",  # 4 as kind 2, dynamic old value
    "op:addr48",    # 5 address outside the 48-bit log-entry field
    "op:tx_state",  # 6 nested TxBegin
    "op:tx_state",  # 7 unmatched TxEnd
    "op:illegal",   # 8 the exact engine raises
)


class _CorePre:
    """Per-core static columns."""

    __slots__ = ("kinds", "addrs", "vals", "olds", "log")

    def __init__(self, kinds, addrs, vals, olds):
        self.kinds = kinds
        self.addrs = addrs
        self.vals = vals
        self.olds = olds
        #: Lazily attached WAL layout: ``(lbase, larea, _LogPre|None)``
        #: — keyed by the area so a trace reused under a different
        #: memory layout recomputes (None = precondition failed).
        self.log = None


class _LogPre:
    """Static WAL log layout for one core (base/fwb only)."""

    __slots__ = ("la", "pre2", "cur_te", "end_cur", "media", "wear",
                 "n_static", "nz_static")

    def __init__(self, la, pre2, cur_te, end_cur, media, wear, n_static, nz):
        self.la = la  #: log address per store pc
        self.pre2 = pre2  #: payload missing only ``old*K1``, per dynamic pc
        self.cur_te = cur_te  #: cursor before the commit tuple, per TxEnd pc
        self.end_cur = end_cur  #: cursor after the whole trace
        self.media = media  #: {word addr: value} of all static entries
        self.wear = wear  #: {sector: writes} of all static entries
        self.n_static = n_static  #: static entry count (= media line writes)
        self.nz_static = nz  #: changed-word count of static entries


class _TracePre:
    """Whole-trace static analysis (memoized on the trace object)."""

    __slots__ = ("cores", "amin", "amax", "imin", "imax")

    def __init__(self, cores, amin, amax, imin, imax):
        self.cores = cores
        self.amin = amin  #: smallest trace address (stores and loads)
        self.amax = amax
        self.imin = imin  #: smallest initial-image word address
        self.imax = imax


_PRE_MEMO: "WeakKeyDictionary" = WeakKeyDictionary()


def _analyze(trace, cores):
    """Columnarize every core's op stream, fold transaction legality
    into the kind column, and resolve static old values through a
    global single-writer analysis.

    An address is *single-writer* when every store to it across the
    whole trace comes from one core: that core's overwritten values
    are then a pure function of the trace (its own previous store,
    else the initial image) because the exact engine's shadow map and
    media agree with the static chain at every interleaving.  Stores
    to multi-writer or out-of-48-bit-range addresses keep the live
    shadow map (the range limit keeps silo/lad's resumable exact-path
    stores — which the analysis cannot see — off every static chain).
    """
    decoded = []
    writers = {}
    amin = amax = None
    for idx, core in enumerate(cores):
        ops = core.ops
        n = len(ops)
        kinds = bytearray(n)
        addrs = [0] * n
        vals = [0] * n
        for i, op in enumerate(ops):
            t = type(op)
            if t is Store:
                a = op.addr
                kinds[i] = 2
                addrs[i] = a
                vals[i] = op.value
                w = writers.get(a)
                if w is None:
                    writers[a] = idx
                elif w != idx:
                    writers[a] = -2
                if amin is None or a < amin:
                    amin = a
                if amax is None or a > amax:
                    amax = a
            elif t is Load:
                a = op.addr
                kinds[i] = 3
                addrs[i] = a
                if amin is None or a < amin:
                    amin = a
                if amax is None or a > amax:
                    amax = a
            elif t is TxBegin:
                kinds[i] = 0
            elif t is TxEnd:
                kinds[i] = 1
            else:
                kinds[i] = 8
        decoded.append((kinds, addrs, vals))

    image = trace.initial_image
    image_get = image.get
    imin = min(image) if image else None
    imax = max(image) if image else None

    pres = []
    for idx, (kinds, addrs, vals) in enumerate(decoded):
        n = len(kinds)
        olds = [0] * n
        last = {}
        in_tx = False
        for i in range(n):
            k = kinds[i]
            if k == 2:
                a = addrs[i]
                if not in_tx:
                    # The exact engine raises SimulationError before
                    # touching any state; later ops are unreachable.
                    kinds[i] = 8
                    continue
                if 0 <= a <= _A48 and writers[a] == idx:
                    old = last.get(a)
                    if old is None:
                        old = image_get(a, 0)
                    olds[i] = old
                else:
                    kinds[i] = 4 if 0 <= a <= _A48 else 5
                last[a] = vals[i]
            elif k == 0:
                if in_tx:
                    kinds[i] = 6
                in_tx = True
            elif k == 1:
                if not in_tx:
                    kinds[i] = 7
                in_tx = False
        pres.append(_CorePre(bytes(kinds), addrs, vals, olds))
    return _TracePre(pres, amin, amax, imin, imax)


def _trace_pre(trace, cores):
    try:
        pre = _PRE_MEMO.get(trace)
    except TypeError:
        return _analyze(trace, cores)
    if pre is None or len(pre.cores) != len(cores):
        pre = _analyze(trace, cores)
        try:
            _PRE_MEMO[trace] = pre
        except TypeError:
            pass
    return pre


# ----------------------------------------------------------------------
# Decode export/import for the trace-artifact store
# ----------------------------------------------------------------------
#: Version of the exported decode columns.  Bump whenever the shape of
#: :class:`_CorePre`/:class:`_TracePre` (or the meaning of a kind code)
#: changes, so stale trace artifacts read as misses instead of feeding
#: the engine columns it would misinterpret.
DECODE_VERSION = 1


class _CoreOps:
    """Minimal core stand-in for :func:`_analyze` (needs ``.ops`` only)."""

    __slots__ = ("ops",)

    def __init__(self, ops):
        self.ops = ops


def precompute_trace(trace):
    """Run the columnar decode for ``trace`` and memoize it, exactly as
    the engine would on first run.  Returns the :class:`_TracePre`."""
    from repro.sim.engine import _flatten

    pre = _analyze(trace, [_CoreOps(ops) for ops in _flatten(trace)])
    try:
        _PRE_MEMO[trace] = pre
    except TypeError:
        pass
    return pre


def export_decode_columns(trace):
    """Flat, picklable decode columns for ``trace`` (building the decode
    if it is not memoized yet).  The WAL ``log`` layout is *not*
    exported — it depends on the memory configuration and is lazily
    recomputed per cell."""
    try:
        pre = _PRE_MEMO.get(trace)
    except TypeError:
        pre = None
    if pre is None:
        pre = precompute_trace(trace)
    return (
        DECODE_VERSION,
        [(c.kinds, c.addrs, c.vals, c.olds) for c in pre.cores],
        pre.amin,
        pre.amax,
        pre.imin,
        pre.imax,
    )


def seed_decode_columns(trace, columns):
    """Memoize previously exported decode columns for ``trace`` so the
    engine's first run skips :func:`_analyze` entirely.  Columns with a
    stale :data:`DECODE_VERSION` are ignored (the engine will simply
    re-analyze).  Returns ``True`` when the seed was accepted."""
    if not columns or columns[0] != DECODE_VERSION:
        return False
    version, cores, amin, amax, imin, imax = columns
    if len(cores) != len(trace.threads):
        return False
    pre = _TracePre(
        [_CorePre(kinds, addrs, vals, olds) for kinds, addrs, vals, olds in cores],
        amin,
        amax,
        imin,
        imax,
    )
    try:
        _PRE_MEMO[trace] = pre
    except TypeError:
        return False
    return True


def _log_pass(pre, cpre, tid, lbase, larea):
    """Static WAL log layout for one base/fwb core, or ``None`` when
    the *virgin log area* precondition fails.

    Precondition (conservative):

    * the thread's log cursor never wraps the area, and
    * no initial-image word lies inside the log area, and
    * every trace address stays a full on-PM-buffer line (256 bytes)
      away from the log area.

    The caller additionally requires the thread's cursor to start at
    zero (a reused system with leftover log-area media words always
    has a non-zero cursor, because nothing ever resets it).  Under
    the precondition every static log entry writes its words to
    virgin, exclusively-owned media (a word "changes" iff non-zero,
    and the first payload word is odd so the sector write is never
    redundant), no log line can ever be resident in the on-PM buffer
    (posted data lines are trace lines), and nothing reads a log word
    during the run (crash/recovery paths delegate) — so the entries'
    media words, wear and DCW outcome are pure trace functions,
    applied in bulk at flush time.
    """
    area_end = lbase + larea
    if pre.amin is not None and not (
        pre.amax + ONPM_LINE_SIZE <= lbase or pre.amin >= area_end + ONPM_LINE_SIZE
    ):
        return None
    if pre.imin is not None and not (pre.imax < lbase or pre.imin >= area_end):
        return None

    kinds = cpre.kinds
    addrs = cpre.addrs
    vals = cpre.vals
    olds = cpre.olds
    n = len(kinds)
    la_col = [0] * n
    pre2_col = [0] * n
    cur_te = [0] * n
    media = {}
    wear = {}
    n_static = 0
    nz = 0
    cur = 0
    txid = 0
    tx_index = 0
    for pc in range(n):
        k = kinds[pc]
        if k == 2 or k == 4 or k == 5:
            rem = cur & 63
            if rem:
                cur += 64 - rem
            la = lbase + cur
            la_col[pc] = la
            a = addrs[pc]
            if k == 2:
                p = (
                    (tid << 56)
                    ^ (txid << 40)
                    ^ a
                    ^ ((olds[pc] & _M) * _K1)
                    ^ ((vals[pc] & _M) * _K2)
                ) | 1
                w = p & _M
                if w:
                    media[la] = w
                    nz += 1
                w = (p + 1) & _M
                if w:
                    media[la + 8] = w
                    nz += 1
                w = (p + 2) & _M
                if w:
                    media[la + 16] = w
                    nz += 1
                w = (p + 3) & _M
                if w:
                    media[la + 24] = w
                    nz += 1
                n_static += 1
                sec = la >> 6
                wear[sec] = wear.get(sec, 0) + 1
            else:
                pre2_col[pc] = (
                    (tid << 56) ^ (txid << 40) ^ a ^ ((vals[pc] & _M) * _K2)
                )
            cur += 26
        elif k == 0 or k == 6:
            tx_index += 1
            txid = (tx_index % 65535) + 1
        elif k == 1 or k == 7:
            cur_te[pc] = cur
            rem = cur & 63
            if rem:
                cur += 64 - rem
            cur += 16  # the two-word commit tuple
        # kind 8 raises inside the exact engine, so ops after it are
        # unreachable and their (absent) log effects don't matter.
    if cur > larea:
        return None  # the cursor would wrap: log addresses get reused
    return _LogPre(la_col, pre2_col, cur_te, cur, media, wear, n_static, nz)


def _make_generic_stepper(exact, idx, core):
    """Fallback stepper: every op goes through the exact engine."""
    n_ops = core.n_ops

    def step(limit_t, limit_i):
        return _DONE if core.pc >= n_ops else _EXACT

    def flush():
        return None

    return step, flush


def _make_wal_stepper(exact, idx, core, cpre, pre, is_fwb):
    """Fused stepper for the per-store WAL designs (base, fwb) with a
    fully static log layout.

    Requires the virgin-log-area precondition (see :func:`_log_pass`)
    plus a zero starting cursor; otherwise returns a fallback-reason
    string and the core falls back to the generic stepper (rare,
    correct, slow).
    Under it the per-store hot path is pure timing arithmetic: the
    static entries' media words/wear/counters are applied in bulk at
    flush time, and the log submit does not even need the entry's
    address (one four-word request to one virgin sector, always).

    Base additionally fuses the per-store data write-back: every base
    store cleans its cacheline immediately, loads never dirty lines
    and L3/L2 copies are therefore always clean, so the exact
    engine's ``writeback_line`` merge is statically the singleton
    ``{addr: value}`` of the store itself and the probe loop (plain
    ``get``, no LRU side effects) can be skipped.

    No fused op here ever falls back mid-core: kind-8 ops raise
    inside the exact engine before touching engine state, so the
    stepper's deferred cursor/sequence bookkeeping (synced before
    every bound ``persist_commit_tuple`` call and at every epoch
    boundary) never interleaves with exact-path log writes.
    """
    scheme = exact.scheme
    system = exact.system
    tid = core.tid
    region = system.region
    try:
        lbase, larea = region.layout.thread_log_area(tid)
    except AddressError:
        return "no_log_area"
    if region._cursor.get(tid, 0) != 0:
        return "log_cursor_in_use"
    cached = cpre.log
    if cached is not None and cached[0] == lbase and cached[1] == larea:
        lp = cached[2]
    else:
        lp = _log_pass(pre, cpre, tid, lbase, larea)
        cpre.log = (lbase, larea, lp)
    if lp is None:
        return "wal_layout"

    kinds = cpre.kinds
    addrs = cpre.addrs
    vals = cpre.vals
    la_col = lp.la
    pre2_col = lp.pre2
    cur_te = lp.cur_te
    n_ops = core.n_ops

    # ---------------------------------------------------------- hoists
    mc = system.mc
    chan = idx % mc.channels
    wpq_heap = mc._wpq_heaps[chan]
    wpq_cap = mc._wpq_capacity
    chfree = mc._channel_free
    banks = mc._bank_free[chan]
    BUS = mc._bus_overhead
    BEAT = mc._bus_beat
    WSERV = mc._write_service
    BUS1 = BUS + BEAT  # data singleton
    BUS2 = BUS + 2 * BEAT  # commit tuple
    BUS4 = BUS + 4 * BEAT  # log entry

    pm = system.pm
    onpm = pm.buffer
    onpm_lines = onpm._lines
    onpm_get = onpm_lines.get
    onpm_move = onpm_lines.move_to_end
    onpm_cap = onpm._capacity
    onpm_mask = onpm._line_mask
    evict_lru = onpm._evict_lru
    media_words = pm.media._words
    media_get = media_words.get
    wear = pm.media._sector_wear
    wear_get = wear.get

    hier = system.hierarchy
    l1 = hier._l1[idx]
    l1_sets = l1._sets
    l1_shift = l1._line_shift
    l1_nsets = l1._num_sets
    k_l1_hits = l1._k_hits
    LAT_L1 = hier._lat_l1
    line_mask = hier._line_mask
    hier_store = exact._hier_store
    hier_load = exact._hier_load
    read_contention = exact._read_contention

    rcur = region._cursor
    records = region._records
    persist_commit_tuple = region.persist_commit_tuple

    counters = system.stats.counters
    current = exact._current
    current_get = current.get
    committed_add = exact._committed.add
    OPOV = exact._op_overhead
    M = WORD_MASK

    tld = scheme._tx_log_done
    if is_fwb:
        log_ready = scheme._log_ready
        lr_get = log_ready.get
        fwb_dirty_add = scheme._dirty_lines[idx].add
        owner = scheme._owner
        mfwb = scheme._maybe_force_writeback
        await_truncate_append = scheme._await_truncate.append

    # ------------------------------------------------- accumulators
    a_l1_hits = 0
    a_wpq_stall = 0
    a_med_lines = 0  # dynamic entries + commit tuples (static in bulk)
    a_med_words = 0
    a_med_redund = 0
    a_committed = 0
    ns = 0  # fused log entries (static + dynamic)
    n_te = 0  # fused commit tuples
    a_p_data = 0  # fused posted data write-backs (fwb eviction storms)
    a_p_bytes = 0
    a_p_coal = 0

    def posted_data(t, wbs):
        """Fused eviction storm: the default scheme hook posts every
        dirty victim line as a data write (base/fwb never override
        it).  Replicates ``submit_write(kind="data")`` without
        write-through: the line lingers in the on-PM buffer, capacity
        victims fall to the live ``_evict_lru``."""
        nonlocal a_p_data, a_p_bytes, a_p_coal, a_wpq_stall
        stall = 0
        for _lb, words in wbs:
            nw = len(words)
            a_p_data += 1
            a_p_bytes += 8 * nw
            a0 = next(iter(words))
            b = a0 & onpm_mask
            pending = onpm_get(b)
            extra = 0
            if pending is None:
                if len(onpm_lines) >= onpm_cap:
                    extra = evict_lru()
                onpm_lines[b] = dict(words)
                if nw > 1:
                    a_p_coal += nw - 1
            else:
                onpm_move(b)
                pending.update(words)
                a_p_coal += nw
            while wpq_heap and wpq_heap[0] <= t:
                heappop(wpq_heap)
            if len(wpq_heap) < wpq_cap:
                adm = t
            else:
                adm = wpq_heap[0]
                a_wpq_stall += adm - t
                stall += adm - t
            busy = chfree[chan]
            start = adm if adm > busy else busy
            persisted = start + BUS + BEAT * nw
            chfree[chan] = persisted
            media_done = persisted
            if extra:
                for _ in range(extra):
                    free = banks[0]
                    begin = persisted if persisted > free else free
                    media_done = begin + WSERV
                    heapreplace(banks, media_done)
            heappush(wpq_heap, media_done)
        return stall

    def step(limit_t, limit_i):
        nonlocal a_l1_hits, a_wpq_stall
        nonlocal a_med_lines, a_med_words, a_med_redund
        nonlocal a_committed, ns, n_te
        pc = core.pc
        now = core.time
        in_tx = core.in_tx
        txid = core.txid
        tx_index = core.tx_index
        tldv = tld[idx]
        pend = 0  # region._seq increments deferred within this epoch
        lim = limit_t if idx < limit_i else limit_t - 1
        try:
            while True:
                if pc >= n_ops:
                    return _DONE
                if now > lim:
                    return _YIELD
                k = kinds[pc]
                cost = OPOV
                if k == 2 or k == 4 or k == 5:  # ------------- Store
                    a = addrs[pc]
                    v = vals[pc]
                    base = a & line_mask
                    bucket = l1_sets[(base >> l1_shift) % l1_nsets]
                    line = bucket.get(base)
                    if line is not None:
                        bucket.move_to_end(base)
                        a_l1_hits += 1
                        cost += LAT_L1
                        dw = line.dirty_words
                        dw[a] = v
                    else:
                        access = hier_store(idx, a, v)
                        cost += access.latency
                        if access.hit_level == "pm":
                            cost += read_contention(a, now, idx)
                        wbs = access.writebacks
                        if wbs:
                            cost += posted_data(now, wbs)
                        dw = bucket[base].dirty_words
                    if k == 2:
                        # Static entry: media words/wear precomputed
                        # (bulk-applied at flush).
                        pass
                    else:
                        old = current_get(a)
                        if old is None:
                            old = media_get(a, 0)
                        la = la_col[pc]
                        p = (pre2_col[pc] ^ ((old & M) * _K1)) | 1
                        # Virgin sector: a word changes iff non-zero,
                        # and the first payload word is odd.
                        media_words[la] = p & M
                        changed = 1
                        w = (p + 1) & M
                        if w:
                            media_words[la + 8] = w
                            changed += 1
                        w = (p + 2) & M
                        if w:
                            media_words[la + 16] = w
                            changed += 1
                        w = (p + 3) & M
                        if w:
                            media_words[la + 24] = w
                            changed += 1
                        a_med_lines += 1
                        a_med_words += changed
                        sec = la >> 6
                        wear[sec] = wear_get(sec, 0) + 1
                        current[a] = v
                    pend += 1
                    ns += 1
                    # Log submit: one 4-word request, one sector (plus
                    # capacity-victim sectors when the on-PM buffer is
                    # full — fwb's posted data lines; base never fills
                    # it).  The log line itself is never resident.
                    extra = 0
                    if onpm_lines and len(onpm_lines) >= onpm_cap:
                        extra = evict_lru()
                    while wpq_heap and wpq_heap[0] <= now:
                        heappop(wpq_heap)
                    if len(wpq_heap) < wpq_cap:
                        adm = now
                    else:
                        adm = wpq_heap[0]
                        a_wpq_stall += adm - now
                        cost += adm - now
                    busy = chfree[chan]
                    start = adm if adm > busy else busy
                    persisted = start + BUS4
                    chfree[chan] = persisted
                    log_done = persisted
                    for _ in range(extra + 1):
                        free = banks[0]
                        begin = persisted if persisted > free else free
                        log_done = begin + WSERV
                        heapreplace(banks, log_done)
                    heappush(wpq_heap, log_done)
                    if is_fwb:
                        if log_done > lr_get(base, 0):
                            log_ready[base] = log_done
                        if log_done > tldv:
                            tldv = log_done
                        fwb_dirty_add(base)
                        owner[base] = idx
                        if now - scheme._last_fwb >= FWB_INTERVAL_CYCLES:
                            # mfwb flushes lines and truncates records;
                            # it reads neither the seq nor the cursor,
                            # so the deferred sync can wait.
                            cost += mfwb(idx, now)
                    else:
                        # base: immediate write-through of the line's
                        # dirty words — statically {a: v}.
                        dw.clear()
                        if media_get(a, 0) != v:
                            media_words[a] = v
                            a_med_lines += 1
                            a_med_words += 1
                            sec = a >> 6
                            wear[sec] = wear_get(sec, 0) + 1
                            dsec = 1
                        else:
                            a_med_redund += 1
                            dsec = 0
                        extra = 0
                        if onpm_lines and len(onpm_lines) >= onpm_cap:
                            extra = evict_lru()
                        dsec += extra
                        while wpq_heap and wpq_heap[0] <= now:
                            heappop(wpq_heap)
                        if len(wpq_heap) < wpq_cap:
                            adm = now
                        else:
                            adm = wpq_heap[0]
                            a_wpq_stall += adm - now
                            cost += adm - now
                        busy = chfree[chan]
                        start = adm if adm > busy else busy
                        persisted = start + BUS1
                        chfree[chan] = persisted
                        media_done = persisted
                        if dsec:
                            for _ in range(dsec):
                                free = banks[0]
                                begin = (
                                    persisted if persisted > free else free
                                )
                                media_done = begin + WSERV
                                heapreplace(banks, media_done)
                        heappush(wpq_heap, media_done)
                        if log_done > tldv:
                            tldv = log_done
                elif k == 3:  # ------------------------------- Load
                    a = addrs[pc]
                    base = a & line_mask
                    bucket = l1_sets[(base >> l1_shift) % l1_nsets]
                    line = bucket.get(base)
                    if line is not None:
                        bucket.move_to_end(base)
                        a_l1_hits += 1
                        cost += LAT_L1
                    else:
                        access = hier_load(idx, a)
                        cost += access.latency
                        if access.hit_level == "pm":
                            cost += read_contention(a, now, idx)
                        wbs = access.writebacks
                        if wbs:
                            cost += posted_data(now, wbs)
                elif k == 0 or k == 6:  # ------------------- TxBegin
                    tx_index += 1
                    txid = (tx_index % 65535) + 1
                    in_tx = True
                elif k == 1 or k == 7:  # --------------------- TxEnd
                    stall = tldv - now
                    if stall < 0:
                        stall = 0
                    # Sync the deferred log state: the bound tuple
                    # call reads the global seq and this tid's cursor.
                    if pend:
                        region._seq += pend
                        pend = 0
                    rcur[tid] = cur_te[pc]
                    words = persist_commit_tuple(tid, txid)
                    t2 = now + stall
                    n_te += 1
                    wit = iter(words.items())
                    wa0, wv0 = next(wit)
                    wa1, wv1 = next(wit)
                    changed = 0
                    if wv0:
                        media_words[wa0] = wv0
                        changed = 1
                    if wv1:
                        media_words[wa1] = wv1
                        changed += 1
                    if changed:
                        a_med_lines += 1
                        a_med_words += changed
                        sec = wa0 >> 6
                        wear[sec] = wear_get(sec, 0) + 1
                        dsec = 1
                    else:
                        a_med_redund += 1
                        dsec = 0
                    extra = 0
                    if onpm_lines and len(onpm_lines) >= onpm_cap:
                        extra = evict_lru()
                    dsec += extra
                    while wpq_heap and wpq_heap[0] <= t2:
                        heappop(wpq_heap)
                    if len(wpq_heap) < wpq_cap:
                        adm = t2
                    else:
                        adm = wpq_heap[0]
                        a_wpq_stall += adm - t2
                        stall += adm - t2
                    busy = chfree[chan]
                    start = adm if adm > busy else busy
                    persisted = start + BUS2
                    chfree[chan] = persisted
                    media_done = persisted
                    if dsec:
                        for _ in range(dsec):
                            free = banks[0]
                            begin = persisted if persisted > free else free
                            media_done = begin + WSERV
                            heapreplace(banks, media_done)
                    heappush(wpq_heap, media_done)
                    stall += media_done - t2
                    tldv = 0
                    if is_fwb:
                        await_truncate_append((tid, txid))
                    # base: the exact engine's discard_tx here is a
                    # no-op on the fused path (no records created).
                    cost += stall
                    in_tx = False
                    committed_add((tid, tx_index))
                    a_committed += 1
                else:  # kind 8: exact raises SimulationError
                    return _EXACT
                pc += 1
                now += cost
        finally:
            core.pc = pc
            core.time = now
            core.in_tx = in_tx
            core.txid = txid
            core.tx_index = tx_index
            tld[idx] = tldv
            if pend:
                region._seq += pend

    def flush():
        c = counters
        if a_l1_hits:
            c[k_l1_hits] += a_l1_hits
        n_log = ns + n_te
        n_data = (0 if is_fwb else ns) + a_p_data
        mcw = n_log + n_data
        if mcw:
            c["mc.writes"] += mcw
        if n_log:
            c["mc.writes.log"] += n_log
            c["pm.requests.log"] += n_log
            c["pm.request_bytes.log"] += 32 * ns + 16 * n_te
        if n_data:
            c["mc.writes.data"] += n_data
            c["pm.requests.data"] += n_data
            c["pm.request_bytes.data"] += 8 * (n_data - a_p_data) + a_p_bytes
        if a_wpq_stall:
            c["mc.wpq_stall_cycles"] += a_wpq_stall
        # Every fused write-through request hits the empty/absent fast
        # path (one buffer request, one immediate eviction); posted
        # eviction data lines linger in the buffer, so they add a
        # request without a line eviction (capacity victims are
        # accounted live by the bound ``_evict_lru``).
        onr = n_log + n_data - a_p_data
        if onr or a_p_data:
            c["onpm.requests"] += onr + a_p_data
        if onr:
            c["onpm.line_evictions"] += onr
        coal = 3 * ns + n_te + a_p_coal
        if coal:
            c["onpm.coalesced_words"] += coal
        med_l = a_med_lines + lp.n_static
        if med_l:
            c["media.line_writes"] += med_l
            c["media.sector_writes"] += med_l
            c["media.word_writes"] += a_med_words + lp.nz_static
        if a_med_redund:
            c["media.redundant_line_writes"] += a_med_redund
        if a_committed:
            c["engine.committed"] += a_committed
        if ns:
            c["region.requests"] += ns
            c["region.entries.undo_redo"] += ns
            # The exact engine leaves the logging thread's record
            # table present but empty after truncation.
            records.setdefault(tid, {})
            media_words.update(lp.media)
            for sec2, cnt in lp.wear.items():
                wear[sec2] = wear_get(sec2, 0) + cnt
        if ns or n_te:
            rcur[tid] = lp.end_cur

    return step, flush


def _make_stepper(exact, idx, core, cpre, pre):
    """Build the fused ``(step, flush)`` pair for one core, or a
    fallback-reason string when the scheme/core combination is not
    eligible for fusion."""
    scheme = exact.scheme
    stype = type(scheme)
    # Dispatch on the design's declared columnar profile.  The spec
    # must be the class's *own* (``__dict__`` lookup): a subclass that
    # merely inherits a fused design's spec has unknown hot-path
    # behaviour and falls back to the exact engine.
    spec = stype.__dict__.get("spec")
    profile = spec.columnar_profile if spec is not None else None
    if profile == "wal_base" or profile == "wal_fwb":
        return _make_wal_stepper(exact, idx, core, cpre, pre,
                                 profile == "wal_fwb")
    if profile == "silo":
        # Ablation configurations take different exact-engine branches
        # (no merging / silent stores logged); only the paper's default
        # configuration is fused.
        if not all(b.merging for b in scheme._bufs):
            return "silo_ablation"
        if not all(g.ignore_silent for g in scheme._gens):
            return "silo_ablation"
        sk = 2
    elif profile == "morlog":
        sk = 3
    elif profile == "lad":
        sk = 4
    elif profile == "swlog":
        sk = 5
    elif profile == "wrap":
        sk = 6
    elif isinstance(scheme, PolicyScheme):
        # Spec-driven designs have no fused kernel yet; attribute the
        # fallback to the catalog entry, not the shared class.
        return "unfused_design:" + scheme.name
    else:
        return "unfused_scheme:" + stype.__name__
    return _make_buffered_stepper(exact, idx, core, cpre, sk)


def _make_buffered_stepper(exact, idx, core, cpre, sk):
    """Fused stepper for the per-entry logging designs: silo
    (``sk == 2``), morlog (``sk == 3``), lad (``sk == 4``), swlog
    (``sk == 5``) and wrap (``sk == 6``)."""
    scheme = exact.scheme
    system = exact.system
    tid = core.tid
    fuse_ovf = True
    if sk != 2:
        # The fused log serializers need the thread's log area.
        try:
            lbase, larea = system.region.layout.thread_log_area(tid)
        except AddressError:
            return "no_log_area"
    else:
        # Silo only touches the region on overflow; without a valid
        # area the overflow falls back to the bound handler (which
        # raises from the exact serializer, like the exact engine).
        try:
            lbase, larea = system.region.layout.thread_log_area(tid)
        except AddressError:
            lbase = larea = 0
            fuse_ovf = False
    if not 0 <= tid < 256:
        # LogEntry.__new__ below bypasses the constructor's field
        # validation; an oversized tid must raise from the exact path.
        return "oversized_tid"

    kinds = cpre.kinds
    addrs = cpre.addrs
    vals = cpre.vals
    olds = cpre.olds
    n_ops = core.n_ops

    # ------------------------------------------------------------------
    # Hoisted live state (shared with the exact engine and all designs)
    # ------------------------------------------------------------------
    mc = system.mc
    chan = idx % mc.channels
    wpq_heap = mc._wpq_heaps[chan]
    wpq_cap = mc._wpq_capacity
    chfree = mc._channel_free
    banks = mc._bank_free[chan]
    BUS = mc._bus_overhead
    BEAT = mc._bus_beat
    WSERV = mc._write_service
    submit_write = mc.submit_write  # bound fallback for bail-out cases
    submit_read = mc.submit_read

    pm = system.pm
    onpm = pm.buffer
    onpm_lines = onpm._lines
    onpm_get = onpm_lines.get
    onpm_move = onpm_lines.move_to_end
    onpm_pop = onpm_lines.popitem
    onpm_cap = onpm._capacity
    onpm_mask = onpm._line_mask
    media_words = pm.media._words
    media_get = media_words.get
    wear = pm.media._sector_wear
    wear_get = wear.get

    hier = system.hierarchy
    l1 = hier._l1[idx]
    l1_sets = l1._sets
    l1_shift = l1._line_shift
    l1_nsets = l1._num_sets
    k_l1_hits = l1._k_hits
    LAT_L1 = hier._lat_l1
    line_mask = hier._line_mask
    hier_store = exact._hier_store
    hier_load = exact._hier_load
    writeback_line = hier.writeback_line
    read_contention = exact._read_contention
    on_evictions = exact._scheme_on_evictions

    region = system.region
    rcur = region._cursor
    rcur_get = rcur.get
    records = region._records
    persist_commit_tuple = region.persist_commit_tuple

    counters = system.stats.counters
    current = exact._current
    current_get = current.get
    committed_add = exact._committed.add
    OPOV = exact._op_overhead
    M = WORD_MASK
    new_entry = LogEntry.__new__

    # ------------------------------------------------------------------
    # Scheme-specific hoists
    # ------------------------------------------------------------------
    if sk == 2:
        gen = scheme._gens[idx]
        buf = scheme._bufs[idx]
        sentries = buf._entries
        sentries_get = sentries.get
        k_buf_merged = buf._k_merged
        k_buf_appended = buf._k_appended
        k_buf_peak = buf._k_peak
        SILO_CAP = scheme._buf_capacity
        BUF_LAT = scheme._buf_latency
        controller_free = scheme._controller_free
        last_store = scheme._last_store
        tx_total = scheme._tx_total
        overflowed = scheme._overflowed
        overflowed_add = overflowed.add
        handle_overflow = scheme._handle_overflow
        discard_tx = region.discard_tx
        tx_log_counts_append = scheme.tx_log_counts.append
        HANDSHAKE = system.config.commit_handshake_cycles
        spop = sentries.popitem
        OB = scheme._overflow_batch
        OLINE = ONPM_LINE_SIZE
        if OB > OVERFLOW_BATCH_ENTRIES:
            # A larger batch would serialize as several requests; keep
            # the single-request fusion for the paper configuration.
            fuse_ovf = False
    if sk == 3:
        mbuf = scheme._bufs[idx]
        mentries = mbuf._entries
        mentries_get = mentries.get
        mpop = mentries.popitem
        k_mbuf_merged = mbuf._k_merged
        k_mbuf_appended = mbuf._k_appended
        k_mbuf_peak = mbuf._k_peak
        flush_oldest = scheme._flush_oldest
        mlog_ready = scheme._log_ready
        mlr_get = mlog_ready.get
        ml_unpersisted_add = scheme._unpersisted_lines[idx].add
        ml_unpersisted_discard = scheme._unpersisted_lines[idx].discard
        ml_dirty_add = scheme._dirty_lines[idx].add
        await_truncate = scheme._await_truncate
    if sk == 4:
        slots = scheme._slots
        slots_discard = slots.discard
        captured = scheme._captured
        captured_pop = captured.pop
        tx_lines = scheme._tx_lines[idx]
        fb_lines = scheme._fallback_lines[idx]
        fb_txs = scheme._fallback_txs
        lad_in_tx = scheme._in_tx
        HANDSHAKE = system.config.commit_handshake_cycles
    if sk == 5:
        sw_data_done = scheme._tx_data_done
    if sk == 6:
        wr_log_done = scheme._tx_log_done
        wr_entries = scheme._tx_entries[idx]
        wr_entries_append = wr_entries.append
        wr_uncommitted = scheme._uncommitted_lines
        wr_my_unc = wr_uncommitted[idx]
        wr_my_unc_add = wr_my_unc.add
        wr_in_tx = scheme._in_tx

    # ------------------------------------------------------------------
    # Counter accumulators (flushed once, value-guarded)
    # ------------------------------------------------------------------
    a_l1_hits = 0
    a_mc_log = 0
    a_mc_data = 0
    a_wpq_stall = 0
    a_pmreq_log = 0
    a_pmbytes_log = 0
    a_pmreq_data = 0
    a_pmbytes_data = 0
    a_onpm_req = 0
    a_onpm_coal = 0
    a_onpm_evict = 0
    a_med_lines = 0
    a_med_secs = 0
    a_med_words = 0
    a_med_redund = 0
    a_committed = 0
    a_reg_req = 0
    a_reg_ur = 0
    a_reg_undo = 0
    logged_any = False
    # silo
    a_seen = 0
    a_ignored = 0
    a_entries = 0
    a_merged = 0
    a_appended = 0
    a_peak = 0
    a_flushdisc = 0
    a_inplace = 0
    a_ncommits = 0
    a_ovf = 0
    a_ovf_entries = 0
    # lad
    a_captured = 0
    a_fallbacks = 0
    # wrap
    a_reg_redo = 0
    a_wrap_reads = 0

    # ------------------------------------------------------------------
    # Fused MC+PM submit helpers.  Every fused request covers words of
    # one 64-byte-aligned, <=64-byte window (log entries are serialized
    # on aligned cursors with <=52-byte spans, commit tuples are 16
    # bytes, cacheline flushes stay inside their line), so it touches
    # exactly one on-PM buffer line and one media sector.
    # ------------------------------------------------------------------
    def evict1():
        """Fused LRU victim eviction: pop the oldest on-PM buffer line
        and apply its words to the media with data-comparison-write.
        Returns the sector count (an evicted 256-byte line can span up
        to four 64-byte media sectors)."""
        nonlocal a_onpm_evict, a_med_lines, a_med_secs
        nonlocal a_med_words, a_med_redund
        pending = onpm_pop(last=False)[1]
        a_onpm_evict += 1
        changed = 0
        secs = set()
        secs_add = secs.add
        for wa, wv in pending.items():
            if media_get(wa, 0) != wv:
                media_words[wa] = wv
                changed += 1
                secs_add(wa >> 6)
        if changed:
            a_med_lines += 1
            a_med_words += changed
            nsec = len(secs)
            a_med_secs += nsec
            for sector in secs:
                wear[sector] = wear_get(sector, 0) + 1
            return nsec
        a_med_redund += 1
        return 0

    def wt_submit(t, words):
        """Write-through submit (kind-agnostic).  Returns
        ``(admission_stall, media_done)`` or ``None`` when the target
        on-PM buffer line is resident (the request must coalesce with
        buffered words — the caller re-runs it through the bound
        ``submit_write``, which accounts everything live)."""
        nonlocal a_onpm_req, a_onpm_coal, a_onpm_evict
        nonlocal a_med_lines, a_med_secs, a_med_words
        nonlocal a_med_redund, a_wpq_stall
        a0 = next(iter(words))
        extra = 0
        if onpm_lines:
            if (a0 & onpm_mask) in onpm_lines:
                return None
            if len(onpm_lines) >= onpm_cap:
                extra = evict1()
        a_onpm_req += 1
        nw = len(words)
        if nw > 1:
            a_onpm_coal += nw - 1
        a_onpm_evict += 1
        changed = 0
        for wa, wv in words.items():
            if media_get(wa, 0) != wv:
                media_words[wa] = wv
                changed += 1
        if changed:
            a_med_lines += 1
            a_med_secs += 1
            a_med_words += changed
            sector = a0 >> 6
            wear[sector] = wear_get(sector, 0) + 1
            sectors = extra + 1
        else:
            a_med_redund += 1
            sectors = extra
        while wpq_heap and wpq_heap[0] <= t:
            heappop(wpq_heap)
        adm = t if len(wpq_heap) < wpq_cap else wpq_heap[0]
        if adm > t:
            a_wpq_stall += adm - t
        busy = chfree[chan]
        start = adm if adm > busy else busy
        persisted = start + BUS + BEAT * nw
        chfree[chan] = persisted
        media_done = persisted
        if sectors:
            for _ in range(sectors):
                free = banks[0]
                begin = persisted if persisted > free else free
                media_done = begin + WSERV
                heapreplace(banks, media_done)
        heappush(wpq_heap, media_done)
        return adm - t, media_done

    def posted_submit(t, words, is_log=False):
        """Posted submit (no write-through): the line lingers in the
        on-PM buffer for coalescing.  Returns
        ``(admission_stall, persisted)``.  Used for data write-backs
        and for silo's batched overflow log request (whose words all
        land on one 256-byte on-PM buffer line by construction)."""
        nonlocal a_mc_data, a_pmreq_data, a_pmbytes_data
        nonlocal a_mc_log, a_pmreq_log, a_pmbytes_log
        nonlocal a_onpm_req, a_onpm_coal, a_wpq_stall
        nw = len(words)
        if is_log:
            a_pmreq_log += 1
            a_pmbytes_log += 8 * nw
        else:
            a_pmreq_data += 1
            a_pmbytes_data += 8 * nw
        a_onpm_req += 1
        a0 = next(iter(words))
        b = a0 & onpm_mask
        pending = onpm_get(b)
        extra = 0
        if pending is None:
            if len(onpm_lines) >= onpm_cap:
                extra = evict1()
            onpm_lines[b] = dict(words)
            if nw > 1:
                a_onpm_coal += nw - 1
        else:
            onpm_move(b)
            pending.update(words)
            a_onpm_coal += nw
        if is_log:
            a_mc_log += 1
        else:
            a_mc_data += 1
        while wpq_heap and wpq_heap[0] <= t:
            heappop(wpq_heap)
        adm = t if len(wpq_heap) < wpq_cap else wpq_heap[0]
        if adm > t:
            a_wpq_stall += adm - t
        busy = chfree[chan]
        start = adm if adm > busy else busy
        persisted = start + BUS + BEAT * nw
        chfree[chan] = persisted
        media_done = persisted
        if extra:
            for _ in range(extra):
                free = banks[0]
                begin = persisted if persisted > free else free
                media_done = begin + WSERV
                heapreplace(banks, media_done)
        heappush(wpq_heap, media_done)
        return adm - t, persisted

    # ------------------------------------------------------------------
    # Fused eviction kernel.  Dirty L3 victims surfacing mid-epoch run
    # the scheme's ``on_evictions`` semantics inline: every fused
    # design posts its victim lines through ``posted_submit`` (the
    # exact hook's ``submit_write(kind="data")`` + admission stall),
    # with the scheme-specific twists replicated per ``sk``.
    # ------------------------------------------------------------------
    if sk == 2:
        # Silo additionally sets the flush bit on buffered entries
        # whose words just reached PM (live counters, like the exact
        # hook; all buffers are merging dicts in the fused config).
        silo_bufs = scheme._bufs

        def fused_evict(t, wbs):
            stall = 0
            for _lb, words in wbs:
                r = posted_submit(t, words)
                stall += r[0]
                for buf2 in silo_bufs:
                    entries2 = buf2._entries
                    if not entries2:
                        continue
                    marked = 0
                    lookup = entries2.get
                    for wa in words:
                        e2 = lookup(wa)
                        if e2 is not None and not e2.flush_bit:
                            e2.flush_bit = True
                            marked += 1
                    if marked:
                        counters[buf2._k_flush_bits] += marked
            return stall

    elif sk == 3:
        # Morlog must persist a victim line's buffered log entries
        # before its data leaves the cache domain (log-before-data);
        # that rare path runs the exact hook for the whole batch.
        ml_unpersisted_all = scheme._unpersisted_lines

        def fused_evict(t, wbs):
            for lb, _w in wbs:
                for s2 in ml_unpersisted_all:
                    if lb in s2:
                        return on_evictions(idx, t, wbs)
            stall = 0
            for _lb, words in wbs:
                r = posted_submit(t, words)
                stall += r[0]
            return stall

    elif sk == 4:
        # LAD absorbs victims of captured lines into the slot's merge
        # dict (no PM traffic, no stall).
        def fused_evict(t, wbs):
            stall = 0
            for lb, words in wbs:
                if lb in slots:
                    c2 = captured.get(lb)
                    if c2 is None:
                        captured[lb] = dict(words)
                    else:
                        c2.update(words)
                else:
                    r = posted_submit(t, words)
                    stall += r[0]
            return stall

    elif sk == 6:
        # WrAP drops victims of lines belonging to open transactions
        # (the redo log is the durable copy).
        def fused_evict(t, wbs):
            unc = set()
            for c2 in range(len(wr_in_tx)):
                if wr_in_tx[c2]:
                    unc |= wr_uncommitted[c2]
            stall = 0
            for lb, words in wbs:
                if lb in unc:
                    continue
                r = posted_submit(t, words)
                stall += r[0]
            return stall

    else:
        # swlog: the default LoggingScheme hook, a plain posted write
        # per victim line.
        def fused_evict(t, wbs):
            stall = 0
            for _lb, words in wbs:
                r = posted_submit(t, words)
                stall += r[0]
            return stall

    # ------------------------------------------------------------------
    # The fused stepper
    # ------------------------------------------------------------------
    def step(limit_t, limit_i):
        nonlocal a_l1_hits, a_mc_log, a_mc_data
        nonlocal a_pmreq_log, a_pmbytes_log
        nonlocal a_pmreq_data, a_pmbytes_data
        nonlocal a_committed, a_reg_req, a_reg_ur, a_reg_undo, logged_any
        nonlocal a_seen, a_ignored, a_entries, a_merged, a_appended
        nonlocal a_peak, a_flushdisc, a_inplace, a_ncommits
        nonlocal a_ovf, a_ovf_entries
        nonlocal a_captured, a_fallbacks
        nonlocal a_reg_redo, a_wrap_reads
        pc = core.pc
        now = core.time
        in_tx = core.in_tx
        txid = core.txid
        tx_index = core.tx_index
        # Single-compare epoch horizon: yield when now > limit_t, or at
        # now == limit_t when this core loses the index tie.  Integer
        # times make the tie foldable into the bound (inf - 1 == inf
        # keeps the last remaining core unbounded).
        lim = limit_t if idx < limit_i else limit_t - 1
        try:
            while True:
                if pc >= n_ops:
                    return _DONE
                if now > lim:
                    return _YIELD
                k = kinds[pc]
                cost = OPOV
                if k == 2 or k == 4:  # --------------------------- Store
                    a = addrs[pc]
                    v = vals[pc]
                    if k == 2:
                        old = olds[pc]
                    else:
                        old = current_get(a)
                        if old is None:
                            old = media_get(a, 0)
                    base = a & line_mask
                    bucket = l1_sets[(base >> l1_shift) % l1_nsets]
                    line = bucket.get(base)
                    if line is not None:
                        bucket.move_to_end(base)
                        a_l1_hits += 1
                        cost += LAT_L1
                        line.dirty_words[a] = v
                    else:
                        access = hier_store(idx, a, v)
                        cost += access.latency
                        if access.hit_level == "pm":
                            cost += read_contention(a, now, idx)
                        wbs = access.writebacks
                        if wbs:
                            cost += fused_evict(now, wbs)

                    if sk == 2:  # silo
                        tx_total[idx] += 1
                        last_store[idx] = now
                        a_seen += 1
                        if old == v:
                            a_ignored += 1
                        else:
                            a_entries += 1
                            e = sentries_get(a)
                            if e is not None:
                                if e.tid != tid or e.txid != txid:
                                    return _EXACT  # exact raises
                                e.new = v & M
                                a_merged += 1
                            else:
                                if len(sentries) >= SILO_CAP:
                                    if fuse_ovf:
                                        # _handle_overflow fused: pop
                                        # the oldest batch, serialize
                                        # the undo halves as one
                                        # 256-byte-window posted log
                                        # request, post unflushed new
                                        # data per cacheline.
                                        cf = controller_free[idx]
                                        ostall = (
                                            cf - now
                                            - _CONTROLLER_QUEUE_CYCLES
                                        )
                                        if ostall < 0:
                                            ostall = 0
                                        start = now + ostall + BUF_LAT
                                        nb = len(sentries)
                                        if nb > OB:
                                            nb = OB
                                        new_data = {}
                                        cursor = rcur_get(tid, 0)
                                        rem = cursor % OLINE
                                        if rem:
                                            cursor += OLINE - rem
                                        words = {}
                                        for _ in range(nb):
                                            e2 = spop(last=False)[1]
                                            if not e2.flush_bit:
                                                new_data[e2.addr] = e2.new
                                                e2.flush_bit = True
                                            la = lbase + (cursor % larea)
                                            e2.log_addr = la
                                            p = (
                                                (e2.tid << 56)
                                                ^ (e2.txid << 40)
                                                ^ e2.addr
                                                ^ (e2.old * _K1)
                                                ^ (e2.new * _K2)
                                            ) | 1
                                            w = la & -8
                                            end = la + 18
                                            while w < end:
                                                words[w] = p & M
                                                p += 1
                                                w += 8
                                            cursor += 18
                                        rcur[tid] = cursor
                                        region._seq += nb
                                        a_reg_req += 1
                                        a_reg_undo += nb
                                        logged_any = True
                                        r = posted_submit(
                                            start, words, True
                                        )
                                        free = r[1]
                                        if free < start:
                                            free = start
                                        if new_data:
                                            grouped = {}
                                            for ea, ev in new_data.items():
                                                gb = ea & line_mask
                                                g = grouped.get(gb)
                                                if g is None:
                                                    grouped[gb] = {ea: ev}
                                                else:
                                                    g[ea] = ev
                                            for w2 in grouped.values():
                                                r = posted_submit(
                                                    start, w2
                                                )
                                                if r[1] > free:
                                                    free = r[1]
                                        back = free - BUF_LAT
                                        if back > controller_free[idx]:
                                            controller_free[idx] = back
                                        overflowed_add((tid, txid))
                                        a_ovf += 1
                                        a_ovf_entries += nb
                                        cost += ostall
                                    else:
                                        cost += handle_overflow(
                                            idx, tid, txid, now
                                        )
                                e = new_entry(LogEntry)
                                e.tid = tid
                                e.txid = txid
                                e.addr = a
                                e.old = old & M
                                e.new = v & M
                                e.flush_bit = False
                                e.log_addr = 0
                                sentries[a] = e
                                a_appended += 1
                                occ = len(sentries)
                                if occ > a_peak:
                                    a_peak = occ
                    elif sk == 3:  # morlog
                        e = mentries_get(a)
                        if e is not None:
                            if e.tid != tid or e.txid != txid:
                                return _EXACT  # exact raises
                            e.new = v & M
                            a_merged += 1
                        else:
                            if len(mentries) >= MORPH_BUFFER_ENTRIES:
                                # _flush_oldest fused: pop the two
                                # oldest, serialize as one 64-byte
                                # pair request, write through.
                                e0 = mpop(last=False)[1]
                                e1 = mpop(last=False)[1]
                                cursor = rcur_get(tid, 0)
                                rem = cursor & 63
                                if rem:
                                    cursor += 64 - rem
                                la = lbase + (cursor % larea)
                                p = (
                                    (e0.tid << 56)
                                    ^ (e0.txid << 40)
                                    ^ e0.addr
                                    ^ (e0.old * _K1)
                                    ^ (e0.new * _K2)
                                ) | 1
                                words = {
                                    la: p & M,
                                    la + 8: (p + 1) & M,
                                    la + 16: (p + 2) & M,
                                    la + 24: (p + 3) & M,
                                }
                                cursor += 26
                                la1 = lbase + (cursor % larea)
                                p1 = (
                                    (e1.tid << 56)
                                    ^ (e1.txid << 40)
                                    ^ e1.addr
                                    ^ (e1.old * _K1)
                                    ^ (e1.new * _K2)
                                ) | 1
                                w = la1 & -8
                                end = la1 + 26
                                while w < end:
                                    words[w] = p1 & M
                                    p1 += 1
                                    w += 8
                                cursor += 26
                                rcur[tid] = cursor
                                region._seq += 2
                                a_reg_req += 1
                                a_reg_ur += 2
                                logged_any = True
                                r = wt_submit(now, words)
                                if r is None:
                                    tkt = submit_write(
                                        now, words, kind="log",
                                        write_through=True,
                                        channel=idx,
                                    )
                                    cost += tkt[0]
                                    fdone = tkt[1]
                                else:
                                    a_mc_log += 1
                                    a_pmreq_log += 1
                                    a_pmbytes_log += 8 * len(words)
                                    cost += r[0]
                                    fdone = r[1]
                                for e2 in (e0, e1):
                                    ln = e2.addr & -64
                                    if fdone > mlr_get(ln, 0):
                                        mlog_ready[ln] = fdone
                                    ml_unpersisted_discard(ln)
                            e = new_entry(LogEntry)
                            e.tid = tid
                            e.txid = txid
                            e.addr = a
                            e.old = old & M
                            e.new = v & M
                            e.flush_bit = False
                            e.log_addr = 0
                            mentries[a] = e
                            a_appended += 1
                            occ = len(mentries)
                            if occ > a_peak:
                                a_peak = occ
                        ml_unpersisted_add(base)
                        ml_dirty_add(base)
                    elif sk == 4:  # lad
                        if base not in tx_lines:
                            tx_lines.add(base)
                            if len(slots) < CAPTURE_LINES:
                                slots.add(base)
                                a_captured += 1
                            else:
                                fb_lines.add(base)
                                fb_txs.add((tid, txid))
                                a_fallbacks += 1
                                read_done = submit_read(
                                    now, base, channel=idx
                                )
                                cost += read_done - now
                        if base in fb_lines:
                            # one undo entry: aligned cursor, 18-byte
                            # slot -> three payload words
                            cursor = rcur_get(tid, 0)
                            rem = cursor & 63
                            if rem:
                                cursor += 64 - rem
                            la = lbase + (cursor % larea)
                            p = (
                                (tid << 56)
                                ^ (txid << 40)
                                ^ a
                                ^ ((old & M) * _K1)
                                ^ ((v & M) * _K2)
                            ) | 1
                            words = {
                                la: p & M,
                                la + 8: (p + 1) & M,
                                la + 16: (p + 2) & M,
                            }
                            rcur[tid] = cursor + 18
                            region._seq += 1
                            a_reg_req += 1
                            a_reg_undo += 1
                            logged_any = True
                            r = wt_submit(now, words)
                            if r is None:
                                tkt = submit_write(
                                    now, words, kind="log",
                                    write_through=True, channel=idx,
                                )
                                cost += tkt[0] + (tkt[1] - now)
                            else:
                                a_mc_log += 1
                                a_pmreq_log += 1
                                a_pmbytes_log += 24
                                cost += r[0] + (r[1] - now)
                    elif sk == 5:  # swlog
                        # Build the entry (inline CPU work), persist
                        # one 26-byte undo+redo record (span-64
                        # cursor -> the line's first four words),
                        # clwb+sfence it, then write the data line
                        # through and fence again.
                        stall = LOG_BUILD_CYCLES
                        cursor = rcur_get(tid, 0)
                        rem = cursor & 63
                        if rem:
                            cursor += 64 - rem
                        la = lbase + (cursor % larea)
                        p = (
                            (tid << 56)
                            ^ (txid << 40)
                            ^ a
                            ^ ((old & M) * _K1)
                            ^ ((v & M) * _K2)
                        ) | 1
                        words = {
                            la: p & M,
                            la + 8: (p + 1) & M,
                            la + 16: (p + 2) & M,
                            la + 24: (p + 3) & M,
                        }
                        rcur[tid] = cursor + 26
                        region._seq += 1
                        a_reg_req += 1
                        a_reg_ur += 1
                        logged_any = True
                        t2 = now + stall
                        r = wt_submit(t2, words)
                        if r is None:
                            tkt = submit_write(
                                t2, words, kind="log",
                                write_through=True, channel=idx,
                            )
                            stall += tkt[0] + (tkt[1] - t2)
                        else:
                            a_mc_log += 1
                            a_pmreq_log += 1
                            a_pmbytes_log += 32
                            stall += r[0] + (r[1] - t2)
                        stall += FENCE_CYCLES
                        lw = writeback_line(idx, base)
                        if lw:
                            t2 = now + stall
                            r = wt_submit(t2, lw)
                            if r is None:
                                tkt = submit_write(
                                    t2, lw, kind="data",
                                    write_through=True, channel=idx,
                                )
                                stall += tkt[0] + (tkt[1] - t2)
                            else:
                                a_mc_data += 1
                                a_pmreq_data += 1
                                a_pmbytes_data += 8 * len(lw)
                                stall += r[0] + (r[1] - t2)
                        stall += FENCE_CYCLES
                        t2 = now + stall
                        if t2 > sw_data_done[idx]:
                            sw_data_done[idx] = t2
                        cost += stall
                    else:  # wrap
                        # One 18-byte redo record (span-64 cursor ->
                        # three words) written through; commit waits
                        # on the persist, the store itself only pays
                        # the admission stall.
                        cursor = rcur_get(tid, 0)
                        rem = cursor & 63
                        if rem:
                            cursor += 64 - rem
                        la = lbase + (cursor % larea)
                        p = (
                            (tid << 56)
                            ^ (txid << 40)
                            ^ a
                            ^ ((old & M) * _K1)
                            ^ ((v & M) * _K2)
                        ) | 1
                        words = {
                            la: p & M,
                            la + 8: (p + 1) & M,
                            la + 16: (p + 2) & M,
                        }
                        rcur[tid] = cursor + 18
                        region._seq += 1
                        a_reg_req += 1
                        a_reg_redo += 1
                        logged_any = True
                        r = wt_submit(now, words)
                        if r is None:
                            tkt = submit_write(
                                now, words, kind="log",
                                write_through=True, channel=idx,
                            )
                            cost += tkt[0]
                            pd = tkt[1]
                        else:
                            a_mc_log += 1
                            a_pmreq_log += 1
                            a_pmbytes_log += 24
                            cost += r[0]
                            pd = r[1]
                        if pd > wr_log_done[idx]:
                            wr_log_done[idx] = pd
                        e = new_entry(LogEntry)
                        e.tid = tid
                        e.txid = txid
                        e.addr = a
                        e.old = old & M
                        e.new = v & M
                        e.flush_bit = False
                        e.log_addr = la
                        wr_entries_append(e)
                        wr_my_unc_add(base)
                    current[a] = v
                elif k == 3:  # ---------------------------------- Load
                    a = addrs[pc]
                    base = a & line_mask
                    bucket = l1_sets[(base >> l1_shift) % l1_nsets]
                    line = bucket.get(base)
                    if line is not None:
                        bucket.move_to_end(base)
                        a_l1_hits += 1
                        cost += LAT_L1
                    else:
                        access = hier_load(idx, a)
                        cost += access.latency
                        if access.hit_level == "pm":
                            cost += read_contention(a, now, idx)
                        wbs = access.writebacks
                        if wbs:
                            cost += fused_evict(now, wbs)
                elif k == 0 or k == 6:  # --------------------- TxBegin
                    if sk == 2 and (k == 6 or gen._txid is not None):
                        return _EXACT  # exact raises TransactionError
                    tx_index += 1
                    txid = (tx_index % 65535) + 1
                    in_tx = True
                    if sk == 2:
                        gen._txid_register = txid
                        gen._tid = tid
                        gen._txid = txid
                        tx_total[idx] = 0
                    elif sk == 4:
                        lad_in_tx[idx] = True
                    elif sk == 6:
                        wr_in_tx[idx] = True
                elif k == 1 or k == 7:  # ----------------------- TxEnd
                    if sk == 2:  # silo
                        if k == 7 or gen._txid is None:
                            return _EXACT  # exact raises
                        gen._tid = None
                        gen._txid = None
                        tx_log_counts_append(
                            (tx_total[idx], len(sentries))
                        )
                        stall = HANDSHAKE
                        cf = controller_free[idx]
                        backlog = cf - now
                        if backlog > _CONTROLLER_QUEUE_CYCLES:
                            stall += backlog - _CONTROLLER_QUEUE_CYCLES
                        drained = list(sentries.values())
                        sentries.clear()
                        discarded = 0
                        new_data = {}
                        for e in drained:
                            if e.flush_bit:
                                discarded += 1
                            else:
                                new_data[e.addr] = e.new
                        if discarded:
                            a_flushdisc += discarded
                        start = (now if now > cf else cf) + BUF_LAT
                        free = start
                        if new_data:
                            grouped = {}
                            for ea, ev in new_data.items():
                                gb = ea & line_mask
                                g = grouped.get(gb)
                                if g is None:
                                    grouped[gb] = {ea: ev}
                                else:
                                    g[ea] = ev
                            for w2 in grouped.values():
                                r = posted_submit(start, w2)
                                if r[1] > free:
                                    free = r[1]
                        back = free - BUF_LAT
                        if back > controller_free[idx]:
                            controller_free[idx] = back
                        a_inplace += len(new_data)
                        a_ncommits += 1
                        if (tid, txid) in overflowed:
                            overflowed.discard((tid, txid))
                            discard_tx(tid, txid)
                        cost += stall
                    elif sk == 3:  # morlog
                        drained = list(mentries.values())
                        mentries.clear()
                        flush_stall = 0
                        done = now
                        if drained:
                            cursor = rcur_get(tid, 0)
                            n = len(drained)
                            i2 = 0
                            while i2 < n:
                                e0 = drained[i2]
                                rem = cursor & 63
                                if rem:
                                    cursor += 64 - rem
                                la = lbase + (cursor % larea)
                                p = (
                                    (e0.tid << 56)
                                    ^ (e0.txid << 40)
                                    ^ e0.addr
                                    ^ (e0.old * _K1)
                                    ^ (e0.new * _K2)
                                ) | 1
                                words = {
                                    la: p & M,
                                    la + 8: (p + 1) & M,
                                    la + 16: (p + 2) & M,
                                    la + 24: (p + 3) & M,
                                }
                                cursor += 26
                                region._seq += 1
                                if i2 + 1 < n:
                                    e1 = drained[i2 + 1]
                                    la1 = lbase + (cursor % larea)
                                    p1 = (
                                        (e1.tid << 56)
                                        ^ (e1.txid << 40)
                                        ^ e1.addr
                                        ^ (e1.old * _K1)
                                        ^ (e1.new * _K2)
                                    ) | 1
                                    w = la1 & -8
                                    end = la1 + 26
                                    while w < end:
                                        words[w] = p1 & M
                                        p1 += 1
                                        w += 8
                                    cursor += 26
                                    region._seq += 1
                                r = wt_submit(now, words)
                                if r is None:
                                    tkt = submit_write(
                                        now, words, kind="log",
                                        write_through=True, channel=idx,
                                    )
                                    flush_stall += tkt[0]
                                    pd = tkt[1]
                                else:
                                    a_mc_log += 1
                                    a_pmreq_log += 1
                                    a_pmbytes_log += 8 * len(words)
                                    flush_stall += r[0]
                                    pd = r[1]
                                if pd > done:
                                    done = pd
                                i2 += 2
                            rcur[tid] = cursor
                            a_reg_req += (n + 1) // 2
                            a_reg_ur += n
                            logged_any = True
                            for e0 in drained:
                                ln = e0.addr & -64
                                if done > mlr_get(ln, 0):
                                    mlog_ready[ln] = done
                                ml_unpersisted_discard(ln)
                        stall = flush_stall + (
                            done - now if done > now else 0
                        )
                        words = persist_commit_tuple(tid, txid)
                        t2 = now + stall
                        r = wt_submit(t2, words)
                        if r is None:
                            tkt = submit_write(
                                t2, words, kind="log",
                                write_through=True, channel=idx,
                            )
                            stall += tkt[0] + (tkt[1] - t2)
                        else:
                            a_mc_log += 1
                            a_pmreq_log += 1
                            a_pmbytes_log += 16
                            stall += r[0] + (r[1] - t2)
                        await_truncate.append((tid, txid))
                        cost += stall
                    elif sk == 4:  # lad
                        stall = 0
                        groups = []
                        for ln in sorted(tx_lines):
                            w2 = writeback_line(idx, ln)
                            merged2 = captured_pop(ln, None)
                            if w2 or merged2:
                                stall += PREPARE_CYCLES_PER_LINE
                                if merged2 is None:
                                    combined = w2
                                else:
                                    combined = dict(merged2)
                                    if w2:
                                        combined.update(w2)
                                groups.append(combined)
                        stall += HANDSHAKE
                        t2 = now + stall
                        for w2 in groups:
                            r = posted_submit(t2, w2)
                            stall += r[0]
                        for ln in tx_lines:
                            slots_discard(ln)
                        if (tid, txid) in fb_txs:
                            fb_txs.discard((tid, txid))
                            # discard_tx: no records on the fused path
                        tx_lines.clear()
                        fb_lines.clear()
                        lad_in_tx[idx] = False
                        cost += stall
                    elif sk == 5:  # swlog
                        # Everything already persisted per store; wait
                        # it out, seal the commit tuple, fence.
                        stall = sw_data_done[idx] - now
                        if stall < 0:
                            stall = 0
                        words = persist_commit_tuple(tid, txid)
                        t2 = now + stall
                        r = wt_submit(t2, words)
                        if r is None:
                            tkt = submit_write(
                                t2, words, kind="log",
                                write_through=True, channel=idx,
                            )
                            stall += tkt[0] + (tkt[1] - t2)
                        else:
                            a_mc_log += 1
                            a_pmreq_log += 1
                            a_pmbytes_log += 16
                            stall += r[0] + (r[1] - t2)
                        stall += FENCE_CYCLES
                        sw_data_done[idx] = 0
                        # discard_tx: no records on the fused path
                        cost += stall
                    else:  # wrap
                        # Redo commit rule: wait for the tx's logs,
                        # seal the tuple, then the background copier
                        # reads every log entry back and posts its
                        # data word (stall unaffected).
                        stall = wr_log_done[idx] - now
                        if stall < 0:
                            stall = 0
                        words = persist_commit_tuple(tid, txid)
                        t2 = now + stall
                        r = wt_submit(t2, words)
                        if r is None:
                            tkt = submit_write(
                                t2, words, kind="log",
                                write_through=True, channel=idx,
                            )
                            stall += tkt[0] + (tkt[1] - t2)
                        else:
                            a_mc_log += 1
                            a_pmreq_log += 1
                            a_pmbytes_log += 16
                            stall += r[0] + (r[1] - t2)
                        t3 = now + stall
                        for e in wr_entries:
                            submit_read(t3, e.log_addr, channel=idx)
                            a_wrap_reads += 1
                            posted_submit(t3, {e.addr: e.new})
                        # discard_tx: no records on the fused path
                        wr_entries.clear()
                        wr_my_unc.clear()
                        wr_in_tx[idx] = False
                        cost += stall
                    in_tx = False
                    committed_add((tid, tx_index))
                    a_committed += 1
                else:
                    # kind 5 (store outside the 48-bit field: LogEntry
                    # validation — or lad's and silo's silent handling
                    # of it — must come from the exact code) and kind 8
                    # (store outside tx / unknown op: exact raises).
                    return _EXACT
                pc += 1
                now += cost
        finally:
            core.pc = pc
            core.time = now
            core.in_tx = in_tx
            core.txid = txid
            core.tx_index = tx_index

    # ------------------------------------------------------------------
    # End-of-run counter flush.  Every add is value-guarded so the key
    # set matches the exact engine's (Counter creates keys on += 0);
    # silo.inplace_words is guarded on commits instead of value because
    # the exact engine creates that key unconditionally per commit.
    # ------------------------------------------------------------------
    def flush():
        c = counters
        if a_l1_hits:
            c[k_l1_hits] += a_l1_hits
        mcw = a_mc_log + a_mc_data
        if mcw:
            c["mc.writes"] += mcw
        if a_mc_log:
            c["mc.writes.log"] += a_mc_log
        if a_mc_data:
            c["mc.writes.data"] += a_mc_data
        if a_wpq_stall:
            c["mc.wpq_stall_cycles"] += a_wpq_stall
        if a_pmreq_log:
            c["pm.requests.log"] += a_pmreq_log
            c["pm.request_bytes.log"] += a_pmbytes_log
        if a_pmreq_data:
            c["pm.requests.data"] += a_pmreq_data
            c["pm.request_bytes.data"] += a_pmbytes_data
        if a_onpm_req:
            c["onpm.requests"] += a_onpm_req
        if a_onpm_coal:
            c["onpm.coalesced_words"] += a_onpm_coal
        if a_onpm_evict:
            c["onpm.line_evictions"] += a_onpm_evict
        if a_med_lines:
            c["media.line_writes"] += a_med_lines
            c["media.sector_writes"] += a_med_secs
            c["media.word_writes"] += a_med_words
        if a_med_redund:
            c["media.redundant_line_writes"] += a_med_redund
        if a_committed:
            c["engine.committed"] += a_committed
        if a_reg_req:
            c["region.requests"] += a_reg_req
        if a_reg_ur:
            c["region.entries.undo_redo"] += a_reg_ur
        if a_reg_undo:
            c["region.entries.undo"] += a_reg_undo
        if a_reg_redo:
            c["region.entries.redo"] += a_reg_redo
        if logged_any:
            # The exact engine leaves the logging thread's record table
            # present but empty after commit/finalize truncation.
            records.setdefault(tid, {})
        if sk == 2:
            if a_seen:
                c["loggen.stores_seen"] += a_seen
            if a_ignored:
                c["loggen.ignored"] += a_ignored
            if a_entries:
                c["loggen.entries"] += a_entries
            if a_merged:
                c[k_buf_merged] += a_merged
            if a_appended:
                c[k_buf_appended] += a_appended
            if a_peak > c.get(k_buf_peak, 0):
                c[k_buf_peak] = a_peak
            if a_flushdisc:
                c["silo.flushbit_discarded"] += a_flushdisc
            if a_ovf:
                c["silo.overflows"] += a_ovf
                c["silo.overflow_entries"] += a_ovf_entries
            if a_ncommits:
                c["silo.inplace_words"] += a_inplace
        elif sk == 3:
            if a_merged:
                c[k_mbuf_merged] += a_merged
            if a_appended:
                c[k_mbuf_appended] += a_appended
            if a_peak > c.get(k_mbuf_peak, 0):
                c[k_mbuf_peak] = a_peak
        elif sk == 4:
            if a_captured:
                c["lad.captured_lines"] += a_captured
            if a_fallbacks:
                c["lad.fallbacks"] += a_fallbacks
        elif sk == 6:
            if a_wrap_reads:
                c["wrap.log_reads"] += a_wrap_reads

    return step, flush


def _fused_finalize(exact):
    """Fused morlog/fwb end-of-run finalize: flush every core's dirty
    lines as posted data writes and truncate the awaiting commits,
    exactly as the schemes' own ``finalize`` would at the same time
    (``end = max(core times)``, the value ``_finish`` passes it).

    Runs *before* ``TransactionEngine._finish``; the scheme's real
    ``finalize`` then iterates already-cleared dirty sets and an empty
    truncation list, returning ``now`` unchanged — a natural no-op —
    and ``mc.drain_completion()`` (computed afterwards) picks up the
    flushed writes.  Proof-of-identity conditions: the per-line flush
    order is the exact one (cores ascending, lines sorted), each
    victim line's words stay inside one 256-byte on-PM buffer line,
    and the posted-path arithmetic below is the same fused form the
    eviction kernel uses (tickets are discarded by the exact finalize,
    so only counters and queue/bank state matter).
    """
    scheme = exact.scheme
    system = exact.system
    end = 0
    for c in exact._cores:
        if c.time > end:
            end = c.time
    mc = system.mc
    nch = mc.channels
    wpq_heaps = mc._wpq_heaps
    wpq_cap = mc._wpq_capacity
    chfree = mc._channel_free
    bank_free = mc._bank_free
    BUS = mc._bus_overhead
    BEAT = mc._bus_beat
    WSERV = mc._write_service
    pm = system.pm
    onpm = pm.buffer
    onpm_lines = onpm._lines
    onpm_get = onpm_lines.get
    onpm_move = onpm_lines.move_to_end
    onpm_cap = onpm._capacity
    onpm_mask = onpm._line_mask
    evict_lru = onpm._evict_lru  # live counters (rare capacity victims)
    writeback_line = system.hierarchy.writeback_line
    counters = system.stats.counters
    a_mc = a_bytes = a_onpm = a_coal = a_stall = 0
    for core, lines in enumerate(scheme._dirty_lines):
        if not lines:
            continue
        chan = core % nch
        wpq_heap = wpq_heaps[chan]
        banks = bank_free[chan]
        for line in sorted(lines):
            words = writeback_line(core, line)
            if not words:
                continue
            nw = len(words)
            a_mc += 1
            a_bytes += 8 * nw
            a_onpm += 1
            b = line & onpm_mask
            pending = onpm_get(b)
            extra = 0
            if pending is None:
                if len(onpm_lines) >= onpm_cap:
                    extra = evict_lru()
                onpm_lines[b] = dict(words)
                if nw > 1:
                    a_coal += nw - 1
            else:
                onpm_move(b)
                pending.update(words)
                a_coal += nw
            while wpq_heap and wpq_heap[0] <= end:
                heappop(wpq_heap)
            if len(wpq_heap) < wpq_cap:
                adm = end
            else:
                adm = wpq_heap[0]
                a_stall += adm - end
            busy = chfree[chan]
            start = adm if adm > busy else busy
            persisted = start + BUS + BEAT * nw
            chfree[chan] = persisted
            media_done = persisted
            if extra:
                for _ in range(extra):
                    free = banks[0]
                    begin = persisted if persisted > free else free
                    media_done = begin + WSERV
                    heapreplace(banks, media_done)
            heappush(wpq_heap, media_done)
        lines.clear()
    if a_mc:
        counters["mc.writes"] += a_mc
        counters["mc.writes.data"] += a_mc
        counters["pm.requests.data"] += a_mc
        counters["pm.request_bytes.data"] += a_bytes
        counters["onpm.requests"] += a_onpm
    if a_coal:
        counters["onpm.coalesced_words"] += a_coal
    if a_stall:
        counters["mc.wpq_stall_cycles"] += a_stall
    scheme._truncate_awaiting()


class ColumnarEngine:
    """Batched columnar scheduler producing bit-identical results.

    Wraps a :class:`TransactionEngine` built from the same arguments;
    the fast path drives the exact engine's own core/scheme/system
    state through the epoch scheduler and finishes through
    ``TransactionEngine._finish``, so the :class:`RunResult` assembly
    (drain, finalize, committed set, tx_log_counts) is shared code.
    """

    def __init__(
        self,
        system,
        scheme,
        trace,
        crash_plan=None,
        fault_plan=None,
    ) -> None:
        self._exact = TransactionEngine(
            system, scheme, trace, crash_plan=crash_plan, fault_plan=fault_plan
        )
        self.system = system
        self.scheme = scheme
        self.trace = trace
        self.crash_plan = crash_plan
        self.fault_plan = fault_plan
        # Diagnostics (not part of RunResult): whether the whole run
        # was delegated to the exact engine, and the op/core mix.
        self.delegated = False
        self.delegated_reason: Optional[str] = None
        self.fast_ops = 0
        self.exact_ops = 0
        self.fused_cores = 0
        self.total_cores = len(self._exact._cores)
        #: ``reason tag -> exact-op count``: ``core:<why>`` for ops of
        #: cores that never got a fused kernel, ``op:<why>`` for
        #: mid-epoch per-op fallbacks of fused cores.
        self.fallback_reasons: dict = {}

    @property
    def fault_ledger(self):
        return self._exact.fault_ledger

    def _delegation_reason(self) -> Optional[str]:
        if self.crash_plan is not None:
            return "crash_plan"
        if self.fault_plan is not None:
            return "fault_plan"
        if self.system.obs is not None:
            return "observability"
        if self.system.pm.media._poisoned:
            return "poisoned_media"
        return None

    def engine_stats(self) -> dict:
        """Batching diagnostics for benchmarks and CI gates."""
        total = self.fast_ops + self.exact_ops
        return {
            "engine": "columnar",
            "delegated": self.delegated,
            "delegated_reason": self.delegated_reason,
            "fast_ops": self.fast_ops,
            "exact_ops": self.exact_ops,
            "fused_cores": self.fused_cores,
            "total_cores": self.total_cores,
            "fast_fraction": (self.fast_ops / total) if total else 0.0,
            "fallback_reasons": dict(self.fallback_reasons),
        }

    def run(self):
        reason = self._delegation_reason()
        if reason is not None:
            self.delegated = True
            self.delegated_reason = reason
            return self._exact.run()
        # Same collector pause as TransactionEngine.run (see there).
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._run_fast()
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run_fast(self):
        exact = self._exact
        self.system.install_image(self.trace.initial_image)
        cores = exact._cores
        pre = _trace_pre(self.trace, cores)
        steppers = []
        flushes = []
        tags = []
        fused = 0
        for idx, c in enumerate(cores):
            made = _make_stepper(exact, idx, c, pre.cores[idx], pre)
            if isinstance(made, str):
                tags.append("core:" + made)
                made = _make_generic_stepper(exact, idx, c)
            else:
                tags.append(None)
                fused += 1
            steppers.append(made[0])
            flushes.append(made[1])
        self.fused_cores = fused

        total = sum(c.n_ops for c in cores)
        n_exact = 0
        fb = self.fallback_reasons
        pcores = pre.cores
        heap = [(c.time, i) for i, c in enumerate(cores) if c.pc < c.n_ops]
        heapify(heap)
        exact_step = exact._step
        while heap:
            _, i = heappop(heap)
            if heap:
                limit_t, limit_i = heap[0]
            else:
                limit_t, limit_i = _INF, 0
            c = cores[i]
            st = steppers[i](limit_t, limit_i)
            while st == _EXACT:
                tag = tags[i]
                if tag is None:
                    tag = _OP_REASON[pcores[i].kinds[c.pc]]
                fb[tag] = fb.get(tag, 0) + 1
                exact_step(i, c)
                n_exact += 1
                if c.pc >= c.n_ops:
                    st = _DONE
                    break
                now = c.time
                if now > limit_t or (now == limit_t and i > limit_i):
                    st = _YIELD
                    break
                st = steppers[i](limit_t, limit_i)
            if st == _YIELD:
                heappush(heap, (c.time, i))

        for flush in flushes:
            flush()
        stype = type(self.scheme)
        if stype is MorLogScheme or stype is FWBScheme:
            _fused_finalize(exact)
        exact._global_op += total
        self.exact_ops = n_exact
        self.fast_ops = total - n_exact
        return exact._finish(False)
