"""Restart-and-continue after a crash.

After a power failure and recovery, a real application restarts and
re-executes the work that did not commit.  :func:`resume_trace` builds
the *continuation trace*: for every thread, the transactions that had
not committed when power failed (recovery revoked any partial effects
of the first uncommitted one, so re-running it from scratch is exactly
correct).  The continuation runs on a fresh engine against the
recovered system; afterwards the PM image must equal a crash-free
run's — which ``tests/integration/test_restart.py`` asserts for every
design.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import SimulationError
from repro.designs.scheme import LoggingScheme, SchemeRegistry
from repro.sim.engine import TransactionEngine
from repro.sim.results import RunResult
from repro.sim.system import System
from repro.trace.trace import ThreadTrace, Trace


def continuation_trace(trace: Trace, result: RunResult) -> Trace:
    """The per-thread suffix of uncommitted transactions.

    Commits are in-order per thread, so the committed set of each
    thread is a prefix; anything after it must re-execute.
    """
    if not result.crashed:
        raise SimulationError("continuation requested for a run without a crash")
    threads = []
    for thread in trace.threads:
        committed_prefix = 0
        while (thread.tid, committed_prefix) in result.committed:
            committed_prefix += 1
        # No holes: a committed transaction after an uncommitted one
        # would violate per-thread ordering.
        for index in range(committed_prefix, len(thread.transactions)):
            if (thread.tid, index) in result.committed:
                raise SimulationError(
                    f"thread {thread.tid} committed tx {index} after an "
                    "uncommitted one"
                )
        threads.append(
            ThreadTrace(thread.tid, thread.transactions[committed_prefix:])
        )
    # The recovered PM image *is* the initial state of the restart; the
    # trace carries no image so the engine won't overwrite it.
    return Trace(threads, initial_image={}, name=f"{trace.name}+restart")


def resume_trace(
    system: System,
    trace: Trace,
    result: RunResult,
    scheme: Optional[LoggingScheme] = None,
) -> RunResult:
    """Re-execute the uncommitted suffix on the recovered ``system``.

    A fresh scheme instance is used (the old one's volatile state died
    with the power); the battery-backed structures were drained by the
    crash path, so starting clean is exactly the hardware's state.
    """
    remaining = continuation_trace(trace, result)
    scheme = scheme if scheme is not None else SchemeRegistry.create(
        result.scheme, system
    )
    engine = TransactionEngine(system, scheme, remaining)
    return engine.run()
