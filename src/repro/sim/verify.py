"""The atomic-durability checker.

Atomic durability (Section II-A) demands that after a crash and
recovery the PM data region contains *exactly* the writes of the
committed transactions: every committed transaction's final values are
present (durability) and no uncommitted value survives (atomicity).

The checker rebuilds the expected image by applying the committed
transactions of each thread in program order on top of the initial
image, then compares every word any transaction ever touched.  The
paper's isolation assumption (software locking, Section III-A) means
threads never write the same words, so per-thread ordering suffices.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.sim.system import System
from repro.trace.trace import Trace


def expected_image(
    trace: Trace, committed: Set[Tuple[int, int]]
) -> Dict[int, int]:
    """Initial image overlaid with the committed transactions' writes.

    ``committed`` holds ``(tid, tx_index)`` pairs as produced by the
    engine.
    """
    image = dict(trace.initial_image)
    for thread in trace.threads:
        for index, tx in enumerate(thread.transactions):
            if (thread.tid, index) in committed:
                image.update(tx.final_values())
    return image


def check_atomic_durability(
    system: System, trace: Trace, committed: Set[Tuple[int, int]]
) -> List[Tuple[int, int, int]]:
    """Compare the recovered PM image to the expected one.

    Returns a list of mismatches ``(addr, actual, expected)``; an empty
    list means atomic durability held.
    """
    expected = expected_image(trace, committed)
    media = system.pm.media
    mismatches: List[Tuple[int, int, int]] = []
    for addr in sorted(trace.touched_words()):
        want = expected.get(addr, 0)
        got = media.read_word(addr)
        if got != want:
            mismatches.append((addr, got, want))
    return mismatches
