"""Exporting results to JSON/CSV for external analysis and archiving."""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Mapping, TextIO, Union

from repro.sim.results import RunResult


def _json_safe(value: float):
    """NaN (undefined ratio) serializes as JSON null, not bare ``NaN``."""
    return None if value != value else value


def result_to_dict(result: RunResult) -> Dict[str, object]:
    """Flatten one run into a JSON-compatible record."""
    return {
        "scheme": result.scheme,
        "trace": result.trace_name,
        "cores": result.config.cores,
        "memory_channels": result.config.memory_channels,
        "committed": result.committed_count,
        "total_transactions": result.total_transactions,
        "end_cycle": result.end_cycle,
        "runtime_seconds": result.runtime_seconds,
        "throughput_tx_per_sec": result.throughput_tx_per_sec,
        "media_writes": result.media_writes,
        "writes_per_transaction": _json_safe(result.writes_per_transaction),
        "media_waf": _json_safe(result.media_waf),
        "crashed": result.crashed,
        "traffic": result.traffic_breakdown(),
        "stats": {k: v for k, v in result.stats.items()},
    }


def grid_to_json(
    per_workload: Mapping[str, Mapping[str, RunResult]]
) -> List[Dict[str, object]]:
    """Flatten a (workload x scheme) grid into one record per run."""
    records = []
    for workload, results in sorted(per_workload.items()):
        for scheme, result in sorted(results.items()):
            record = result_to_dict(result)
            record["workload"] = workload
            records.append(record)
    return records


_CSV_COLUMNS = (
    "workload",
    "scheme",
    "cores",
    "committed",
    "end_cycle",
    "throughput_tx_per_sec",
    "media_writes",
    "writes_per_transaction",
    "media_waf",
)


def grid_to_csv(per_workload: Mapping[str, Mapping[str, RunResult]]) -> str:
    """Render a grid as CSV text with one row per run."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_CSV_COLUMNS, lineterminator="\n")
    writer.writeheader()
    for record in grid_to_json(per_workload):
        writer.writerow({column: record[column] for column in _CSV_COLUMNS})
    return buffer.getvalue()


def write_json(
    per_workload: Mapping[str, Mapping[str, RunResult]],
    target: Union[str, TextIO],
) -> None:
    """Write a grid's records to a JSON file or stream."""
    records = grid_to_json(per_workload)
    if isinstance(target, (str, bytes)):
        with open(target, "w") as handle:
            json.dump(records, handle, indent=2)
    else:
        json.dump(records, target, indent=2)


def write_csv(
    per_workload: Mapping[str, Mapping[str, RunResult]],
    target: Union[str, TextIO],
) -> None:
    """Write a grid's rows to a CSV file or stream."""
    text = grid_to_csv(per_workload)
    if isinstance(target, (str, bytes)):
        with open(target, "w") as handle:
            handle.write(text)
    else:
        target.write(text)
