"""Post-processing of simulation results: comparisons and exports."""

from repro.analysis.compare import ComparisonRow, compare_results, speedup_table
from repro.analysis.export import (
    grid_to_csv,
    grid_to_json,
    result_to_dict,
    write_csv,
    write_json,
)
from repro.analysis.wear import (
    WearReport,
    compare_wear,
    hottest_sectors,
    wear_report,
)

__all__ = [
    "ComparisonRow",
    "compare_results",
    "speedup_table",
    "grid_to_csv",
    "grid_to_json",
    "result_to_dict",
    "write_csv",
    "write_json",
    "WearReport",
    "compare_wear",
    "hottest_sectors",
    "wear_report",
]
