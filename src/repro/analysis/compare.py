"""Comparing runs across designs: speedups, reductions, geomeans."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping

from repro.common.errors import ReproError
from repro.sim.results import RunResult


@dataclass(frozen=True)
class ComparisonRow:
    """One design compared against a baseline run."""

    scheme: str
    throughput_speedup: float
    write_reduction: float
    end_cycle: int
    media_writes: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "throughput_speedup": self.throughput_speedup,
            "write_reduction": self.write_reduction,
            "end_cycle": self.end_cycle,
            "media_writes": self.media_writes,
        }


def compare_results(
    results: Mapping[str, RunResult], baseline: str = "base"
) -> List[ComparisonRow]:
    """Compare every run to the baseline run.

    ``throughput_speedup`` > 1 means faster than the baseline;
    ``write_reduction`` is the fraction of the baseline's media writes
    avoided (0.765 = the paper's "reduces the memory writes by 76.5%").
    """
    if baseline not in results:
        raise ReproError(f"baseline {baseline!r} missing from results")
    base = results[baseline]
    if base.throughput_tx_per_sec <= 0 or base.media_writes <= 0:
        raise ReproError("baseline run has no measurable work")
    rows = []
    for scheme, result in results.items():
        rows.append(
            ComparisonRow(
                scheme=scheme,
                throughput_speedup=(
                    result.throughput_tx_per_sec / base.throughput_tx_per_sec
                ),
                write_reduction=1.0 - result.media_writes / base.media_writes,
                end_cycle=result.end_cycle,
                media_writes=result.media_writes,
            )
        )
    rows.sort(key=lambda row: row.throughput_speedup, reverse=True)
    return rows


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0 for an empty input)."""
    values = [v for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ReproError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup_table(
    per_workload: Mapping[str, Mapping[str, RunResult]],
    baseline: str = "base",
    metric: str = "throughput_tx_per_sec",
) -> Dict[str, Dict[str, float]]:
    """``{workload: {scheme: metric/baseline}}`` plus a ``geomean`` row."""
    table: Dict[str, Dict[str, float]] = {}
    for workload, results in per_workload.items():
        base_value = float(getattr(results[baseline], metric))
        if base_value <= 0:
            raise ReproError(f"baseline metric is zero for {workload!r}")
        table[workload] = {
            scheme: float(getattr(result, metric)) / base_value
            for scheme, result in results.items()
        }
    if table:
        schemes = next(iter(table.values())).keys()
        table["geomean"] = {
            scheme: geomean(row[scheme] for row in list(table.values()))
            for scheme in schemes
        }
    return table
