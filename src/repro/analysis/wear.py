"""PM wear/endurance analysis.

The paper's first stated cost of conventional hardware logging is that
extra log writes "exacerbate the write endurance of PM and hence
shorten the PM lifetime" (Section I).  This module turns the media's
per-sector wear profile into that argument: total wear, hot-spot
concentration, and a first-order lifetime estimate.

The lifetime model: PCM cells endure ``CELL_ENDURANCE`` writes; a
region dies when its most-written sector does; so estimated lifetime is
proportional to ``endurance / peak_write_rate``.  Relative lifetimes
across designs (same run length, same workload) are what matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.common.errors import ReproError
from repro.sim.results import RunResult
from repro.sim.system import System

#: Per-cell write endurance of phase-change memory (order of 1e8).
CELL_ENDURANCE = 10**8


@dataclass(frozen=True)
class WearReport:
    """Wear statistics of one run.

    Two lifetime views: *leveled* assumes the device wear-levels (the
    realistic PCM case, where lifetime is set by the total write
    volume — the paper's framing: fewer writes, longer lifetime), and
    *unleveled* is bounded by the hottest sector (relevant when a
    design concentrates writes, e.g. per-store flushing of a hot line).
    """

    total_writes: int
    sectors_touched: int
    peak_writes: int
    mean_writes: float
    #: Fraction of all writes landing on the hottest 1% of sectors.
    hot_spot_share: float
    #: Peak sector writes per committed transaction (unleveled rate).
    peak_per_transaction: float
    #: Total sector writes per committed transaction (leveled rate).
    total_per_transaction: float

    def relative_lifetime(self, other: "WearReport") -> float:
        """How much longer this run's wear-leveled PM lasts than
        ``other``'s (the paper's "reduces writes -> improves lifetime")."""
        if self.total_per_transaction <= 0:
            return float("inf")
        return other.total_per_transaction / self.total_per_transaction

    def relative_unleveled_lifetime(self, other: "WearReport") -> float:
        """Lifetime ratio if nothing levels the hottest sector."""
        if self.peak_per_transaction <= 0:
            return float("inf")
        return other.peak_per_transaction / self.peak_per_transaction

    def estimated_lifetime_transactions(self, capacity_sectors: int) -> float:
        """Transactions until a wear-leveled region of
        ``capacity_sectors`` exhausts its cells."""
        if self.total_per_transaction <= 0:
            return float("inf")
        budget = CELL_ENDURANCE * capacity_sectors
        return budget / self.total_per_transaction


def wear_report(system: System, result: RunResult) -> WearReport:
    """Summarize the media wear a run left behind."""
    profile = system.pm.media.wear_profile()
    if not profile:
        return WearReport(0, 0, 0, 0.0, 0.0, 0.0, 0.0)
    counts = sorted(profile.values(), reverse=True)
    total = sum(counts)
    hot = max(1, len(counts) // 100)
    committed = max(result.committed_count, 1)
    return WearReport(
        total_writes=total,
        sectors_touched=len(counts),
        peak_writes=counts[0],
        mean_writes=total / len(counts),
        hot_spot_share=sum(counts[:hot]) / total,
        peak_per_transaction=counts[0] / committed,
        total_per_transaction=total / committed,
    )


def hottest_sectors(
    system: System, top: int = 10
) -> List[Tuple[int, int]]:
    """The ``top`` most-written sectors as ``(sector_addr, writes)``."""
    profile = system.pm.media.wear_profile()
    return sorted(profile.items(), key=lambda kv: kv[1], reverse=True)[:top]


def compare_wear(
    reports: Mapping[str, WearReport], baseline: str = "base"
) -> Dict[str, float]:
    """Relative PM lifetime of each design versus the baseline."""
    if baseline not in reports:
        raise ReproError(f"baseline {baseline!r} missing from wear reports")
    base = reports[baseline]
    return {
        scheme: report.relative_lifetime(base)
        for scheme, report in reports.items()
    }
