"""Histograms and per-phase cycle attribution.

The flat :class:`~repro.common.stats.Stats` counters answer "how
many"; this registry answers "how were they distributed" (WPQ
occupancy, stall latencies) and "where did the cycles go" (per-phase
attribution of every core's advance).  Like ``Stats`` it is threaded
through a run as one shared instance, surfaces in
:class:`~repro.sim.results.RunResult`, and merges across cells so
executor campaigns can roll whole grids up into one report.

Histograms use power-of-two buckets (bucket ``k`` holds values ``v``
with ``bit_length(v) == k``, i.e. ``2**(k-1) <= v < 2**k``, with
bucket 0 holding zeros): recording is one ``int.bit_length`` call and
one dict increment, cheap enough for per-request sites, and merging is
key-wise addition so aggregation across thousands of cells is exact.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Optional


class Histogram:
    """Power-of-two bucketed distribution of non-negative ints."""

    __slots__ = ("count", "total", "vmin", "vmax", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.vmin: Optional[int] = None
        self.vmax: Optional[int] = None
        self.buckets: Dict[int, int] = {}

    def record(self, value: int) -> None:
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value
        bucket = value.bit_length()
        buckets = self.buckets
        buckets[bucket] = buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        if other.vmin is not None and (self.vmin is None or other.vmin < self.vmin):
            self.vmin = other.vmin
        if other.vmax is not None and (self.vmax is None or other.vmax > self.vmax):
            self.vmax = other.vmax
        buckets = self.buckets
        for bucket, count in other.buckets.items():
            buckets[bucket] = buckets.get(bucket, 0) + count

    @staticmethod
    def bucket_bounds(bucket: int) -> str:
        """Human-readable value range of one bucket."""
        if bucket == 0:
            return "0"
        lo = 1 << (bucket - 1)
        hi = (1 << bucket) - 1
        return str(lo) if lo == hi else f"{lo}-{hi}"

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "Histogram":
        hist = cls()
        hist.count = int(data["count"])
        hist.total = int(data["sum"])
        hist.vmin = None if data["min"] is None else int(data["min"])
        hist.vmax = None if data["max"] is None else int(data["max"])
        hist.buckets = {int(k): int(v) for k, v in data["buckets"].items()}
        return hist

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, sum={self.total}, "
            f"min={self.vmin}, max={self.vmax})"
        )


class MetricsRegistry:
    """Named histograms plus per-phase cycle attribution for one run."""

    __slots__ = ("histograms", "phases")

    def __init__(self) -> None:
        self.histograms: Dict[str, Histogram] = {}
        #: ``{phase name: cycles attributed}``; phases are the engine's
        #: op classes (``op.store``…) plus crash/recovery phases.
        self.phases: Counter = Counter()

    def hist(self, name: str) -> Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        return hist

    def record(self, name: str, value: int) -> None:
        self.hist(name).record(value)

    def phase_add(self, name: str, cycles: int) -> None:
        self.phases[name] += cycles

    def merge(self, other: "MetricsRegistry") -> None:
        for name, hist in other.histograms.items():
            self.hist(name).merge(hist)
        self.phases.update(other.phases)

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "histograms": {
                name: hist.to_json_dict()
                for name, hist in sorted(self.histograms.items())
            },
            "phases": dict(sorted(self.phases.items())),
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "MetricsRegistry":
        registry = cls()
        for name, hist in data.get("histograms", {}).items():
            registry.histograms[name] = Histogram.from_json_dict(hist)
        registry.phases.update(data.get("phases", {}))
        return registry


def aggregate_metrics(
    registries: Iterable[Optional[MetricsRegistry]],
) -> Optional[MetricsRegistry]:
    """Merge per-run registries into one campaign roll-up (skipping
    runs that carried no metrics); ``None`` if nothing was recorded."""
    merged: Optional[MetricsRegistry] = None
    for registry in registries:
        if registry is None:
            continue
        if merged is None:
            merged = MetricsRegistry()
        merged.merge(registry)
    return merged
