"""Exporters: Chrome trace-event JSON (Perfetto-loadable) and text
summaries.

The Chrome trace-event format (the JSON ``traceEvents`` array) is what
``chrome://tracing`` and https://ui.perfetto.dev load directly, so one
``silo-repro trace`` run produces a file a browser can open.  Mapping:

* one *process* per run (pid 0), named ``<scheme>/<workload>``;
* one *thread* per core/channel (tid = core), plus tid ``999`` for
  device-side events with no issuing core (on-PM buffer evictions);
* simulated cycles convert to microseconds via the configured core
  frequency (``ts = cycle / (freq_ghz * 1000)``), so trace timelines
  read in real time units;
* events with a duration export as complete spans (``ph: "X"``),
  instant events as ``ph: "i"`` with thread scope.

Events are sorted by timestamp on export, which is also what makes the
golden-file test's monotonicity assertion meaningful.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.obs.events import TraceEvent

#: Synthetic Chrome tid for device-side events (``core == -1``).
DEVICE_TID = 999


def chrome_trace_dict(
    events: Sequence[TraceEvent],
    freq_ghz: float,
    process_name: str = "silo-repro",
    dropped: int = 0,
) -> Dict[str, object]:
    """Build the Chrome trace-event JSON object for one event stream."""
    scale = 1.0 / (freq_ghz * 1000.0)  # cycles -> microseconds
    trace_events: List[Dict[str, object]] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    tids = set()
    body: List[Dict[str, object]] = []
    for event in sorted(events, key=lambda e: (e.cycle, e.name, e.core)):
        tid = DEVICE_TID if event.core < 0 else event.core
        tids.add(tid)
        record: Dict[str, object] = {
            "name": event.name,
            "cat": event.name.split(".", 1)[0],
            "ts": event.cycle * scale,
            "pid": 0,
            "tid": tid,
        }
        if event.dur > 0:
            record["ph"] = "X"
            record["dur"] = event.dur * scale
        else:
            record["ph"] = "i"
            record["s"] = "t"
        if event.args:
            record["args"] = dict(event.args)
        body.append(record)
    for tid in sorted(tids):
        name = "device" if tid == DEVICE_TID else f"core {tid}"
        trace_events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": name},
            }
        )
    trace_events.extend(body)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "silo-repro",
            "freq_ghz": freq_ghz,
            "events": len(body),
            "events_dropped": dropped,
        },
    }


def result_trace_dict(result) -> Dict[str, object]:
    """Chrome trace JSON for one :class:`~repro.sim.results.RunResult`
    that was produced with event tracing enabled."""
    if result.events is None:
        raise ValueError(
            "run recorded no events: enable ObsConfig(events=True)"
        )
    return chrome_trace_dict(
        result.events,
        freq_ghz=result.config.freq_ghz,
        process_name=f"{result.scheme}/{result.trace_name}",
        dropped=result.events_dropped,
    )


def write_chrome_trace(result, path: str) -> str:
    """Write one run's Chrome trace JSON to ``path``; returns it."""
    with open(path, "w") as handle:
        json.dump(result_trace_dict(result), handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def format_phase_profile(metrics, title: str = "per-phase cycle attribution") -> str:
    """Text summary of a registry's per-phase cycle attribution."""
    # Imported here: repro.harness.report imports nothing from obs, so
    # the dependency points one way only.
    from repro.harness.report import format_table

    total = sum(metrics.phases.values())
    rows = []
    for phase, cycles in sorted(
        metrics.phases.items(), key=lambda item: -item[1]
    ):
        share = 100.0 * cycles / total if total else 0.0
        rows.append([phase, cycles, f"{share:5.1f}%"])
    rows.append(["total", total, "100.0%" if total else "0.0%"])
    return format_table(["phase", "cycles", "share"], rows, title=title)
