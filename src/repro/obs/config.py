"""Observability configuration.

One frozen :class:`ObsConfig` selects which observability channels a
run records.  It travels with the cell spec through the executor (and
therefore into the result-cache key), so an observed run and an
unobserved run of the same cell never share a cache entry.

The default configuration disables everything: components then hold
``obs = None`` and the hot paths pay exactly one ``is not None`` check
per instrumentation site, keeping ``end_cycle`` and every counter
bit-identical to an uninstrumented build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

#: Default cap on recorded events: a runaway trace must not exhaust
#: memory; overflow is counted, never silently discarded.
DEFAULT_MAX_EVENTS = 200_000


@dataclass(frozen=True)
class ObsConfig:
    """Which observability channels to record for one run.

    ``events`` records the cycle-stamped structured event stream (the
    Chrome-trace source); ``metrics`` records histograms and per-phase
    cycle attribution.  ``max_events`` bounds the event list; events
    beyond the cap are counted as dropped.
    """

    events: bool = False
    metrics: bool = False
    max_events: int = DEFAULT_MAX_EVENTS

    @property
    def enabled(self) -> bool:
        return self.events or self.metrics

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "events": self.events,
            "metrics": self.metrics,
            "max_events": self.max_events,
        }

    @classmethod
    def from_json_dict(cls, data: Optional[Dict[str, object]]) -> Optional["ObsConfig"]:
        if data is None:
            return None
        return cls(
            events=bool(data.get("events", False)),
            metrics=bool(data.get("metrics", False)),
            max_events=int(data.get("max_events", DEFAULT_MAX_EVENTS)),
        )
