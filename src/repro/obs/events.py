"""The cycle-stamped structured event stream.

Events are the raw material of the Chrome-trace exporter and of any
future event-level validation (the "concrete evidence from the machine
under test" that persistency debugging needs).  Each event carries:

* ``cycle`` — simulated cycle at which it begins;
* ``name`` — dotted taxonomy name (``mc.write.log``, ``wpq.stall``,
  ``logbuf.overflow``, ``crash.power_failure`` …; see MODEL.md §9);
* ``core`` — issuing core/channel, or ``-1`` for device-side events
  with no issuing core (e.g. on-PM buffer evictions);
* ``dur`` — span length in cycles (0 = instant event);
* ``args`` — optional small payload dict (word counts, occupancies).

A :class:`TraceEvent` is a ``NamedTuple``: events are recorded on hot
paths when tracing is on, and tuple construction is markedly cheaper
than a dataclass.  The stream is bounded by ``max_events``; overflow
increments :attr:`EventTrace.dropped` instead of growing without bound.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional


class TraceEvent(NamedTuple):
    """One structured, cycle-stamped event."""

    cycle: int
    name: str
    core: int
    dur: int = 0
    args: Optional[dict] = None


class EventTrace:
    """Bounded, append-only event stream for one run."""

    __slots__ = ("events", "limit", "dropped")

    def __init__(self, limit: int) -> None:
        self.events: List[TraceEvent] = []
        self.limit = limit
        self.dropped = 0

    def emit(
        self,
        cycle: int,
        name: str,
        core: int,
        dur: int = 0,
        args: Optional[dict] = None,
    ) -> None:
        events = self.events
        if len(events) < self.limit:
            events.append(TraceEvent(cycle, name, core, dur, args))
        else:
            self.dropped += 1

    def __len__(self) -> int:
        return len(self.events)

    def counts_by_name(self) -> dict:
        """``{event name: occurrences}`` over the recorded stream."""
        counts: dict = {}
        for event in self.events:
            counts[event.name] = counts.get(event.name, 0) + 1
        return counts
