"""``repro.obs`` — the structured observability layer.

One :class:`Observability` instance is created per run (by
:class:`~repro.sim.system.System`) when an
:class:`~repro.obs.config.ObsConfig` enables a channel, and ``None``
otherwise.  Components hold the instance (or ``None``) and guard every
instrumentation site with a single ``if obs is not None`` — the whole
cost of the disabled path.  The instrumentation itself never touches
timing state, so enabling observability cannot change ``end_cycle`` or
any counter (the property tests pin this for every design).

The holder exposes one hook method per instrumentation site; each hook
internally dispatches to the event stream and/or the metrics registry
depending on what the config enabled.  Components that have no notion
of the current cycle (the on-PM buffer, the log buffer) read the
ambient :attr:`Observability.cycle`, which the engine refreshes at the
start of every operation.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.config import ObsConfig
from repro.obs.events import EventTrace, TraceEvent
from repro.obs.metrics import Histogram, MetricsRegistry, aggregate_metrics

__all__ = [
    "ObsConfig",
    "Observability",
    "EventTrace",
    "TraceEvent",
    "Histogram",
    "MetricsRegistry",
    "aggregate_metrics",
]

#: Engine op class name -> per-phase attribution key.
_PHASE_KEYS = {
    "Store": "op.store",
    "Load": "op.load",
    "TxBegin": "op.tx_begin",
    "TxEnd": "op.tx_end",
}


class Observability:
    """Per-run holder of the event stream and the metrics registry."""

    __slots__ = ("config", "trace", "metrics", "cycle", "_tx_begin", "_write_names")

    def __init__(self, config: ObsConfig) -> None:
        self.config = config
        self.trace: Optional[EventTrace] = (
            EventTrace(config.max_events) if config.events else None
        )
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if config.metrics else None
        )
        #: Ambient cycle stamp for components without timing knowledge,
        #: refreshed by the engine at the start of every operation.
        self.cycle = 0
        self._tx_begin: Dict[int, int] = {}
        #: Memoized ``mc.write.<kind>`` event names (no per-event
        #: string concatenation).
        self._write_names: Dict[str, str] = {}

    @classmethod
    def create(cls, config: Optional[ObsConfig]) -> Optional["Observability"]:
        """``None`` when nothing is enabled, so components keep the
        one-attribute-check disabled path."""
        if config is None or not config.enabled:
            return None
        return cls(config)

    # ------------------------------------------------------------------
    # Memory controller
    # ------------------------------------------------------------------
    def mc_write(
        self,
        kind: str,
        channel: int,
        now: int,
        stall: int,
        persisted: int,
        media_done: int,
        n_words: int,
        occupancy: int,
        write_through: bool,
    ) -> None:
        metrics = self.metrics
        if metrics is not None:
            metrics.record("wpq.occupancy", occupancy)
            metrics.record("mc.write_latency", persisted - now)
            if stall:
                metrics.record("wpq.stall_cycles", stall)
        trace = self.trace
        if trace is not None:
            name = self._write_names.get(kind)
            if name is None:
                name = self._write_names.setdefault(kind, "mc.write." + kind)
            trace.emit(
                now,
                name,
                channel,
                dur=persisted - now,
                args={"words": n_words, "wpq": occupancy},
            )
            if stall:
                trace.emit(now, "wpq.stall", channel, dur=stall)
            if write_through:
                trace.emit(now, "barrier.persist", channel, dur=media_done - now)

    def mc_read(self, channel: int, now: int, stall: int, completion: int) -> None:
        metrics = self.metrics
        if metrics is not None:
            metrics.record("mc.read_latency", completion - now)
            if stall:
                metrics.record("wpq.read_stall_cycles", stall)
        trace = self.trace
        if trace is not None:
            trace.emit(now, "mc.read", channel, dur=completion - now)
            if stall:
                trace.emit(now, "wpq.read_stall", channel, dur=stall)

    # ------------------------------------------------------------------
    # PM device / on-PM buffer (no local clock: ambient cycle stamp)
    # ------------------------------------------------------------------
    def onpm_evict(self, n_words: int) -> None:
        metrics = self.metrics
        if metrics is not None:
            metrics.record("onpm.evict_words", n_words)
        trace = self.trace
        if trace is not None:
            trace.emit(self.cycle, "onpm.evict", -1, args={"words": n_words})

    def cache_writeback(self, n_words: int) -> None:
        metrics = self.metrics
        if metrics is not None:
            metrics.record("cache.writeback_words", n_words)
        trace = self.trace
        if trace is not None:
            trace.emit(self.cycle, "cache.l3_writeback", -1, args={"words": n_words})

    # ------------------------------------------------------------------
    # Log buffer
    # ------------------------------------------------------------------
    def logbuf_offer(self, core: int, outcome: str, occupancy: int) -> None:
        """``outcome`` is ``"appended"`` / ``"merged"`` (the ``FULL``
        outcome surfaces as an overflow event instead)."""
        metrics = self.metrics
        if metrics is not None:
            metrics.record("logbuf.occupancy", occupancy)
        trace = self.trace
        if trace is not None:
            trace.emit(
                self.cycle,
                "logbuf.merged" if outcome == "merged" else "logbuf.appended",
                core,
            )

    def logbuf_overflow(self, core: int, now: int, entries: int, dur: int) -> None:
        metrics = self.metrics
        if metrics is not None:
            metrics.record("logbuf.overflow_entries", entries)
        trace = self.trace
        if trace is not None:
            trace.emit(
                now, "logbuf.overflow", core, dur=dur, args={"entries": entries}
            )

    # ------------------------------------------------------------------
    # Engine: per-op attribution, transaction spans
    # ------------------------------------------------------------------
    def op_done(self, op_name: str, core: int, start: int, cost: int) -> None:
        metrics = self.metrics
        if metrics is not None:
            metrics.phases[_PHASE_KEYS.get(op_name, op_name)] += cost
        trace = self.trace
        if trace is not None:
            if op_name == "TxBegin":
                self._tx_begin[core] = start
            elif op_name == "TxEnd":
                begin = self._tx_begin.pop(core, start)
                trace.emit(begin, "tx", core, dur=start + cost - begin)
                trace.emit(start, "tx.commit", core, dur=cost)

    # ------------------------------------------------------------------
    # Crash / recovery phases
    # ------------------------------------------------------------------
    def crash(self, now: int) -> None:
        trace = self.trace
        if trace is not None:
            trace.emit(now, "crash.power_failure", -1)

    def recovery_done(self, now: int, scheme: str) -> None:
        trace = self.trace
        if trace is not None:
            trace.emit(now, "crash.recovery", -1, args={"scheme": scheme})
