"""Mixed-operation workload modes (insert/delete/lookup)."""

import pytest

from repro.common.config import SystemConfig
from repro.designs.scheme import SchemeRegistry
from repro.sim.crash import CrashPlan
from repro.sim.engine import TransactionEngine, run_trace
from repro.sim.system import System
from repro.sim.verify import check_atomic_durability
from repro.workloads import build_workload

MIXED_WORKLOADS = ("btree", "rbtree", "hash")


@pytest.mark.parametrize("name", MIXED_WORKLOADS)
class TestMixedBuilders:
    def test_builds_and_runs(self, name):
        trace = build_workload(
            name, threads=2, transactions=40, operation_mix="mixed"
        )
        result = run_trace(trace, scheme="silo", config=SystemConfig.table2(2))
        assert result.committed_count == 80

    def test_mixed_differs_from_insert_only(self, name):
        insert = build_workload(name, threads=1, transactions=40)
        mixed = build_workload(
            name, threads=1, transactions=40, operation_mix="mixed"
        )
        insert_ops = [tx.ops for tx in insert.all_transactions()]
        mixed_ops = [tx.ops for tx in mixed.all_transactions()]
        assert insert_ops != mixed_ops

    def test_deterministic(self, name):
        a = build_workload(name, threads=1, transactions=30, operation_mix="mixed")
        b = build_workload(name, threads=1, transactions=30, operation_mix="mixed")
        for ta, tb in zip(a.threads[0], b.threads[0]):
            assert ta.ops == tb.ops

    def test_crash_recovery_on_mixed_trace(self, name):
        """Deletions interleave shifted/merged node writes: atomic
        durability must still hold at arbitrary crash points."""
        trace = build_workload(
            name, threads=2, transactions=8, operation_mix="mixed"
        )
        total_ops = sum(
            len(tx.ops) + 2 for th in trace.threads for tx in th.transactions
        )
        for scheme in ("base", "lad", "silo"):
            for at in (0, total_ops // 3, 2 * total_ops // 3):
                system = System(SystemConfig.table2(2))
                engine = TransactionEngine(
                    system,
                    SchemeRegistry.create(scheme, system),
                    trace,
                    crash_plan=CrashPlan(at_op=at),
                )
                result = engine.run()
                assert (
                    check_atomic_durability(system, trace, result.committed) == []
                ), (name, scheme, at)
