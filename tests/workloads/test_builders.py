"""Tests for the workload trace builders (Table III / Fig. 4)."""

import pytest

from repro.common.errors import ConfigError
from repro.trace.ops import Store
from repro.workloads.registry import (
    FIG4_WORKLOADS,
    FIG_WORKLOADS,
    MACRO_WORKLOADS,
    MICRO_WORKLOADS,
    WORKLOADS,
    build_workload,
)


class TestRegistry:
    def test_all_eleven_workloads_present(self):
        assert len(FIG4_WORKLOADS) == 11
        assert set(FIG4_WORKLOADS) <= set(WORKLOADS)

    def test_fig_workloads_are_micro_plus_macro(self):
        assert FIG_WORKLOADS == MICRO_WORKLOADS + MACRO_WORKLOADS
        assert len(FIG_WORKLOADS) == 7

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError):
            build_workload("nope")


@pytest.mark.parametrize("name", FIG4_WORKLOADS)
class TestEveryWorkload:
    def test_builds_and_has_transactions(self, name):
        trace = build_workload(name, threads=2, transactions=20)
        assert trace.total_transactions == 40
        assert len(trace.threads) == 2

    def test_deterministic(self, name):
        a = build_workload(name, threads=1, transactions=10)
        b = build_workload(name, threads=1, transactions=10)
        for ta, tb in zip(a.threads[0], b.threads[0]):
            assert ta.ops == tb.ops

    def test_write_size_below_half_kb(self, name):
        """The Fig. 4 observation: real PM transactions write little."""
        trace = build_workload(name, threads=1, transactions=50)
        assert trace.mean_write_size_bytes() < 512

    def test_stores_word_aligned_in_data_region(self, name):
        trace = build_workload(name, threads=1, transactions=10)
        for tx in trace.all_transactions():
            for op in tx.ops:
                if type(op) is Store:
                    assert op.addr % 8 == 0
                    assert op.addr < 8 << 30  # inside the data region


class TestOpsPerTx:
    @pytest.mark.parametrize("name", FIG_WORKLOADS)
    def test_ops_per_tx_scales_write_size(self, name):
        small = build_workload(name, threads=1, transactions=20, ops_per_tx=1)
        big = build_workload(name, threads=1, transactions=20, ops_per_tx=4)
        assert (
            big.mean_write_size_bytes() > 2 * small.mean_write_size_bytes()
        )


class TestTPCC:
    def test_full_mix_runs_all_types(self):
        trace = build_workload("tpcc", threads=1, transactions=300, mix="full")
        sizes = [tx.write_size_bytes for tx in trace.all_transactions()]
        assert min(sizes) == 0  # read-only types (order-status/stock-level)
        assert max(sizes) > 100  # new-order

    def test_unknown_mix_rejected(self):
        with pytest.raises(ConfigError):
            build_workload("tpcc", threads=1, transactions=5, mix="weird")

    def test_next_order_ids_monotonic(self):
        from repro.workloads.memspace import RecordingMemory
        from repro.workloads.tpcc import TPCCWarehouse
        import random

        mem = RecordingMemory(0)
        warehouse = TPCCWarehouse(mem, 0)
        rng = random.Random(0)
        before = [mem.peek_field(d, 1) for d in warehouse.districts]
        for _ in range(30):
            warehouse.new_order(rng)
        after = [mem.peek_field(d, 1) for d in warehouse.districts]
        assert sum(after) - sum(before) == 30


class TestBank:
    def test_transfers_conserve_total_balance(self):
        from repro.workloads.bank import BankDatabase
        from repro.workloads.memspace import RecordingMemory
        import random

        mem = RecordingMemory(0)
        bank = BankDatabase(mem, accounts=16)
        rng = random.Random(1)
        initial_total = bank.total_balance()
        for _ in range(100):
            a, b = rng.randrange(16), rng.randrange(16)
            if a != b:
                bank.transfer(a, b, rng.randint(1, 100))
        assert bank.total_balance() == initial_total


class TestYCSB:
    def test_zipf_sampler_is_skewed(self):
        from repro.workloads.ycsb import ZipfSampler
        import random

        zipf = ZipfSampler(100, theta=0.99)
        rng = random.Random(2)
        samples = [zipf.sample(rng) for _ in range(2000)]
        head = sum(1 for s in samples if s < 10)
        assert head > len(samples) * 0.4  # top 10% of keys dominate

    def test_updates_mostly_silent(self):
        """Row marshalling rewrites the record; only a couple of field
        words actually change."""
        trace = build_workload("ycsb", threads=1, transactions=50, read_fraction=0)
        current = dict(trace.initial_image)
        silent = total = 0
        for tx in trace.all_transactions():
            for op in tx.ops:
                if type(op) is Store:
                    total += 1
                    if current.get(op.addr, 0) == op.value:
                        silent += 1
                    current[op.addr] = op.value
        assert silent / total > 0.5


class TestArray:
    def test_swap_is_mostly_silent(self):
        """Section VI-D: ~90% of Array's logs are ignorable."""
        trace = build_workload("array", threads=1, transactions=50)
        current = dict(trace.initial_image)
        silent = total = 0
        for tx in trace.all_transactions():
            for op in tx.ops:
                if type(op) is Store:
                    total += 1
                    if current.get(op.addr, 0) == op.value:
                        silent += 1
                    current[op.addr] = op.value
        assert silent / total > 0.8

    def test_swap_write_size_is_two_elements(self):
        trace = build_workload("array", threads=1, transactions=10)
        assert trace.mean_write_size_bytes() == 128.0
