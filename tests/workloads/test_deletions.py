"""Deletion support across the persistent data structures."""

import random

import pytest

from repro.workloads.btree import BTree, MAX_KEYS, _CHILD0, _LEAF_FLAG
from repro.workloads.ctrie import CritBitTrie
from repro.workloads.hashtable import HashTable
from repro.workloads.memspace import RecordingMemory
from repro.workloads.rbtree import RBTree
from repro.workloads.rtree import RadixTree


def check_btree_shape(mem, tree):
    """Every non-root node within [min, max] keys; keys sorted."""

    def walk(node, is_root, lo, hi):
        raw = mem.peek_field(node, 0)
        count = raw & ~_LEAF_FLAG
        leaf = bool(raw & _LEAF_FLAG)
        assert count <= MAX_KEYS
        if not is_root:
            assert count >= tree._MIN_KEYS
        keys = [mem.peek_field(node, 1 + i * 8) for i in range(count)]
        assert keys == sorted(keys)
        for key in keys:
            assert lo < key < hi
        if not leaf:
            bounds = [lo] + keys + [hi]
            for i in range(count + 1):
                walk(
                    mem.peek_field(node, _CHILD0 + i), False, bounds[i], bounds[i + 1]
                )

    walk(mem.peek(tree.root_cell), True, -1, 1 << 62)


class TestBTreeDelete:
    def test_delete_leaf_keys(self):
        tree = BTree(RecordingMemory(0))
        for key in range(1, 9):
            tree.insert(key)
        assert tree.delete(3)
        assert not tree.contains(3)
        assert all(tree.contains(k) for k in (1, 2, 4, 5, 6, 7, 8))

    def test_delete_absent_returns_false(self):
        tree = BTree(RecordingMemory(0))
        tree.insert(1)
        assert not tree.delete(99)
        assert tree.contains(1)

    def test_delete_triggers_merges_and_root_shrink(self):
        mem = RecordingMemory(0)
        tree = BTree(mem)
        keys = list(range(1, 200))
        for key in keys:
            tree.insert(key)
        for key in keys[:-3]:
            assert tree.delete(key)
        check_btree_shape(mem, tree)
        for key in keys[-3:]:
            assert tree.contains(key)

    def test_delete_internal_keys(self):
        mem = RecordingMemory(0)
        tree = BTree(mem)
        for key in range(1, 100):
            tree.insert(key)
        # Deleting in insertion order repeatedly hits internal slots.
        for key in range(1, 100, 7):
            assert tree.delete(key)
            assert not tree.contains(key)
        check_btree_shape(mem, tree)

    def test_randomized_against_reference(self):
        rng = random.Random(11)
        mem = RecordingMemory(0)
        tree = BTree(mem)
        ref = set()
        for step in range(1500):
            if ref and rng.random() < 0.45:
                key = rng.choice(sorted(ref))
                ref.discard(key)
                assert tree.delete(key)
            else:
                key = rng.getrandbits(14) + 1
                if key not in ref:
                    tree.insert(key)
                    ref.add(key)
        check_btree_shape(mem, tree)
        for key in ref:
            assert tree.contains(key)
        for _ in range(200):
            key = rng.getrandbits(14) + 1
            assert tree.contains(key) == (key in ref)


class TestRBTreeDelete:
    def test_delete_preserves_invariants(self):
        rng = random.Random(12)
        tree = RBTree(RecordingMemory(0))
        ref = set()
        for step in range(1200):
            if ref and rng.random() < 0.45:
                key = rng.choice(sorted(ref))
                ref.discard(key)
                assert tree.delete(key)
            else:
                key = rng.getrandbits(14) + 1
                if key not in ref:
                    tree.insert(key, step)
                    ref.add(key)
            if step % 200 == 0:
                assert tree.black_height_valid()
        assert tree.black_height_valid()
        for key in ref:
            assert tree.contains(key)

    def test_delete_root(self):
        tree = RBTree(RecordingMemory(0))
        tree.insert(5, 1)
        assert tree.delete(5)
        assert not tree.contains(5)
        assert tree.black_height_valid()

    def test_delete_absent(self):
        tree = RBTree(RecordingMemory(0))
        tree.insert(5, 1)
        assert not tree.delete(6)

    def test_delete_down_to_empty(self):
        tree = RBTree(RecordingMemory(0))
        keys = list(range(1, 64))
        for key in keys:
            tree.insert(key, key)
        for key in keys:
            assert tree.delete(key)
            assert tree.black_height_valid()
        assert not tree.contains(1)


class TestHashRemove:
    def test_remove_unlinks(self):
        table = HashTable(RecordingMemory(0), buckets=4)
        table.insert(1, 10)
        table.insert(2, 20)
        assert table.remove(1)
        assert table.lookup(1) is None
        assert table.lookup(2) == 20

    def test_remove_absent(self):
        table = HashTable(RecordingMemory(0), buckets=4)
        assert not table.remove(7)

    def test_remove_middle_of_chain(self):
        table = HashTable(RecordingMemory(0), buckets=1)
        for key in (1, 2, 3):
            table.insert(key, key * 10)
        assert table.remove(2)
        assert table.lookup(1) == 10
        assert table.lookup(2) is None
        assert table.lookup(3) == 30

    def test_insert_updates_in_place(self):
        table = HashTable(RecordingMemory(0), buckets=4)
        table.insert(1, 10)
        table.insert(1, 11)
        assert table.lookup(1) == 11
        assert table.remove(1)
        assert table.lookup(1) is None  # no stale duplicate behind


class TestTrieDeletes:
    def test_rtree_delete(self):
        tree = RadixTree(RecordingMemory(0))
        tree.insert(0xABCDE, 5)
        assert tree.delete(0xABCDE)
        assert tree.lookup(0xABCDE) is None
        assert not tree.delete(0xABCDE)

    def test_rtree_delete_missing_path(self):
        tree = RadixTree(RecordingMemory(0))
        assert not tree.delete(0x12345)

    def test_ctrie_delete_collapses_parent(self):
        trie = CritBitTrie(RecordingMemory(0))
        trie.insert(0b1000, 1)
        trie.insert(0b1001, 2)
        assert trie.delete(0b1000)
        assert trie.lookup(0b1000) is None
        assert trie.lookup(0b1001) == 2

    def test_ctrie_delete_last_key_empties_root(self):
        trie = CritBitTrie(RecordingMemory(0))
        trie.insert(42, 1)
        assert trie.delete(42)
        assert trie.lookup(42) is None
        trie.insert(43, 2)  # reusable afterwards
        assert trie.lookup(43) == 2

    def test_ctrie_randomized(self):
        rng = random.Random(13)
        trie = CritBitTrie(RecordingMemory(0))
        ref = {}
        for step in range(1000):
            key = rng.getrandbits(16) + 1
            if key in ref and rng.random() < 0.5:
                assert trie.delete(key)
                del ref[key]
            else:
                trie.insert(key, step)
                ref[key] = step
        for key, value in ref.items():
            assert trie.lookup(key) == value
