"""Deeper behavioural tests for the macro/Fig.-4 workload internals."""

import random

import pytest

from repro.workloads.bank import BankDatabase
from repro.workloads.memspace import RecordingMemory
from repro.workloads.tatp import TATPDatabase
from repro.workloads.tpcc import (
    DISTRICTS_PER_WAREHOUSE,
    TPCCWarehouse,
    _O_OL_HEAD,
    _OL_AMOUNT,
    _OL_NEXT,
)
from repro.workloads.ycsb import YCSBStore


class TestTPCCInternals:
    def make(self):
        mem = RecordingMemory(0)
        return mem, TPCCWarehouse(mem, w_id=0), random.Random(5)

    def test_new_order_links_order_lines(self):
        mem, warehouse, rng = self.make()
        warehouse.new_order(rng)
        order = mem.peek(warehouse.neworder_queues[0])
        # Find the district that actually got the order.
        for d in range(DISTRICTS_PER_WAREHOUSE):
            order = mem.peek(warehouse.neworder_queues[d])
            if order:
                break
        assert order
        line = mem.peek_field(order, _O_OL_HEAD)
        count = 0
        while line:
            count += 1
            assert mem.peek_field(line, _OL_AMOUNT) > 0
            line = mem.peek_field(line, _OL_NEXT)
        assert 3 <= count <= 8

    def test_delivery_consumes_neworder_queue(self):
        mem, warehouse, rng = self.make()
        for _ in range(15):
            warehouse.new_order(rng)
        pending_before = sum(
            1 for d in range(DISTRICTS_PER_WAREHOUSE)
            if mem.peek(warehouse.neworder_queues[d])
        )
        warehouse.delivery(rng)
        pending_after = sum(
            1 for d in range(DISTRICTS_PER_WAREHOUSE)
            if mem.peek(warehouse.neworder_queues[d])
        )
        assert pending_before > 0
        assert pending_after < pending_before or pending_before == 0

    def test_payment_moves_money(self):
        mem, warehouse, rng = self.make()
        ytd_before = mem.peek_field(warehouse.warehouse, 1)
        warehouse.payment(rng)
        assert mem.peek_field(warehouse.warehouse, 1) > ytd_before

    def test_read_only_types_write_nothing(self):
        mem, warehouse, rng = self.make()
        warehouse.new_order(rng)  # give order_status something to read
        mem.begin_tx()
        warehouse.order_status(rng)
        warehouse.stock_level(rng)
        tx = mem.commit()
        assert tx.write_size_bytes == 0
        assert len(tx.ops) > 0  # but they do read


class TestTATPInternals:
    def test_update_location_changes_one_word(self):
        mem = RecordingMemory(0)
        db = TATPDatabase(mem, subscribers=8)
        mem.begin_tx()
        db.update_location(3, 999)
        tx = mem.commit()
        assert tx.write_size_bytes == 8
        assert db.get_subscriber_data(3) == 999

    def test_update_subscriber_data_two_words(self):
        mem = RecordingMemory(0)
        db = TATPDatabase(mem, subscribers=8)
        mem.begin_tx()
        db.update_subscriber_data(2, 0b1111, 42)
        tx = mem.commit()
        assert tx.write_size_bytes == 16


class TestYCSBInternals:
    def test_read_returns_current_record(self):
        mem = RecordingMemory(0)
        store = YCSBStore(mem, records=4)
        mem.begin_tx()
        words = store.read(2)
        mem.commit()
        assert words[0] == (2 << 8)  # setup value of field 0

    def test_update_changes_requested_fields_only(self):
        mem = RecordingMemory(0)
        store = YCSBStore(mem, records=4)
        before = [mem.peek_field(store.record_addr(1), i) for i in range(8)]
        mem.begin_tx()
        store.update(1, payload=12345, fields=2)
        mem.commit()
        after = [mem.peek_field(store.record_addr(1), i) for i in range(8)]
        changed = sum(1 for b, a in zip(before, after) if b != a)
        assert changed == 2


class TestBankInternals:
    def test_balances_move_exactly(self):
        mem = RecordingMemory(0)
        bank = BankDatabase(mem, accounts=4)
        mem.begin_tx()
        bank.transfer(0, 1, 25)
        mem.commit()
        assert bank.balance(0) == -25
        assert bank.balance(1) == 25

    def test_audit_ring_wraps(self):
        mem = RecordingMemory(0)
        bank = BankDatabase(mem, accounts=2)
        mem.begin_tx()
        for _ in range(bank._audit_len + 3):
            bank.transfer(0, 1, 1)
        mem.commit()
        assert bank._audit_pos == 3
        assert bank.total_balance() == 0
