"""Structural-correctness tests for the persistent data structures.

The workloads are real implementations: these tests drive them through
the recording memory and check their own invariants (search trees stay
sorted/balanced, queues stay FIFO, lookups find what was inserted).
"""

import random

from repro.workloads.btree import BTree, MAX_KEYS
from repro.workloads.ctrie import CritBitTrie
from repro.workloads.hashtable import HashTable, hash_mix
from repro.workloads.memspace import RecordingMemory
from repro.workloads.queue import PersistentQueue
from repro.workloads.rbtree import RBTree
from repro.workloads.rtree import RadixTree


class TestBTree:
    def test_insert_and_contains(self):
        mem = RecordingMemory(0)
        tree = BTree(mem)
        keys = random.Random(1).sample(range(1, 10_000), 300)
        for key in keys:
            tree.insert(key)
        for key in keys:
            assert tree.contains(key)
        assert not tree.contains(10_001)

    def test_splits_preserve_membership(self):
        mem = RecordingMemory(0)
        tree = BTree(mem)
        # Sorted insertion forces repeated rightmost splits.
        for key in range(1, 200):
            tree.insert(key)
        for key in range(1, 200):
            assert tree.contains(key)

    def test_node_capacity_respected(self):
        mem = RecordingMemory(0)
        tree = BTree(mem)
        for key in range(1, 100):
            tree.insert(key)

        def check(node):
            count = mem.peek_field(node, 0) & ~(1 << 62)
            leaf = bool(mem.peek_field(node, 0) & (1 << 62))
            assert count <= MAX_KEYS
            if not leaf:
                for i in range(count + 1):
                    child_base = 1 + MAX_KEYS * 8 + i
                    check(mem.peek_field(node, child_base))

        check(mem.peek(tree.root_cell))


class TestRBTree:
    def test_invariants_after_random_inserts(self):
        mem = RecordingMemory(0)
        tree = RBTree(mem)
        keys = random.Random(2).sample(range(1, 100_000), 400)
        for i, key in enumerate(keys):
            tree.insert(key, i)
        assert tree.black_height_valid()
        for key in keys:
            assert tree.contains(key)

    def test_invariants_after_sorted_inserts(self):
        mem = RecordingMemory(0)
        tree = RBTree(mem)
        for key in range(1, 300):
            tree.insert(key, key)
        assert tree.black_height_valid()

    def test_empty_tree_valid(self):
        assert RBTree(RecordingMemory(0)).black_height_valid()


class TestHashTable:
    def test_insert_lookup(self):
        mem = RecordingMemory(0)
        table = HashTable(mem, buckets=64)
        rng = random.Random(3)
        pairs = {rng.getrandbits(48): i for i in range(200)}
        for key, value in pairs.items():
            table.insert(key, value)
        for key, value in pairs.items():
            assert table.lookup(key) == value
        assert table.lookup(0xDEAD) is None

    def test_chaining_handles_collisions(self):
        mem = RecordingMemory(0)
        table = HashTable(mem, buckets=1)  # everything collides
        for i in range(20):
            table.insert(i + 1, i)
        for i in range(20):
            assert table.lookup(i + 1) == i

    def test_hash_mix_spreads(self):
        values = {hash_mix(i) % 64 for i in range(1000)}
        assert len(values) == 64


class TestQueue:
    def test_fifo_order(self):
        mem = RecordingMemory(0)
        q = PersistentQueue(mem)
        for i in range(10):
            q.enqueue(i + 1)
        assert [q.dequeue() for _ in range(10)] == list(range(1, 11))

    def test_dequeue_empty_returns_none(self):
        q = PersistentQueue(RecordingMemory(0))
        assert q.dequeue() is None
        assert q.is_empty()

    def test_interleaved_operations(self):
        q = PersistentQueue(RecordingMemory(0))
        q.enqueue(1)
        q.enqueue(2)
        assert q.dequeue() == 1
        q.enqueue(3)
        assert q.dequeue() == 2
        assert q.dequeue() == 3
        assert q.is_empty()


class TestRadixTree:
    def test_insert_lookup(self):
        tree = RadixTree(RecordingMemory(0))
        rng = random.Random(4)
        pairs = {rng.getrandbits(40): i + 1 for i in range(200)}
        for key, value in pairs.items():
            tree.insert(key, value)
        for key, value in pairs.items():
            assert tree.lookup(key) == value
        assert tree.lookup(0x12345) is None

    def test_overwrite(self):
        tree = RadixTree(RecordingMemory(0))
        tree.insert(5, 1)
        tree.insert(5, 2)
        assert tree.lookup(5) == 2


class TestCritBitTrie:
    def test_insert_lookup(self):
        trie = CritBitTrie(RecordingMemory(0))
        rng = random.Random(5)
        pairs = {rng.getrandbits(48): i + 1 for i in range(300)}
        for key, value in pairs.items():
            trie.insert(key, value)
        for key, value in pairs.items():
            assert trie.lookup(key) == value
        # a key sharing a long prefix with an inserted one
        some = next(iter(pairs))
        assert trie.lookup(some ^ 1) in (None, pairs.get(some ^ 1))

    def test_update_in_place(self):
        trie = CritBitTrie(RecordingMemory(0))
        trie.insert(42, 1)
        trie.insert(42, 9)
        assert trie.lookup(42) == 9

    def test_adjacent_keys(self):
        trie = CritBitTrie(RecordingMemory(0))
        for key in range(1, 64):
            trie.insert(key, key * 10)
        for key in range(1, 64):
            assert trie.lookup(key) == key * 10
