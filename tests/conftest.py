"""Shared fixtures for the test suite."""

import pytest

from repro.common.config import SystemConfig


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the result cache at a per-test directory so tests that
    exercise cache-enabled paths (the CLI) never write into the repo."""
    monkeypatch.setenv("SILO_CACHE_DIR", str(tmp_path / "repro-cache"))
from repro.common.stats import Stats
from repro.designs.scheme import SchemeRegistry
from repro.mem.pm import PMDevice, RegionLayout
from repro.sim.system import System

ALL_SCHEMES = ("base", "fwb", "morlog", "lad", "silo")


@pytest.fixture
def stats():
    return Stats()


@pytest.fixture
def config2():
    """The Table II system shrunk to two cores."""
    return SystemConfig.table2(cores=2)


@pytest.fixture
def system2(config2):
    return System(config2)


@pytest.fixture
def pm(stats):
    return PMDevice(stats=stats)


@pytest.fixture
def layout():
    return RegionLayout(threads=4)


def make_system(cores: int = 1, **kwargs) -> System:
    return System(SystemConfig.table2(cores=cores))


def make_scheme(name: str, system: System):
    return SchemeRegistry.create(name, system)


@pytest.fixture(params=ALL_SCHEMES)
def scheme_name(request):
    return request.param
